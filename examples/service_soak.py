#!/usr/bin/env python
"""Chaos soak for the synthesis service: sustained load, injected faults.

Runs the resilient :class:`~repro.service.SynthesisService` against a live
urban inventory while chaos is in force — a flaky, occasionally stalling
composer backend plus continuous node churn that advances inventory
epochs mid-flight — then heals the backend for a recovery phase and
checks the service-level objectives:

* every query reached a terminal outcome within deadline + grace
  (a hung query fails the soak, and the whole run sits under a watchdog);
* rejections are typed, degraded answers carry staleness metadata;
* the circuit breaker provably opened under chaos *and* re-closed after
  the backend healed.

CI runs this (the ``service-soak`` job) for 30 s; exit status is the SLO
verdict.  Run:  PYTHONPATH=src python examples/service_soak.py [--duration 30]
"""

import argparse
import asyncio
import sys
import time

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import GreedyComposer
from repro.service import SnapshotHub, SynthesisQuery, SynthesisService
from repro.service.chaos import (
    ChaosBackend,
    ChaosConfig,
    InventoryChurner,
    check_slos,
)
from repro.things.capabilities import SensingModality
from repro.util.backoff import BackoffPolicy
from repro.util.geometry import Region


def build_world(seed: int):
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.4)
        .population(n_blue=150, n_red=0, n_gray=0)
        .build()
    )
    return scenario, SnapshotHub(scenario.inventory, min_refresh_s=0.1)


def goal_ring(region: Region, n: int = 6):
    span = region.width * 0.5
    return [
        MissionGoal(
            MissionType.SURVEIL,
            Region(
                region.x_min + (region.width - span) * (i / max(1, n - 1)),
                region.y_min,
                region.x_min + (region.width - span) * (i / max(1, n - 1)) + span,
                region.y_min + span,
            ),
            min_coverage=0.3,
            modalities=frozenset(
                {SensingModality.SEISMIC, SensingModality.ACOUSTIC}
            ),
        )
        for i in range(n)
    ]


SICK = ChaosConfig(error_prob=0.6, slow_prob=0.2, slow_s=0.05,
                   stall_prob=0.05, stall_s=1.0, seed=7)
HEALED = ChaosConfig()


async def soak(duration_s: float, clients: int, seed: int) -> int:
    scenario, hub = build_world(seed)
    goals = goal_ring(scenario.region)
    chaos = ChaosBackend(GreedyComposer(), SICK, name="soak")
    service = SynthesisService(
        hub,
        backends={"greedy": chaos},
        backoff=BackoffPolicy(base_s=0.01, max_s=0.1),
        max_retries=1,
        max_concurrent=6,
        breaker_min_calls=4,
        breaker_window=10,
        breaker_open_s=0.5,
    )
    churner = InventoryChurner(
        hub, kill_fraction=0.05, downtime_ticks=3, interval_s=0.25, seed=seed
    )
    outcomes = []
    sick_until = time.monotonic() + duration_s * 0.75
    stop_at = time.monotonic() + duration_s

    async def client(idx: int):
        k = 0
        while time.monotonic() < stop_at:
            if time.monotonic() >= sick_until and chaos.config is not HEALED:
                chaos.config = HEALED   # the backend recovers
                await churner.stop()    # and the churn storm passes
            query = SynthesisQuery(
                goal=goals[(idx + k) % len(goals)],
                deadline_s=0.5,
                max_stale_s=120.0,
            )
            outcomes.append(await service.submit(query))
            k += 1
            await asyncio.sleep(0.005)

    async with service:
        churner.start(duration_s=duration_s * 0.75)
        # Watchdog: a single hung query would hold its client forever; the
        # timeout turns that into a loud soak failure instead.
        await asyncio.wait_for(
            asyncio.gather(*(client(i) for i in range(clients))),
            timeout=duration_s + 60.0,
        )
        await churner.stop()
        report = check_slos(outcomes, service, require_breaker_cycle=True)

    by_reason = {}
    for o in outcomes:
        if o.status.value == "rejected":
            by_reason[o.reason] = by_reason.get(o.reason, 0) + 1
    print(f"soak: {report.describe()}")
    print(
        f"  churn: kills={churner.kills} restores={churner.restores} "
        f"epochs={hub.epoch}  backend: calls={chaos.calls} faults={chaos.faults}"
    )
    print(
        f"  breaker cycle: opened={report.breaker_opened} "
        f"reclosed={report.breaker_reclosed}  rejects by reason: {by_reason}"
    )
    if not report.ok:
        for violation in report.violations[:10]:
            print(f"  SLO VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=30.0,
                        help="soak length in seconds (default 30)")
    parser.add_argument("--clients", type=int, default=24,
                        help="concurrent query clients (default 24)")
    parser.add_argument("--seed", type=int, default=2018)
    args = parser.parse_args()
    return asyncio.run(soak(args.duration, args.clients, args.seed))


if __name__ == "__main__":
    raise SystemExit(main())
