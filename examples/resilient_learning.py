#!/usr/bin/env python
"""Distributed learning under Byzantine compromise and unreliable humans.

Two learning services from Challenge 3, attacked and defended:

1. **Decentralized SGD** across 12 heterogeneous workers, 3 of them
   Byzantine, over a time-varying (failure-churned) topology — plain
   averaging vs Krum vs coordinate-median.
2. **Social-sensing truth discovery** over claims from honest and colluding
   human sources — majority vote vs EM (with two vetted anchor scouts).

Run:  python examples/resilient_learning.py
"""

import numpy as np

from repro.core.learning import (
    AGGREGATORS,
    DecentralizedSGD,
    RandomTopology,
    TruthDiscovery,
    majority_vote,
)
from repro.core.learning.distributed import make_regression_shards
from repro.things.humans import HumanSource
from repro.util.tables import ResultTable


def byzantine_demo() -> None:
    rng = np.random.default_rng(1)
    shards, _true_w = make_regression_shards(12, 50, 6, rng)
    table = ResultTable(
        "Decentralized SGD, 12 workers (3 Byzantine), churned topology",
        ["aggregator", "round_20_loss", "round_80_loss"],
    )
    for name in ("mean", "krum", "median", "trimmed_mean"):
        sgd = DecentralizedSGD(
            shards,
            RandomTopology(12, 0.4, np.random.default_rng(2)),
            aggregator=AGGREGATORS[name],
            byzantine_workers={0, 1, 2},
            rng=np.random.default_rng(3),
        )
        trace = sgd.run(80)
        table.add_row(
            aggregator=name, round_20_loss=trace[19], round_80_loss=trace[-1]
        )
    table.print()


def truth_discovery_demo() -> None:
    rng = np.random.default_rng(5)
    truths = {e: bool(rng.random() < 0.5) for e in range(1, 61)}
    honest = [
        HumanSource(i, reliability=0.85, report_rate=0.8) for i in range(1, 10)
    ]
    colluders = [
        HumanSource(100 + i, reliability=0.9, report_rate=0.9, malicious=True)
        for i in range(1, 16)
    ]
    claims = []
    for source in honest + colluders:
        claims.extend(source.report_all(truths, rng))

    mv = majority_vote(claims)
    mv_acc = sum(mv[e] == truths[e] for e in mv) / len(mv)
    plain = TruthDiscovery().run(claims).accuracy(truths)
    anchored = (
        TruthDiscovery(anchors={1: 0.85, 2: 0.85})
        .run(claims)
        .accuracy(truths)
    )

    table = ResultTable(
        "Truth discovery: 9 honest vs 15 colluding sources, 60 events",
        ["method", "accuracy"],
    )
    table.add_row(method="majority vote", accuracy=mv_acc)
    table.add_row(method="EM (no anchors)", accuracy=plain)
    table.add_row(method="EM + 2 anchored scouts", accuracy=anchored)
    table.print()
    print(
        "\nReading: colluders defeat majority vote outright and can even\n"
        "flip unanchored EM into their mirrored story; two vetted scouts\n"
        "are enough to break the symmetry and recover every event."
    )


if __name__ == "__main__":
    byzantine_demo()
    print()
    truth_discovery_demo()
