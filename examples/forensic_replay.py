"""Run forensics end to end: manifest, deterministic replay, divergence diff.

Runs a small uniform-grid world serially with RNG checkpoints and a binary
ring export, which stamps a RunManifest next to the export.  The manifest
is then (1) replayed — the world is rebuilt from the embedded spec and must
reproduce the recorded trace fingerprint checkpoint-by-checkpoint — and
(2) diffed against a seed-perturbed sibling run, locating the first record
on which the two traces disagree.

Usage::

    PYTHONPATH=src python examples/forensic_replay.py

Exit status 0 when the replay reproduces the run bit-for-bit AND the
perturbed pair diverges (both are determinism checks: a diff that finds
*no* divergence between different seeds would mean the trace is blind).
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.obs.forensics import (
    diff_records,
    load_manifest,
    manifest_path,
    render_diff,
    render_replay_report,
    replay_manifest,
)
from repro.shard.engine import run_serial
from repro.shard.spec import ShardScenarioSpec, WorkloadSpec


def world(seed: int) -> ShardScenarioSpec:
    return ShardScenarioSpec(
        seed=seed,
        kind="uniform",
        n_nodes=16,
        spacing_m=110.0,
        workload=WorkloadSpec(rate_hz=2.0, sender_stride=2),
    )


def main() -> int:
    horizon = 12.0
    with tempfile.TemporaryDirectory(prefix="forensics-") as tmp:
        ring_dir = os.path.join(tmp, "rings")
        os.environ["REPRO_OBS_RING_DIR"] = ring_dir
        try:
            result = run_serial(world(seed=2018), horizon, checkpoint_interval_s=3.0)
        finally:
            del os.environ["REPRO_OBS_RING_DIR"]
        ring = next(
            os.path.join(ring_dir, name)
            for name in sorted(os.listdir(ring_dir))
            if name.endswith(".ring")
        )
        print(f"run: {len(result.records)} trace records, "
              f"{len(result.rng_checkpoints)} RNG checkpoints")
        print(f"export: {ring}")
        print(f"manifest: {manifest_path(ring)}")
        print()

        manifest = load_manifest(manifest_path(ring))
        report = replay_manifest(manifest)
        print("== replay from manifest ==")
        print(render_replay_report(report))
        print()

        perturbed = run_serial(world(seed=2019), horizon)
        diff = diff_records(
            result.records,
            perturbed.records,
            context=3,
            label_a="seed 2018",
            label_b="seed 2019",
        )
        print("== diff against seed-perturbed run ==")
        print(render_diff(diff))

        if not report["match"]:
            print("\nFAIL: replay did not reproduce the run")
            return 1
        if diff["identical"]:
            print("\nFAIL: perturbed run did not diverge")
            return 1
        print("\nforensics ok: replay reproduced, perturbation located")
        return 0


if __name__ == "__main__":
    sys.exit(main())
