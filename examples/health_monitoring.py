#!/usr/bin/env python
"""Soldier health monitoring: vitals over the battlefield network.

One of §II's motivating tasks: "monitoring physiological and psychological
state of soldiers".  Wearables stream vitals to a medic station; the
station learns per-soldier baselines and alerts on two casualty
signatures — anomalous vitals (trauma) and *silence* (a wearable that
stops reporting because its carrier went down).

Run:  python examples/health_monitoring.py
"""

from repro import ScenarioBuilder, Simulator
from repro.core.services.health import CasualtyKind, HealthMonitorService
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService
from repro.things.capabilities import SensingModality


def main() -> None:
    sim = Simulator(seed=19)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=5, block_size_m=90.0, density=0.3)
        .population(n_blue=60, n_red=0, n_gray=0)
        .build()
    )
    wearers = [
        a
        for a in scenario.inventory.blue()
        if a.profile.can_sense(SensingModality.PHYSIOLOGICAL)
    ]
    medic = scenario.blue_node_ids()[0]
    router = FloodingRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    monitor = HealthMonitorService(
        scenario, wearers, medic, MessageService(router)
    )
    monitor.start()
    print(f"monitoring {len(wearers)} soldiers; baselines learning...")

    sim.run(until=150.0)  # baseline warmup

    # Three casualties of different kinds over the next minutes.
    trauma_victim = wearers[0].id
    collapse_victim = wearers[1].id
    silent_victim = wearers[2]
    sim.call_at(
        180.0, lambda: monitor.inflict_casualty(trauma_victim, CasualtyKind.TRAUMA)
    )
    sim.call_at(
        240.0,
        lambda: monitor.inflict_casualty(collapse_victim, CasualtyKind.COLLAPSE),
    )
    sim.call_at(
        300.0, lambda: scenario.network.fail_node(silent_victim.node_id)
    )
    sim.run(until=600.0)

    print(f"\nsamples received at medic station: {monitor.samples_received}")
    print("alerts raised:")
    for soldier_id, at in sorted(monitor.alerts.items()):
        latency = monitor.detection_latency_s(soldier_id)
        extra = f" ({latency:.0f} s after casualty)" if latency is not None else ""
        print(f"  soldier {soldier_id:3d} at t={at:.0f}s{extra}")
    stats = monitor.detection_stats()
    print(
        f"\ncasualties={stats['casualties']:.0f} detected={stats['detected']:.0f} "
        f"recall={stats['recall']:.0%} false alarms={stats['false_alarms']:.0f} "
        f"mean latency={stats['mean_latency_s']:.0f}s"
    )
    print(
        "\nNote: soldier", silent_victim.id, "was detected by *silence* —"
        "\nits wearable went dark, which is itself a medical alarm."
    )


if __name__ == "__main__":
    main()
