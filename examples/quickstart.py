#!/usr/bin/env python
"""Quickstart: build a battlefield, synthesize an IoBT, run a mission.

Walks the core loop of the library in ~60 lines of user code:

1. build an urban scenario with blue / red / gray assets,
2. discover and characterize the asset population,
3. compile a mission goal into requirements and compose a composite asset,
4. assess the composite's assurances,
5. run a tracking service on it and read the service metrics.

Run:  python examples/quickstart.py
"""

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import (
    AssetCharacterizer,
    DiscoveryService,
    GreedyComposer,
    Recruiter,
    assess,
    compile_goal,
)
from repro.core.services.tracking import TrackingService
from repro.net.routing import GreedyGeoRouter
from repro.net.topology import build_topology
from repro.net.transport import MessageService


def main() -> None:
    # 1. A 10x10-block urban district with a mixed asset population.
    sim = Simulator(seed=42)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=8, block_size_m=100.0, density=0.4)
        .population(n_blue=120, n_red=10, n_gray=30)
        .targets(5)          # an insurgent group to track
        .build()
    )
    scenario.start()
    print(f"world: {scenario.inventory.counts()} assets, "
          f"{scenario.region.width:.0f} m square")

    # 2. Continuous discovery from 20 blue vantage nodes.
    discovery = DiscoveryService(scenario, scenario.blue_node_ids()[:20])
    discovery.start()
    sim.run(until=60.0)
    print(f"discovery after 60 s: recall={discovery.recall():.0%}, "
          f"suspected hostiles={len(discovery.suspected_hostiles)}")

    # 3. Goal -> requirements -> composition.
    goal = MissionGoal(
        MissionType.TRACK, scenario.region, min_coverage=0.7, max_latency_s=5.0
    )
    requirements = compile_goal(goal)
    print(f"requirements: {requirements.describe()}")

    characterizer = AssetCharacterizer(scenario.inventory, discovery)
    recruiter = Recruiter(scenario.inventory, characterizer)
    pool = recruiter.recruit()
    topology = build_topology(scenario.network)
    composite = GreedyComposer().compose(requirements, pool, topology)
    print(f"composite: {composite.describe()}")

    # 4. Quantified assurance under stated assumptions.
    report = assess(composite, scenario.inventory)
    print(f"assurance: {report.describe()}")

    # 5. Run the tracking service over the composite for 5 minutes.
    router = GreedyGeoRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)
    sink_node = scenario.inventory.get(composite.sink).node_id
    sensors = [scenario.inventory.get(a) for a in composite.sensors]
    tracking = TrackingService(scenario, sensors, sink_node, service)
    tracking.start()
    sim.run(until=360.0)
    print(
        f"tracking after 5 min: custody={tracking.custody_fraction():.0%}, "
        f"mean error={tracking.mean_track_error():.0f} m, "
        f"delivery={tracking.delivery_ratio():.0%}"
    )


if __name__ == "__main__":
    main()
