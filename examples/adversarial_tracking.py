#!/usr/bin/env python
"""Tracking through an attack: jamming, capture, and the adaptive reflexes.

A surveillance composite tracks an insurgent group.  Mid-mission the
adversary jams the RF environment and captures part of the sensor set,
poisoning its reports.  The run shows the adaptation story end to end:

* the modality manager switches optical/radar sensing to seismic/acoustic
  when jamming + smoke degrade them;
* the trust ledger (fed by agreement between sensors) downgrades poisoned
  nodes;
* service quality (track error, custody) degrades and recovers.

Run:  python examples/adversarial_tracking.py
"""

from repro import ScenarioBuilder, Simulator
from repro.core.adaptation.perception import ModalityManager
from repro.core.services.tracking import TrackingService
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService
from repro.security.attacks import (
    DataPoisoningAttack,
    JammingAttack,
    NodeCaptureAttack,
)


def main() -> None:
    sim = Simulator(seed=7)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.4)
        .population(n_blue=90, n_red=8, n_gray=20)
        .targets(6)
        .jammers(3, power_dbm=33.0)
        .build()
    )
    scenario.start()

    sensors = [a for a in scenario.inventory.blue() if a.sensors][:30]
    sink = scenario.blue_node_ids()[0]
    router = FloodingRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)

    captured = [a.id for a in sensors[:6]]
    poisoning = DataPoisoningAttack(
        scenario, [scenario.inventory.get(a).node_id for a in captured]
    )
    tracking = TrackingService(
        scenario,
        sensors,
        sink,
        service,
        modality_manager=ModalityManager(sensors),
        poisoning=poisoning,
    )
    tracking.start()

    # Attack timeline: jamming 120-240 s, capture+poisoning from 150 s.
    JammingAttack(scenario).schedule(start_s=120.0, duration_s=120.0)
    NodeCaptureAttack(scenario, captured).schedule(start_s=150.0)
    poisoning.schedule(start_s=150.0, duration_s=150.0)

    print("phase            time   custody  track_err_m  modality_mix")
    for checkpoint, label in [
        (100.0, "pre-attack"),
        (200.0, "under attack"),
        (300.0, "post-jamming"),
        (420.0, "recovered"),
    ]:
        sim.run(until=checkpoint)
        mix = {
            m.value: n
            for m, n in tracking.modality_manager.active_counts().items()
        }
        print(
            f"{label:15s} {sim.now:6.0f}  "
            f"{tracking.custody_fraction():7.0%}  "
            f"{tracking.mean_track_error():11.1f}  {mix}"
        )

    print(
        f"\nreports: {tracking.reports_sent} sent, "
        f"{tracking.reports_received} received "
        f"(delivery {tracking.delivery_ratio():.0%}); "
        f"modality switches: {tracking.modality_manager.switches}"
    )


if __name__ == "__main__":
    main()
