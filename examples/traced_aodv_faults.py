#!/usr/bin/env python
"""Causal packet tracing end-to-end: a 30-node AODV network under node
churn, traced hop by hop, analyzed offline.

1. build a 30-node random deployment running AODV with reliable transport,
2. enable causal packet tracing (``sim.enable_packet_tracing()``) and
   stream telemetry to an NDJSON export,
3. inject node churn with :class:`~repro.faults.FaultInjector` while a
   Poisson unicast workload runs,
4. reconstruct the happens-before graph offline, print per-flow latency
   phase breakdowns and the delivery critical path, and write a
   Chrome-trace JSON you can load in chrome://tracing or Perfetto.

Run:  python examples/traced_aodv_faults.py [out_dir]

CI's obs-smoke job runs this and then asserts
``python -m repro.obs trace <out_dir>/trace.ndjson --json digest.json``
reports a nonempty critical path.
"""

import os
import sys

from repro import Simulator
from repro.faults import FaultInjector
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter
from repro.net.transport import ReliableMessageService
from repro.obs import NdjsonSink
from repro.obs.analyze import analyze_trace, render_trace_report
from repro.util.geometry import Point

N_NODES = 30
AREA_M = 300.0
HORIZON = 180.0
SEND_UNTIL = 120.0


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "trace-out"
    os.makedirs(out_dir, exist_ok=True)
    export = os.path.join(out_dir, "trace.ndjson")

    # 1-2. Simulator with causal tracing on, telemetry streamed to NDJSON.
    sim = Simulator(seed=2018)
    sim.enable_packet_tracing()
    sim.trace.add_sink(NdjsonSink(export, append=False))
    net = Network(
        sim, Channel(shadowing_sigma_db=0.0, fading_sigma_db=2.0, seed=2018)
    )
    topo_rng = sim.rng.get("topo")
    for i in range(1, N_NODES + 1):
        net.create_node(
            i,
            Point(
                float(topo_rng.uniform(0, AREA_M)),
                float(topo_rng.uniform(0, AREA_M)),
            ),
        )
    router = AodvRouter(net)
    router.attach_all(range(1, N_NODES + 1))
    service = ReliableMessageService(router)

    # 3. Node churn while a Poisson unicast workload runs.
    faults = FaultInjector(net)
    faults.node_churn(
        mtbf_s=60.0, mean_downtime_s=8.0, start_s=10.0, duration_s=HORIZON
    )
    workload_rng = sim.rng.get("workload")

    def tick() -> None:
        if sim.now > SEND_UNTIL:
            return
        a, b = workload_rng.choice(range(1, N_NODES + 1), size=2, replace=False)
        service.send(int(a), int(b), payload="situation report")
        sim.call_in(float(workload_rng.exponential(2.0)), tick)

    sim.call_in(1.0, tick)
    sim.run(until=HORIZON)
    sim.trace.flush_sinks()
    sim.trace.close_sinks()
    print(f"fates: {service.fate_counts()}  "
          f"delivery={service.delivery_ratio():.0%}")
    print(f"telemetry: {export}")

    # 4. Offline analysis straight from the in-memory trace (the NDJSON
    # export feeds `python -m repro.obs trace` identically).
    analysis = analyze_trace(sim.trace.iter_dicts())
    print()
    print(render_trace_report(analysis, top=8))
    return 0


if __name__ == "__main__":
    sys.exit(main())
