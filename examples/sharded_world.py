#!/usr/bin/env python
"""Sharded simulation quickstart: one world, many processes, one trace.

Walks the :mod:`repro.shard` surface end to end:

1. declare a shardable world (:class:`ShardScenarioSpec`) and a cut
   (:class:`ShardPlan`),
2. run it serially — the 1-shard reference,
3. run the identical world as four worker processes synchronized at
   conservative time-window barriers,
4. verify both produce the *same merged trace fingerprint* (the sharded
   engine's correctness contract), and compare throughput.

Run:  PYTHONPATH=src python examples/sharded_world.py
"""

from repro.shard import (
    FaultPlanSpec,
    LinkFlapSpec,
    ShardPlan,
    ShardScenarioSpec,
    ShardedSimulator,
    WorkloadSpec,
    run_serial,
)


def main() -> None:
    # 1. A 3x3-block urban district; every other node beacons once per
    #    second through a flooding router while links flap underneath.
    #    The bitrate cap keeps the conservative sync window wide (the
    #    lookahead is min-packet-airtime, so slow radios = fewer barriers).
    spec = ShardScenarioSpec(
        seed=7,
        blocks=3,
        n_blue=24,
        bitrate_cap_bps=5e4,
        router="flooding",
        workload=WorkloadSpec(kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2),
        faults=FaultPlanSpec(
            link_flap=LinkFlapSpec(start_s=1.0, n_links=3, mtbf_s=4.0)
        ),
    )
    plan = ShardPlan(n_shards=4, cell_size_m=60.0)
    horizon = 5.0

    # 2. The serial reference: same keyed-RNG dispatch, no barriers.
    serial = run_serial(spec, horizon)
    print(
        f"serial:  {len(serial.records)} trace records, "
        f"{serial.events_processed} events in {serial.wall_elapsed_s:.2f}s"
    )

    # 3. Four worker processes, conservative window barriers over pipes.
    sharded = ShardedSimulator(spec, plan, mode="fork").run(horizon)
    owned = [p["owned"] for p in sharded.per_shard]
    print(
        f"sharded: {len(sharded.records)} trace records across "
        f"{sharded.n_shards} shards (nodes per shard: {owned}), "
        f"{sharded.n_windows} windows of {sharded.window_s * 1e3:.1f} ms"
    )

    # 4. The correctness contract: partition-invariant fingerprints.
    fp_serial, fp_sharded = serial.fingerprint(), sharded.fingerprint()
    print(f"serial  fingerprint: {fp_serial}")
    print(f"sharded fingerprint: {fp_sharded}")
    if fp_serial != fp_sharded:
        raise SystemExit("FINGERPRINT MISMATCH — the engine has a bug")
    print("fingerprints match: the sharded run is bit-identical to serial")

    # 5. The metrics plane obeys the same contract: per-shard registries
    #    merge (counters summed, replicated families max-merged) to the
    #    serial registry.  shard.lag_events is coordinator-side accounting
    #    — real skew in the sharded run, identically zero serially — so it
    #    is excluded; float sums are rounded to 9 decimals (same tolerance
    #    as the trace fingerprint) because summing per-shard partials in a
    #    different order than serial legally moves the last ulp.
    def comparable(metrics):
        def canon(v):
            if isinstance(v, float):
                return round(v, 9)
            if isinstance(v, list):
                return [canon(x) for x in v]
            if isinstance(v, dict):
                return {k: canon(x) for k, x in v.items()}
            return v

        return {k: canon(v) for k, v in metrics.items() if k != "shard.lag_events"}

    if comparable(serial.metrics) != comparable(sharded.metrics):
        raise SystemExit("MERGED METRICS MISMATCH — the engine has a bug")
    print(
        "merged metrics match serial "
        f"({len(comparable(serial.metrics))} instruments, "
        f"shard lag {sharded.metrics['shard.lag_events']['value']:.0f} events)"
    )
    print(
        f"throughput: serial {serial.events_per_sec:,.0f} ev/s, "
        f"sharded {sharded.events_per_sec:,.0f} ev/s "
        "(sharded wins once worlds outgrow one core)"
    )


if __name__ == "__main__":
    main()
