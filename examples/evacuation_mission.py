#!/usr/bin/env python
"""Non-combatant evacuation with the full IoBT stack, and what each part buys.

The mission of the paper's introduction: evacuate civilian groups through an
urban grid while hazards appear dynamically and red sources spread
disinformation about where the danger is.  The run compares the full stack
(synthesis + learning + adaptation) against each single-function ablation.

Run:  python examples/evacuation_mission.py
"""

from repro import ScenarioBuilder, Simulator
from repro.core.services.evacuation import EvacuationConfig, EvacuationMission
from repro.util.tables import ResultTable


def run_mission(seed: int, **flags) -> "EvacuationResult":
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=8, block_size_m=100.0, density=0.4)
        .population(n_blue=80, n_red=40, n_gray=30)
        .build()
    )
    mission = EvacuationMission(scenario, EvacuationConfig(**flags))
    return mission.run()


def main() -> None:
    configurations = [
        ("full stack", {}),
        ("no synthesis", {"use_synthesis": False}),
        ("no learning", {"use_learning": False}),
        ("no adaptation", {"use_adaptation": False}),
        ("none", {
            "use_synthesis": False,
            "use_learning": False,
            "use_adaptation": False,
        }),
    ]
    seeds = (11, 12, 13, 14, 15)
    table = ResultTable(
        "Evacuation mission: ablation of IoBT functions (mean over "
        f"{len(seeds)} seeds)",
        ["configuration", "evacuated", "exposures", "mean_time_s", "belief_acc"],
    )
    for label, flags in configurations:
        evacuated, exposures, times, accuracy = 0.0, 0.0, 0.0, 0.0
        for seed in seeds:
            result = run_mission(seed, **flags)
            evacuated += result.evacuated_fraction
            exposures += result.exposures
            times += result.mean_evacuation_time_s
            accuracy += result.hazard_belief_accuracy
        n = len(seeds)
        table.add_row(
            configuration=label,
            evacuated=evacuated / n,
            exposures=exposures / n,
            mean_time_s=times / n,
            belief_acc=accuracy / n,
        )
    table.print()
    print(
        "\nReading: exposures (civilians walked through active hazards) is"
        "\nthe safety metric; the full stack should dominate every ablation."
    )


if __name__ == "__main__":
    main()
