#!/usr/bin/env python
"""Command by intent vs hierarchical approval: the decision-loop trade.

Reproduces the paper's core doctrinal argument as a measurement: requests
about a drifting situation arrive continuously; hierarchical C2 routes each
through an echelon approval chain, command-by-intent decides in-envelope
requests locally, full autonomy decides everything locally.  The price of
each extra approval stage is paid in *staleness* — how far the situation
moved before the decision landed.

Also sweeps the envelope width: how much initiative must be delegated
before the decision loop is effectively local?

Run:  python examples/intent_vs_hierarchy.py
"""

from repro import Simulator
from repro.core.services.c2 import C2Comparison, C2Mode
from repro.util.tables import ResultTable


def run(mode: C2Mode, *, envelope: float = 0.7, seed: int = 5):
    sim = Simulator(seed=seed)
    comparison = C2Comparison(
        sim,
        mode,
        arrival_rate_hz=0.1,
        envelope_fraction=envelope,
        drift_speed_m_s=1.5,
        stale_threshold_m=100.0,
    )
    comparison.start(duration_s=4 * 3600.0)
    sim.run(until=12 * 3600.0)
    return comparison.report()


def main() -> None:
    table = ResultTable(
        "Decision loop by C2 mode (4 h of requests, drift 1.5 m/s)",
        ["mode", "decisions", "latency_mean_s", "latency_p95_s",
         "staleness_mean_m", "stale_fraction"],
    )
    for mode in C2Mode:
        report = run(mode)
        table.add_row(
            mode=mode.value,
            decisions=report["decisions"],
            latency_mean_s=report["latency_mean_s"],
            latency_p95_s=report["latency_p95_s"],
            staleness_mean_m=report["staleness_mean_m"],
            stale_fraction=report["stale_fraction"],
        )
    table.print()

    sweep = ResultTable(
        "Intent mode: effect of initiative-envelope width",
        ["envelope_fraction", "latency_mean_s", "stale_fraction",
         "escalations"],
    )
    for envelope in (0.0, 0.25, 0.5, 0.75, 1.0):
        report = run(C2Mode.INTENT, envelope=envelope)
        sweep.add_row(
            envelope_fraction=envelope,
            latency_mean_s=report["latency_mean_s"],
            stale_fraction=report["stale_fraction"],
            escalations=report["escalations"],
        )
    sweep.print()
    print(
        "\nReading: hierarchical approval saturates the chain and acts on"
        "\nobsolete data; delegating initiative shrinks the loop roughly in"
        "\nproportion to the envelope width — the paper's central claim."
    )


if __name__ == "__main__":
    main()
