"""Tests for beta reputation and the trust ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.security.trust import BetaReputation, TrustLedger


class TestBetaReputation:
    def test_prior_is_half(self):
        assert BetaReputation().trust == pytest.approx(0.5)

    def test_positive_evidence_raises_trust(self):
        rep = BetaReputation()
        for _ in range(10):
            rep.observe(True)
        assert rep.trust > 0.9

    def test_negative_evidence_lowers_trust(self):
        rep = BetaReputation()
        for _ in range(10):
            rep.observe(False)
        assert rep.trust < 0.1

    def test_weighted_observation(self):
        a, b = BetaReputation(), BetaReputation()
        a.observe(True, weight=5.0)
        for _ in range(5):
            b.observe(True)
        assert a.trust == pytest.approx(b.trust)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            BetaReputation().observe(True, weight=-1.0)

    def test_aging_moves_toward_prior(self):
        rep = BetaReputation()
        for _ in range(20):
            rep.observe(True)
        high = rep.trust
        for _ in range(50):
            rep.age(0.9)
        assert 0.5 <= rep.trust < high

    def test_aging_factor_validated(self):
        with pytest.raises(ConfigurationError):
            BetaReputation().age(0.0)

    def test_confidence_grows_with_evidence(self):
        rep = BetaReputation()
        c0 = rep.confidence
        rep.observe(True)
        rep.observe(False)
        assert rep.confidence > c0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_trust_always_in_unit_interval(self, outcomes):
        rep = BetaReputation()
        for o in outcomes:
            rep.observe(o)
        assert 0.0 < rep.trust < 1.0


class TestTrustLedger:
    def test_unknown_subject_gets_prior(self):
        assert TrustLedger().trust(42) == pytest.approx(0.5)

    def test_observe_updates_subject_only(self):
        ledger = TrustLedger()
        ledger.observe(1, True)
        assert ledger.trust(1) > ledger.trust(2)

    def test_trusted_and_suspicious_partition(self):
        ledger = TrustLedger()
        for _ in range(10):
            ledger.observe(1, True)
            ledger.observe(2, False)
        assert list(ledger.trusted(0.6)) == [1]
        assert list(ledger.suspicious(0.4)) == [2]

    def test_age_all(self):
        ledger = TrustLedger(aging_factor=0.5)
        for _ in range(10):
            ledger.observe(1, True)
        before = ledger.trust(1)
        for _ in range(20):
            ledger.age_all()
        assert ledger.trust(1) < before

    def test_snapshot(self):
        ledger = TrustLedger()
        ledger.observe(7, True)
        snap = ledger.snapshot()
        assert set(snap) == {7}

    def test_invalid_aging_factor(self):
        with pytest.raises(ConfigurationError):
            TrustLedger(aging_factor=1.5)
