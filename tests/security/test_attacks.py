"""Tests for attack injection."""

import pytest

from repro import ScenarioBuilder
from repro.errors import SecurityError
from repro.security.attacks import (
    AttackSchedule,
    DataPoisoningAttack,
    JammingAttack,
    NodeCaptureAttack,
    NodeDestructionAttack,
    SybilAttack,
)
from repro.things.asset import Affiliation


@pytest.fixture
def scenario(sim):
    return (
        ScenarioBuilder(sim)
        .urban_grid(blocks=4)
        .population(n_blue=20, n_red=3, n_gray=5)
        .jammers(2)
        .build()
    )


class TestJamming:
    def test_requires_jammers(self, sim):
        sc = ScenarioBuilder(sim).urban_grid(blocks=3).population(5, 0, 0).build()
        with pytest.raises(SecurityError):
            JammingAttack(sc)

    def test_launch_activates_and_cease_reverts(self, scenario):
        attack = JammingAttack(scenario)
        attack.launch()
        assert all(j.active for j in scenario.jammers)
        assert scenario.environment.rf_interference == 1.0
        attack.cease()
        assert not any(j.active for j in scenario.jammers)
        assert scenario.environment.rf_interference == 0.0

    def test_schedule_timing(self, scenario):
        attack = JammingAttack(scenario)
        attack.schedule(start_s=10.0, duration_s=20.0)
        scenario.sim.run(until=5.0)
        assert not attack.active
        scenario.sim.run(until=15.0)
        assert attack.active
        scenario.sim.run(until=40.0)
        assert not attack.active

    def test_launch_idempotent(self, scenario):
        attack = JammingAttack(scenario)
        attack.launch()
        attack.launch()
        assert scenario.sim.trace.count("attack.launch") == 1


class TestCapture:
    def test_capture_makes_hostile(self, scenario):
        victim = scenario.inventory.blue()[0]
        attack = NodeCaptureAttack(scenario, [victim.id])
        attack.launch()
        assert victim.captured
        assert victim.hostile
        attack.cease()
        assert not victim.hostile

    def test_capture_flips_human_source(self, scenario):
        humans = [a for a in scenario.inventory.blue() if a.human]
        if not humans:
            pytest.skip("no blue humans in this draw")
        victim = humans[0]
        NodeCaptureAttack(scenario, [victim.id]).launch()
        assert victim.human.malicious

    def test_empty_target_list_rejected(self, scenario):
        with pytest.raises(SecurityError):
            NodeCaptureAttack(scenario, [])


class TestDestruction:
    def test_destroy_takes_node_down(self, scenario):
        victim = scenario.inventory.blue()[0]
        NodeDestructionAttack(scenario, [victim.id]).launch()
        assert not victim.alive


class TestSybil:
    def test_creates_red_assets_claiming_gray_class(self, scenario):
        before = len(scenario.inventory)
        attack = SybilAttack(scenario, 5)
        attack.launch()
        assert len(scenario.inventory) == before + 5
        for asset in attack.created:
            assert asset.affiliation is Affiliation.RED
            assert asset.profile.device_class == "smartphone"

    def test_cease_removes_sybils_from_network(self, scenario):
        attack = SybilAttack(scenario, 3)
        attack.launch()
        attack.cease()
        assert all(not a.alive for a in attack.created)


class TestPoisoning:
    def test_displaces_only_compromised_reports(self, scenario):
        import numpy as np

        from repro.things.capabilities import SensingModality
        from repro.things.sensors import Detection
        from repro.util.geometry import Point

        rng = np.random.default_rng(0)
        attack = DataPoisoningAttack(scenario, [1], displacement_m=100.0)
        attack.launch()
        detections = [
            Detection(1, SensingModality.CAMERA, 9, 0.0, Point(0, 0), 0.9),
            Detection(2, SensingModality.CAMERA, 9, 0.0, Point(0, 0), 0.9),
        ]
        out = attack.poison(detections, rng)
        assert out[0].measured_position.distance_to(Point(0, 0)) == pytest.approx(
            100.0
        )
        assert out[1].measured_position == Point(0, 0)

    def test_inactive_passthrough(self, scenario):
        import numpy as np

        attack = DataPoisoningAttack(scenario, [1])
        assert attack.poison([], np.random.default_rng(0)) == []


class TestSchedule:
    def test_schedule_tracks_entries(self, scenario):
        schedule = AttackSchedule(scenario)
        attack = schedule.add(JammingAttack(scenario), start_s=5.0)
        scenario.sim.run(until=10.0)
        assert attack.active
        assert schedule.active_attacks() == ["jamming"]


class TestAttrition:
    def test_losses_accumulate_over_time(self, scenario):
        from repro.security.attacks import AttritionProcess

        attrition = AttritionProcess(scenario, mtbf_s=50.0)
        attrition.launch()
        scenario.sim.run(until=500.0)
        # With MTBF 50 s over 500 s, essentially everything targeted dies.
        assert attrition.loss_rate() > 0.9

    def test_cease_stops_further_losses(self, scenario):
        from repro.security.attacks import AttritionProcess

        attrition = AttritionProcess(scenario, mtbf_s=100.0)
        attrition.schedule(start_s=0.0, duration_s=20.0)
        scenario.sim.run(until=1000.0)
        # Only failures drawn inside the 20 s window land.
        assert 0.0 <= attrition.loss_rate() < 0.5

    def test_invalid_parameters(self, scenario):
        import pytest as _pytest

        from repro.errors import SecurityError
        from repro.security.attacks import AttritionProcess

        with _pytest.raises(SecurityError):
            AttritionProcess(scenario, mtbf_s=0.0)
        with _pytest.raises(SecurityError):
            AttritionProcess(scenario, asset_ids=[])
