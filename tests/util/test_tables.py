"""Tests for result tables."""

import pytest

from repro.util.tables import ResultTable


class TestResultTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ResultTable("t", [])

    def test_add_and_column(self):
        t = ResultTable("t", ["n", "v"])
        t.add_row(n=1, v=0.5)
        t.add_row(n=2, v=0.75)
        assert t.column("n") == [1, 2]
        assert len(t) == 2

    def test_unknown_column_rejected(self):
        t = ResultTable("t", ["n"])
        with pytest.raises(KeyError):
            t.add_row(bogus=1)

    def test_missing_column_blank(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row(a=1)
        assert t.rows[0]["b"] == ""

    def test_render_contains_title_and_values(self):
        t = ResultTable("my experiment", ["metric"])
        t.add_row(metric=3.14159)
        text = t.render()
        assert "my experiment" in text
        assert "3.142" in text

    def test_csv(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row(a=1, b=2)
        assert t.to_csv().splitlines() == ["a,b", "1,2"]

    def test_float_formatting_extremes(self):
        t = ResultTable("t", ["x"])
        t.add_row(x=1.23e-9)
        t.add_row(x=float("nan"))
        text = t.render()
        assert "1.230e-09" in text
        assert "nan" in text

    def test_column_unknown_raises(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(KeyError):
            t.column("z")
