"""Tests for deterministic RNG streams."""

import numpy as np
from hypothesis import given, strategies as st

from repro.util.rng import (
    RngStreams,
    derive_seed,
    generator_digest,
    generator_draws,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must be distinct streams.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_in_uint64_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(seed=7)
        assert streams.get("x") is streams.get("x")

    def test_distinct_names_distinct_sequences(self):
        streams = RngStreams(seed=7)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RngStreams(seed=9).get("m").random(16)
        b = RngStreams(seed=9).get("m").random(16)
        assert np.allclose(a, b)

    def test_creation_order_does_not_matter(self):
        s1 = RngStreams(seed=3)
        s1.get("first")
        v1 = s1.get("second").random(4)
        s2 = RngStreams(seed=3)
        v2 = s2.get("second").random(4)
        assert np.allclose(v1, v2)

    def test_spawn_namespaces(self):
        root = RngStreams(seed=5)
        child = root.spawn("sub")
        # Child streams differ from the parent's same-named stream.
        assert not np.allclose(child.get("x").random(4), RngStreams(5).get("x").random(4))
        # But are reproducible.
        again = RngStreams(seed=5).spawn("sub")
        assert np.allclose(
            child.reset() or child.get("x").random(4), again.get("x").random(4)
        )

    def test_reset_restarts_streams(self):
        streams = RngStreams(seed=1)
        first = streams.get("x").random(4)
        streams.reset()
        second = streams.get("x").random(4)
        assert np.allclose(first, second)


class TestGeneratorDraws:
    """PCG64 draw counting via the LCG distance walk (no hot-path hooks)."""

    def test_fresh_generator_has_zero_draws(self):
        assert generator_draws(np.random.default_rng(42), 42) == 0

    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 500))
    def test_exact_count_recovered_from_state(self, seed, n):
        gen = np.random.default_rng(seed)
        if n:
            gen.integers(0, 2**63, size=n)  # one 64-bit word per int
        assert generator_draws(gen, seed) == n

    def test_wrong_seed_reports_none(self):
        gen = np.random.default_rng(10)
        gen.random(3)
        # A different seed derives a different PCG64 increment, so the
        # states lie on different sequences — unattributable, not huge.
        assert generator_draws(gen, 11) is None

    def test_streams_draw_counts(self):
        streams = RngStreams(seed=99)
        # random() consumes exactly one 64-bit word per double; counts are
        # state advances, not logical samples (bounded ints may buffer).
        streams.get("a").random(5)
        streams.get("b")
        counts = streams.draw_counts()
        assert counts == {"a": 5, "b": 0}

    def test_stream_states_rows(self):
        streams = RngStreams(seed=99)
        streams.get("a").random(3)
        (row,) = streams.stream_states()
        assert row["name"] == "a"
        assert row["seed"] == derive_seed(99, "a")
        assert row["draws"] == 3
        # The digest pins the exact state: same draws -> same digest.
        twin = RngStreams(seed=99)
        twin.get("a").random(3)
        assert generator_digest(twin.get("a")) == row["state_digest"]
        twin.get("a").random()
        assert generator_digest(twin.get("a")) != row["state_digest"]
