"""Tests for statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    mean_confidence_interval,
    percentile,
    summarize,
)

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=80
)


class TestRunningStats:
    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert math.isnan(rs.mean)

    def test_single(self):
        rs = RunningStats()
        rs.add(4.0)
        assert rs.mean == 4.0
        assert rs.variance == 0.0

    @given(samples)
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert rs.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-6)
        assert rs.min == min(values)
        assert rs.max == max(values)

    @given(samples, samples)
    def test_merge_equals_concat(self, a, b):
        ra, rb, rc = RunningStats(), RunningStats(), RunningStats()
        ra.extend(a)
        rb.extend(b)
        rc.extend(a + b)
        merged = ra.merge(rb)
        assert merged.count == rc.count
        assert merged.mean == pytest.approx(rc.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(rc.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        ra, rb = RunningStats(), RunningStats()
        ra.extend([1, 2, 3])
        merged = ra.merge(rb)
        assert merged.count == 3
        assert merged.mean == pytest.approx(2.0)


class TestConfidenceInterval:
    def test_empty(self):
        mean, hw = mean_confidence_interval([])
        assert math.isnan(mean)

    def test_single_value(self):
        mean, hw = mean_confidence_interval([5.0])
        assert mean == 5.0
        assert hw == 0.0

    def test_constant_sample_zero_width(self):
        mean, hw = mean_confidence_interval([2.0] * 10)
        assert mean == 2.0
        assert hw == pytest.approx(0.0)

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        _, hw_small = mean_confidence_interval(small)
        _, hw_large = mean_confidence_interval(large)
        assert hw_large < hw_small


class TestSummaries:
    def test_percentile_empty_nan(self):
        assert math.isnan(percentile([], 50))

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0, 3.0])
        assert set(s) == {"mean", "std", "min", "p50", "p95", "max"}
        assert s["mean"] == pytest.approx(2.0)

    def test_summarize_empty_all_nan(self):
        s = summarize([])
        assert all(math.isnan(v) for v in s.values())
