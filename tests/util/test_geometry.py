"""Tests for planar geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.geometry import Point, Region, bearing, centroid, distance

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_translate(self):
        p = Point(1, 2).translate(3, -1)
        assert (p.x, p.y) == (4, 1)

    def test_toward_partial(self):
        p = Point(0, 0).toward(Point(10, 0), 4)
        assert p == Point(4, 0)

    def test_toward_overshoot_clamps_to_target(self):
        assert Point(0, 0).toward(Point(1, 0), 100) == Point(1, 0)

    def test_toward_zero_distance(self):
        assert Point(2, 2).toward(Point(2, 2), 5) == Point(2, 2)

    def test_iter_unpacks(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    @given(finite, finite, finite, finite)
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestBearingCentroid:
    def test_bearing_east(self):
        assert bearing(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_bearing_north(self):
        assert bearing(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(0, 2), Point(2, 2)])
        assert c == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestRegion:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Region(1, 0, 0, 5)

    def test_properties(self):
        r = Region(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == Point(2, 1)

    def test_contains_boundary(self):
        r = Region(0, 0, 1, 1)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(1, 1))
        assert not r.contains(Point(1.01, 0.5))

    def test_clamp(self):
        r = Region(0, 0, 10, 10)
        assert r.clamp(Point(-5, 20)) == Point(0, 10)
        assert r.clamp(Point(5, 5)) == Point(5, 5)

    def test_sample_inside(self):
        r = Region(-10, -10, 10, 10)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert r.contains(r.sample(rng))

    def test_grid_points_count_and_bounds(self):
        r = Region(0, 0, 100, 50)
        pts = r.grid_points(5, 3)
        assert len(pts) == 15
        assert all(r.contains(p) for p in pts)

    def test_grid_points_invalid(self):
        with pytest.raises(ValueError):
            Region(0, 0, 1, 1).grid_points(0, 2)
