"""Tests for truth discovery and reputation feedback."""

import numpy as np
import pytest

from repro.core.learning.reputation import ReputationFeedback
from repro.core.learning.truth_discovery import (
    StreamingTruthDiscovery,
    TruthDiscovery,
    majority_vote,
)
from repro.errors import LearningError
from repro.things.humans import HumanSource


def make_world(
    n_events=30,
    n_honest=10,
    n_malicious=0,
    honest_rel=0.85,
    malicious_rel=0.9,
    seed=0,
):
    rng = np.random.default_rng(seed)
    truths = {e: bool(rng.random() < 0.5) for e in range(1, n_events + 1)}
    sources = [
        HumanSource(i, reliability=honest_rel, report_rate=0.8)
        for i in range(1, n_honest + 1)
    ] + [
        HumanSource(
            n_honest + i, reliability=malicious_rel, report_rate=0.9, malicious=True
        )
        for i in range(1, n_malicious + 1)
    ]
    claims = []
    for source in sources:
        claims.extend(source.report_all(truths, rng))
    return truths, sources, claims, rng


class TestTruthDiscovery:
    def test_no_claims_raises(self):
        with pytest.raises(LearningError):
            TruthDiscovery().run([])

    def test_recovers_truth_with_honest_sources(self):
        truths, _s, claims, _r = make_world()
        result = TruthDiscovery().run(claims)
        assert result.accuracy(truths) > 0.9
        assert result.converged

    def test_estimates_honest_reliability(self):
        truths, sources, claims, _r = make_world(n_events=60)
        result = TruthDiscovery().run(claims)
        honest_estimates = [
            result.source_reliability[s.source_id] for s in sources
        ]
        assert np.mean(honest_estimates) == pytest.approx(0.85, abs=0.1)

    def test_malicious_sources_get_low_reliability(self):
        truths, sources, claims, _r = make_world(n_malicious=6, n_events=60)
        result = TruthDiscovery().run(claims)
        malicious_ids = [s.source_id for s in sources if s.malicious]
        estimates = [result.source_reliability[i] for i in malicious_ids]
        assert max(estimates) < 0.3  # EM inverts their testimony

    def test_beats_majority_under_collusion_with_anchors(self):
        # Malicious outnumber honest: majority vote fails.  Plain EM would
        # lock onto the colluding majority's mirrored story (label-switching
        # symmetry), but anchoring two vetted scouts breaks the symmetry.
        truths, sources, claims, _r = make_world(
            n_honest=8, n_malicious=14, n_events=50, seed=3
        )
        anchored = {sources[0].source_id: 0.85, sources[1].source_id: 0.85}
        td_acc = TruthDiscovery(anchors=anchored).run(claims).accuracy(truths)
        mv = majority_vote(claims)
        mv_acc = sum(mv[e] == truths[e] for e in mv) / len(mv)
        assert td_acc > 0.85
        assert mv_acc < 0.5
        assert td_acc > mv_acc + 0.3

    def test_unanchored_em_beats_majority_when_honest_majority(self):
        # With honest sources in the majority, no anchors are needed.
        truths, _s, claims, _r = make_world(
            n_honest=14, n_malicious=8, n_events=50, seed=3
        )
        td_acc = TruthDiscovery().run(claims).accuracy(truths)
        assert td_acc > 0.9

    def test_anchor_validation(self):
        with pytest.raises(LearningError):
            TruthDiscovery(anchors={1: 1.5})

    def test_probability_bounds(self):
        truths, _s, claims, _r = make_world()
        result = TruthDiscovery().run(claims)
        assert all(0.0 <= p <= 1.0 for p in result.event_probability.values())
        assert all(
            0.0 < r < 1.0 for r in result.source_reliability.values()
        )

    def test_invalid_parameters(self):
        with pytest.raises(LearningError):
            TruthDiscovery(prior_true=0.0)
        with pytest.raises(LearningError):
            TruthDiscovery(initial_reliability=1.0)


class TestMajorityVote:
    def test_simple_majority(self):
        from repro.things.humans import Claim

        claims = [
            Claim(1, 1, True),
            Claim(2, 1, True),
            Claim(3, 1, False),
        ]
        assert majority_vote(claims) == {1: True}

    def test_tie_breaks_true(self):
        from repro.things.humans import Claim

        claims = [Claim(1, 1, True), Claim(2, 1, False)]
        assert majority_vote(claims)[1] is True


class TestStreaming:
    def test_batches_update_result(self):
        truths, sources, _c, rng = make_world(n_events=20)
        streaming = StreamingTruthDiscovery(window=10_000)
        for _round in range(3):
            batch = []
            for source in sources:
                batch.extend(source.report_all(truths, rng))
            result = streaming.add_batch(batch)
        assert result.accuracy(truths) > 0.9

    def test_window_bounds_memory(self):
        truths, sources, claims, rng = make_world()
        streaming = StreamingTruthDiscovery(window=50)
        streaming.add_batch(claims)
        assert len(streaming._claims) <= 50

    def test_invalid_window(self):
        with pytest.raises(LearningError):
            StreamingTruthDiscovery(window=0)


class TestReputationFeedback:
    def test_honest_gain_trust_malicious_lose_it(self):
        truths, sources, claims, _r = make_world(
            n_honest=10, n_malicious=5, n_events=60
        )
        result = TruthDiscovery().run(claims)
        feedback = ReputationFeedback()
        snapshot = feedback.apply(claims, result)
        honest_trust = np.mean(
            [snapshot[s.source_id] for s in sources if not s.malicious]
        )
        malicious_trust = np.mean(
            [snapshot[s.source_id] for s in sources if s.malicious]
        )
        assert honest_trust > 0.7
        assert malicious_trust < 0.35

    def test_uncertain_events_generate_no_evidence(self):
        from repro.core.learning.truth_discovery import TruthDiscoveryResult
        from repro.things.humans import Claim

        result = TruthDiscoveryResult(
            event_probability={1: 0.55},  # under the 0.7 confidence floor
            source_reliability={},
            iterations=1,
            converged=True,
        )
        feedback = ReputationFeedback()
        feedback.apply([Claim(9, 1, True)], result)
        assert feedback.ledger.trust(9) == pytest.approx(0.5)  # untouched prior

    def test_distrusted_sources_listed(self):
        truths, sources, claims, _r = make_world(
            n_honest=10, n_malicious=5, n_events=60
        )
        result = TruthDiscovery().run(claims)
        feedback = ReputationFeedback()
        feedback.apply(claims, result)
        distrusted = set(feedback.distrusted_sources())
        malicious_ids = {s.source_id for s in sources if s.malicious}
        assert malicious_ids <= distrusted
