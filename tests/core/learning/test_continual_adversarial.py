"""Tests for continual learning, adversarial attacks, cost-aware learning."""

import numpy as np
import pytest

from repro.core.learning.adversarial import (
    evasion_perturb,
    flip_labels,
    poisoning_detector,
)
from repro.core.learning.continual import (
    BlindContinualLearner,
    ContextAwareLearner,
    OnlineLinearModel,
)
from repro.core.learning.cost import (
    ActivationPolicy,
    TopologyOption,
    cost_accuracy_frontier,
    standard_options,
)
from repro.errors import LearningError


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def make_context(rng, w, center, n=300, dim=3):
    x = rng.normal(center, 1.0, (n, dim))
    return x, x @ w


class TestOnlineLinearModel:
    def test_learns_linear_map(self, rng):
        w = rng.normal(0, 1, 4)
        x = rng.normal(0, 1, (500, 4))
        model = OnlineLinearModel(4)
        model.partial_fit(x, x @ w)
        assert model.mse(x, x @ w) < 1e-3

    def test_stable_on_large_inputs(self, rng):
        w = rng.normal(0, 1, 3)
        x = rng.normal(100, 5, (500, 3))  # large-norm features
        model = OnlineLinearModel(3)
        model.partial_fit(x, x @ w)
        assert np.isfinite(model.w).all()

    def test_invalid_parameters(self):
        with pytest.raises(LearningError):
            OnlineLinearModel(0)
        with pytest.raises(LearningError):
            OnlineLinearModel(3, learning_rate=2.5)


class TestCatastrophicForgetting:
    def test_blind_forgets_context_aware_does_not(self, rng):
        wA, wB = rng.normal(0, 1, 3), rng.normal(0, 1, 3)
        xA, yA = make_context(rng, wA, center=0.0)
        xB, yB = make_context(rng, wB, center=8.0)
        blind = BlindContinualLearner(3)
        aware = ContextAwareLearner(3, context_threshold=4.0)
        for learner in (blind, aware):
            learner.learn(xA, yA)
        blind_before = blind.evaluate(xA, yA)
        for learner in (blind, aware):
            learner.learn(xB, yB)
        assert blind.evaluate(xA, yA) > blind_before + 0.01  # forgot
        assert aware.evaluate(xA, yA) < 0.01                 # remembered
        assert aware.context_count == 2

    def test_same_context_reuses_model(self, rng):
        aware = ContextAwareLearner(3, context_threshold=4.0)
        w = rng.normal(0, 1, 3)
        x1, y1 = make_context(rng, w, center=0.0)
        x2, y2 = make_context(rng, w, center=0.3)
        assert aware.learn(x1, y1) == aware.learn(x2, y2)
        assert aware.context_count == 1

    def test_max_contexts_cap(self, rng):
        aware = ContextAwareLearner(2, context_threshold=0.5, max_contexts=3)
        w = rng.normal(0, 1, 2)
        for center in (0.0, 5.0, 10.0, 15.0, 20.0):
            x, y = make_context(rng, w, center=center, dim=2)
            aware.learn(x, y)
        assert aware.context_count == 3

    def test_evaluate_before_learning_raises(self):
        with pytest.raises(LearningError):
            ContextAwareLearner(2).evaluate(np.zeros((1, 2)), np.zeros(1))


class TestAdversarial:
    def test_flip_labels_fraction(self, rng):
        y = np.ones(100)
        poisoned, mask = flip_labels(y, 0.3, rng)
        assert mask.sum() == 30
        assert np.all(poisoned[mask] == -1.0)
        assert np.all(poisoned[~mask] == 1.0)

    def test_flip_zero_fraction_noop(self, rng):
        y = np.ones(10)
        poisoned, mask = flip_labels(y, 0.0, rng)
        assert not mask.any()

    def test_flip_invalid_fraction(self, rng):
        with pytest.raises(LearningError):
            flip_labels(np.ones(5), 1.5, rng)

    def test_evasion_lowers_score(self, rng):
        w = rng.normal(0, 1, 6)
        x = rng.normal(0, 1, (20, 6))
        adv = evasion_perturb(x, w, epsilon=0.5, target_down=True)
        assert np.all(adv @ w < x @ w)

    def test_evasion_bounded(self, rng):
        w = rng.normal(0, 1, 4)
        x = rng.normal(0, 1, (5, 4))
        adv = evasion_perturb(x, w, epsilon=0.2)
        assert np.abs(adv - x).max() <= 0.2 + 1e-12

    def test_poisoning_detector_catches_flips(self, rng):
        w = rng.normal(0, 1, 4)
        x = rng.normal(0, 1, (200, 4))
        y = x @ w + rng.normal(0, 0.05, 200)
        poisoned, mask = flip_labels(y, 0.1, rng)
        flagged = poisoning_detector(x, poisoned, w)
        # Detection quality: most flips caught, few clean flagged.
        recall = (flagged & mask).sum() / mask.sum()
        false_rate = (flagged & ~mask).sum() / (~mask).sum()
        assert recall > 0.8
        assert false_rate < 0.05


class TestCostAwareLearning:
    def test_standard_options_ordered_by_cost(self):
        options = standard_options(16)
        energies = [o.energy_j for o in options]
        assert energies == sorted(energies)

    def test_frontier_monotone(self):
        rows = cost_accuracy_frontier(16, 1.0, rng=np.random.default_rng(0))
        # More energy should buy lower error along the ladder.
        errors = [r["rmse"] for r in rows]
        assert errors == sorted(errors, reverse=True)

    def test_policy_picks_cheapest_meeting_target(self):
        policy = ActivationPolicy(16, 1.0, rng=np.random.default_rng(0))
        frontier = {o.name: policy.error_of(o) for o in policy.options}
        # Target achievable by 'half': policy must not pick 'tree' or denser.
        target = frontier["half"] + 1e-6
        chosen = policy.choose(target)
        assert chosen.energy_j <= [
            o for o in policy.options if o.name == "half"
        ][0].energy_j

    def test_policy_degrades_gracefully(self):
        policy = ActivationPolicy(8, 5.0, rng=np.random.default_rng(0))
        chosen = policy.choose(error_target=1e-9)  # unattainable
        best = min(policy.options, key=policy.error_of)
        assert chosen.name == best.name

    def test_option_validation(self):
        with pytest.raises(LearningError):
            TopologyOption("bad", participation=0.0, links=1)
        with pytest.raises(LearningError):
            standard_options(1)
