"""Tests for learning safety: IBP verification and runtime shields."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.learning.safety import IntervalMlp, RuntimeMonitor, ShieldedPolicy
from repro.errors import LearningError


def tiny_mlp(seed=0, in_dim=2, hidden=8, out_dim=1):
    rng = np.random.default_rng(seed)
    return IntervalMlp(
        [
            (rng.normal(0, 1, (hidden, in_dim)), rng.normal(0, 0.1, hidden)),
            (rng.normal(0, 1, (out_dim, hidden)), np.zeros(out_dim)),
        ]
    )


class TestIntervalMlp:
    def test_shape_validation(self):
        with pytest.raises(LearningError):
            IntervalMlp([])
        with pytest.raises(LearningError):
            IntervalMlp([(np.zeros((2, 3)), np.zeros(5))])
        with pytest.raises(LearningError):
            IntervalMlp(
                [(np.zeros((2, 3)), np.zeros(2)), (np.zeros((1, 9)), np.zeros(1))]
            )

    def test_degenerate_box_is_exact(self):
        mlp = tiny_mlp()
        x = np.array([0.3, -0.2])
        lo, hi = mlp.propagate(x, x)
        y = mlp.forward(x)
        assert np.allclose(lo, y, atol=1e-9)
        assert np.allclose(hi, y, atol=1e-9)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounds_are_sound(self, seed, radius):
        """Every sampled point's output lies within the IBP enclosure."""
        mlp = tiny_mlp(seed % 5)
        rng = np.random.default_rng(seed)
        center = rng.uniform(-1, 1, 2)
        lo_in, hi_in = center - radius, center + radius
        lo, hi = mlp.propagate(lo_in, hi_in)
        for _ in range(20):
            x = rng.uniform(lo_in, hi_in)
            y = mlp.forward(x)
            assert np.all(y >= lo - 1e-9)
            assert np.all(y <= hi + 1e-9)

    def test_bigger_box_wider_bounds(self):
        mlp = tiny_mlp()
        lo1, hi1 = mlp.propagate(np.array([-0.1, -0.1]), np.array([0.1, 0.1]))
        lo2, hi2 = mlp.propagate(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        assert (hi2 - lo2)[0] > (hi1 - lo1)[0]

    def test_invalid_box_rejected(self):
        mlp = tiny_mlp()
        with pytest.raises(LearningError):
            mlp.propagate(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_verification_certificate(self):
        mlp = tiny_mlp()
        lo_in = np.array([-0.05, -0.05])
        hi_in = np.array([0.05, 0.05])
        _lo, hi = mlp.propagate(lo_in, hi_in)
        assert mlp.verify_output_below(lo_in, hi_in, float(hi[0]) + 0.1)
        assert not mlp.verify_output_below(lo_in, hi_in, float(hi[0]) - 1e-6)

    def test_falsification_finds_real_violations(self):
        mlp = tiny_mlp()
        rng = np.random.default_rng(0)
        lo_in = np.array([-1.0, -1.0])
        hi_in = np.array([1.0, 1.0])
        # Threshold below the max observed output: must be falsifiable.
        samples = [
            mlp.forward(rng.uniform(lo_in, hi_in))[0] for _ in range(200)
        ]
        threshold = float(np.percentile(samples, 90))
        counterexample = mlp.falsify(lo_in, hi_in, threshold, rng)
        assert counterexample is not None
        assert mlp.forward(counterexample)[0] >= threshold

    def test_falsification_respects_verified_boxes(self):
        mlp = tiny_mlp()
        rng = np.random.default_rng(0)
        lo_in = np.array([-0.1, -0.1])
        hi_in = np.array([0.1, 0.1])
        _lo, hi = mlp.propagate(lo_in, hi_in)
        threshold = float(hi[0]) + 0.5
        assert mlp.verify_output_below(lo_in, hi_in, threshold)
        assert mlp.falsify(lo_in, hi_in, threshold, rng) is None


class TestRuntimeShield:
    def test_monitor_counts_checks_and_vetoes(self):
        monitor = RuntimeMonitor("speed", lambda s, a: abs(a[0]) <= 1.0)
        assert monitor.allows(np.zeros(1), np.array([0.5]))
        assert not monitor.allows(np.zeros(1), np.array([2.0]))
        assert monitor.checks == 2
        assert monitor.vetoes == 1

    def test_shield_intercepts_unsafe_actions(self):
        aggressive = lambda s: np.array([s[0] * 10.0])   # noqa: E731
        safe = lambda s: np.array([0.0])                 # noqa: E731
        monitor = RuntimeMonitor("bound", lambda s, a: abs(a[0]) <= 1.0)
        shield = ShieldedPolicy(aggressive, monitor, safe)
        out_safe = shield.act(np.array([0.05]))
        out_blocked = shield.act(np.array([5.0]))
        assert out_safe[0] == pytest.approx(0.5)
        assert out_blocked[0] == 0.0
        assert shield.interventions == 1
        assert shield.intervention_rate == pytest.approx(0.5)

    def test_shield_never_emits_unsafe_action(self):
        rng = np.random.default_rng(3)
        policy = lambda s: np.array([float(rng.normal(0, 3))])  # noqa: E731
        monitor = RuntimeMonitor("bound", lambda s, a: abs(a[0]) <= 1.0)
        shield = ShieldedPolicy(policy, monitor, lambda s: np.array([0.0]))
        for _ in range(100):
            action = shield.act(np.zeros(1))
            assert abs(action[0]) <= 1.0
