"""Tests for network tomography and attention allocation."""

import pytest

from repro.core.learning.anomaly import AttentionManager, Report
from repro.core.learning.tomography import (
    AdditiveTomography,
    BooleanTomography,
    PathMeasurement,
)
from repro.errors import LearningError
from repro.security.trust import TrustLedger


def measure(path, failed_links):
    normalized = {tuple(sorted(link)) for link in failed_links}
    ok = not any(
        tuple(sorted(link)) in normalized for link in zip(path, path[1:])
    )
    return PathMeasurement(tuple(path), success=ok)


class TestBooleanTomography:
    def test_no_measurements_raises(self):
        with pytest.raises(LearningError):
            BooleanTomography([])

    def test_all_success_no_failures(self):
        ms = [measure((1, 2, 3), set()), measure((2, 3, 4), set())]
        assert BooleanTomography(ms).localize() == set()

    def test_single_failure_localized_exactly(self):
        failed = {(2, 3)}
        paths = [(1, 2), (2, 3), (3, 4), (1, 2, 3, 4), (2, 3, 4)]
        ms = [measure(p, failed) for p in paths]
        inferred = BooleanTomography(ms).localize()
        assert inferred == {(2, 3)}

    def test_exoneration_by_successful_paths(self):
        # Path (1,2,3) fails, but (1,2) succeeds => (2,3) is the culprit.
        failed = {(2, 3)}
        ms = [measure((1, 2), failed), measure((1, 2, 3), failed)]
        assert BooleanTomography(ms).localize() == {(2, 3)}

    def test_score_perfect_when_identifiable(self):
        failed = {(2, 3), (4, 5)}
        paths = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 2, 3), (3, 4, 5)]
        ms = [measure(p, failed) for p in paths]
        score = BooleanTomography(ms).score(failed)
        assert score["precision"] == 1.0
        assert score["recall"] == 1.0

    def test_unobserved_links_excluded_from_score(self):
        failed = {(7, 8)}  # never measured
        ms = [measure((1, 2), failed)]
        score = BooleanTomography(ms).score(failed)
        assert score["recall"] == 1.0  # vacuous: nothing observable failed

    def test_ambiguity_yields_minimal_explanation(self):
        # Only one failing path with two untestable links: greedy picks one.
        failed = {(1, 2)}
        ms = [measure((1, 2, 3), failed)]
        inferred = BooleanTomography(ms).localize()
        assert len(inferred) == 1


class TestAdditiveTomography:
    def _world(self):
        delays = {
            (1, 2): 0.010,
            (2, 3): 0.050,
            (3, 4): 0.020,
            (1, 3): 0.040,
            (2, 4): 0.015,
        }

        def path_delay(path):
            return sum(
                delays[tuple(sorted(link))] for link in zip(path, path[1:])
            )

        paths = [(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 2, 3), (2, 3, 4), (1, 3, 4)]
        ms = [
            PathMeasurement(tuple(p), success=True, delay_s=path_delay(p))
            for p in paths
        ]
        return delays, ms

    def test_exact_recovery_with_full_rank(self):
        delays, ms = self._world()
        tomography = AdditiveTomography(ms)
        assert tomography.rank_deficiency() == 0
        assert tomography.estimation_error(delays) < 1e-6

    def test_estimates_non_negative(self):
        delays, ms = self._world()
        assert all(v >= 0 for v in AdditiveTomography(ms).estimate().values())

    def test_rank_deficiency_reported(self):
        # Two links only ever measured together: individually unidentifiable.
        ms = [PathMeasurement((1, 2, 3), success=True, delay_s=0.06)]
        assert AdditiveTomography(ms).rank_deficiency() == 1

    def test_failed_paths_excluded(self):
        ms = [
            PathMeasurement((1, 2), success=False, delay_s=None),
            PathMeasurement((2, 3), success=True, delay_s=0.05),
        ]
        tomography = AdditiveTomography(ms)
        assert len(tomography.measurements) == 1

    def test_no_usable_measurements(self):
        with pytest.raises(LearningError):
            AdditiveTomography([PathMeasurement((1, 2), success=False)])


class TestAttention:
    def _manager(self, **kw):
        mgr = AttentionManager(**kw)
        mgr.prime_baseline("temp", [10.0 + 0.1 * i for i in range(20)])
        return mgr

    def test_no_baseline_no_surprise(self):
        mgr = AttentionManager()
        report = Report("new_signal", 1e9, source_id=1, situation_id=1)
        assert mgr.surprise(report) == 0.0

    def test_anomalous_value_is_surprising(self):
        mgr = self._manager()
        normal = Report("temp", 10.5, source_id=1, situation_id=1)
        weird = Report("temp", 50.0, source_id=1, situation_id=2)
        assert mgr.surprise(weird) > mgr.surprise(normal)

    def test_corroborated_anomaly_outranks_single_source(self):
        mgr = self._manager()
        # Situation 1: 3 distinct sources report the anomaly.
        for sid in (1, 2, 3):
            mgr.ingest(Report("temp", 40.0, source_id=sid, situation_id=1),
                       update_baseline=False)
        # Situation 2: one source repeats itself 3 times.
        for _ in range(3):
            mgr.ingest(Report("temp", 40.0, source_id=9, situation_id=2),
                       update_baseline=False)
        top = mgr.top_k(2)
        assert top[0][0] == 1
        assert top[0][1] > top[1][1]

    def test_low_trust_source_discounted(self):
        trust = TrustLedger()
        for _ in range(10):
            trust.observe(66, False)  # known liar
            trust.observe(7, True)    # reliable scout
        mgr = self._manager(trust=trust)
        mgr.ingest(Report("temp", 40.0, source_id=66, situation_id=1),
                   update_baseline=False)
        mgr.ingest(Report("temp", 40.0, source_id=7, situation_id=2),
                   update_baseline=False)
        top = mgr.top_k(2)
        assert top[0][0] == 2  # trusted source's situation wins

    def test_precision_at_k_under_deception(self):
        trust = TrustLedger()
        for _ in range(10):
            for liar in (100, 101, 102):
                trust.observe(liar, False)
            for scout in (1, 2, 3, 4):
                trust.observe(scout, True)
        mgr = self._manager(trust=trust)
        # True anomalies (situations 1, 2): corroborated by trusted scouts.
        for sid, situation in [(1, 1), (2, 1), (3, 2), (4, 2)]:
            mgr.ingest(Report("temp", 45.0, source_id=sid, situation_id=situation),
                       update_baseline=False)
        # Deceptions (situations 10..12): single low-trust sources.
        for liar, situation in [(100, 10), (101, 11), (102, 12)]:
            mgr.ingest(Report("temp", 60.0, source_id=liar, situation_id=situation),
                       update_baseline=False)
        assert mgr.precision_at_k(2, true_anomalies={1, 2}) == 1.0

    def test_decay_fades_old_situations(self):
        mgr = self._manager(decay_half_life_s=10.0)
        mgr.ingest(Report("temp", 40.0, source_id=1, situation_id=1, time=0.0),
                   update_baseline=False)
        score_before = dict(mgr.top_k(1))[1]
        mgr.ingest(Report("temp", 10.0, source_id=2, situation_id=1, time=100.0),
                   update_baseline=False)
        score_after = dict(mgr.top_k(1))[1]
        assert score_after < score_before

    def test_top_k_validation(self):
        with pytest.raises(LearningError):
            AttentionManager().top_k(0)
