"""Tests for gossip averaging, decentralized SGD, Byzantine aggregation."""

import numpy as np
import pytest

from repro.core.learning.byzantine import (
    AGGREGATORS,
    krum_aggregate,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)
from repro.core.learning.distributed import (
    DecentralizedSGD,
    GossipAverager,
    RandomTopology,
    RingTopology,
    make_regression_shards,
)
from repro.errors import LearningError


class TestAggregators:
    def _honest(self, rng, n=8, d=4):
        return [rng.normal(0, 1, d) for _ in range(n)]

    def test_empty_rejected(self):
        for fn in AGGREGATORS.values():
            with pytest.raises(LearningError):
                fn([])

    def test_all_agree_on_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        for name, fn in AGGREGATORS.items():
            out = fn([v.copy() for _ in range(5)], 1)
            assert np.allclose(out, v), name

    def test_mean_dragged_by_outlier(self):
        rng = np.random.default_rng(0)
        vectors = self._honest(rng) + [np.full(4, 1e6)]
        assert np.linalg.norm(mean_aggregate(vectors)) > 1e4

    def test_median_resists_outlier(self):
        rng = np.random.default_rng(0)
        vectors = self._honest(rng) + [np.full(4, 1e6)]
        assert np.linalg.norm(median_aggregate(vectors, 1)) < 10

    def test_trimmed_mean_resists_symmetric_attack(self):
        rng = np.random.default_rng(0)
        vectors = self._honest(rng) + [np.full(4, 1e6), np.full(4, -1e6)]
        out = trimmed_mean_aggregate(vectors, 2)
        assert np.linalg.norm(out) < 10

    def test_trimmed_mean_over_trim_rejected(self):
        with pytest.raises(LearningError):
            trimmed_mean_aggregate([np.zeros(2)] * 4, 2)

    def test_krum_picks_central_vector(self):
        rng = np.random.default_rng(1)
        honest = [rng.normal(0, 0.1, 3) for _ in range(7)]
        attack = [np.full(3, 100.0)]
        out = krum_aggregate(honest + attack, 1)
        assert np.linalg.norm(out) < 1.0

    def test_krum_requires_enough_vectors(self):
        with pytest.raises(LearningError):
            krum_aggregate([np.zeros(2)] * 4, 2)

    def test_nan_bombs_neutralized(self):
        rng = np.random.default_rng(2)
        vectors = self._honest(rng) + [np.full(4, np.nan)]
        out = median_aggregate(vectors, 1)
        assert np.isfinite(out).all()


class TestGossip:
    def test_converges_to_mean_on_ring(self):
        values = [1.0, 5.0, 9.0, 3.0, 7.0, 2.0]
        gossip = GossipAverager(values, RingTopology(6))
        gossip.run(100)
        assert np.allclose(gossip.values, np.mean(values), atol=1e-3)

    def test_disagreement_monotone_nonincreasing_on_static_ring(self):
        gossip = GossipAverager([0.0, 10.0, 0.0, 10.0], RingTopology(4))
        gossip.run(30)
        trace = gossip.disagreement_trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))

    def test_time_varying_topology_still_converges(self):
        rng = np.random.default_rng(3)
        values = list(rng.normal(0, 5, 12))
        gossip = GossipAverager(values, RandomTopology(12, 0.3, rng))
        rounds = gossip.rounds_to(1e-3)
        assert rounds < 500
        assert np.allclose(gossip.values, np.mean(values), atol=1e-2)

    def test_sparser_topology_slower(self):
        def rounds(p, seed):
            rng = np.random.default_rng(seed)
            values = list(np.linspace(-5, 5, 16))
            gossip = GossipAverager(values, RandomTopology(16, p, rng))
            return gossip.rounds_to(1e-3)

        assert rounds(0.05, 4) > rounds(0.8, 4)

    def test_input_validation(self):
        with pytest.raises(LearningError):
            GossipAverager([1.0], RingTopology(2))
        with pytest.raises(LearningError):
            RingTopology(1)
        with pytest.raises(LearningError):
            RandomTopology(5, 0.0, np.random.default_rng(0))


class TestDecentralizedSGD:
    def _world(self, seed=0, byzantine=None, aggregator=mean_aggregate, n=10):
        rng = np.random.default_rng(seed)
        shards, true_w = make_regression_shards(n, 40, 4, rng)
        sgd = DecentralizedSGD(
            shards,
            RingTopology(n),
            aggregator=aggregator,
            byzantine_workers=byzantine,
            rng=rng,
        )
        return sgd, true_w

    def test_clean_run_converges(self):
        sgd, true_w = self._world()
        trace = sgd.run(80)
        assert trace[-1] < 0.05
        assert np.allclose(sgd.consensus_model(), true_w, atol=0.2)

    def test_byzantine_degrades_mean_aggregation(self):
        clean, _w = self._world()
        attacked, _w2 = self._world(byzantine={0, 1})
        clean_loss = clean.run(60)[-1]
        attacked_loss = attacked.run(60)[-1]
        # On a ring the poison spreads hop by hop, but the damage is still
        # large: an order of magnitude worse than the clean run.
        assert attacked_loss > 5 * clean_loss

    @pytest.mark.parametrize("rule", ["krum", "median", "trimmed_mean"])
    def test_robust_rules_survive_byzantine(self, rule):
        sgd, _w = self._world(byzantine={0, 1}, aggregator=AGGREGATORS[rule])
        trace = sgd.run(80)
        assert trace[-1] < 0.2

    def test_time_varying_topology(self):
        rng = np.random.default_rng(5)
        shards, _w = make_regression_shards(8, 40, 3, rng)
        sgd = DecentralizedSGD(
            shards, RandomTopology(8, 0.4, rng), rng=rng
        )
        trace = sgd.run(100)
        assert trace[-1] < 0.1

    def test_heterogeneous_vs_iid_both_converge(self):
        rng = np.random.default_rng(7)
        for heterogeneous in (True, False):
            shards, _w = make_regression_shards(
                6, 50, 3, rng, heterogeneous=heterogeneous
            )
            sgd = DecentralizedSGD(shards, RingTopology(6), rng=rng)
            assert sgd.run(100)[-1] < 0.1

    def test_shard_dimension_mismatch(self):
        rng = np.random.default_rng(0)
        shards = [
            (rng.normal(0, 1, (10, 3)), rng.normal(0, 1, 10)),
            (rng.normal(0, 1, (10, 4)), rng.normal(0, 1, 10)),
        ]
        with pytest.raises(LearningError):
            DecentralizedSGD(shards, RingTopology(2))

    def test_global_loss_excludes_byzantine_shards(self):
        sgd, _w = self._world(byzantine={0})
        honest_ids = {w.worker_id for w in sgd.honest_workers()}
        assert 0 not in honest_ids


class TestAggregatorProperties:
    """Hypothesis checks on the robustness contracts of the aggregators."""

    from hypothesis import given, settings, strategies as st

    _vec = st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=3,
        max_size=3,
    )

    @given(
        st.lists(_vec, min_size=5, max_size=9),
        st.floats(min_value=1e3, max_value=1e9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_median_bounded_by_honest_range_with_minority_attack(
        self, honest_lists, attack_scale, seed
    ):
        """With f Byzantine vectors (f < n_honest), the coordinate-wise
        median stays within the honest coordinate-wise min/max."""
        import numpy as np

        honest = [np.array(v) for v in honest_lists]
        f = (len(honest) - 1) // 2
        rng = np.random.default_rng(seed)
        attacks = [
            np.sign(rng.normal(0, 1, 3)) * attack_scale for _ in range(f)
        ]
        out = median_aggregate(honest + attacks, f)
        h = np.vstack(honest)
        assert np.all(out >= h.min(axis=0) - 1e-9)
        assert np.all(out <= h.max(axis=0) + 1e-9)

    @given(
        st.lists(_vec, min_size=5, max_size=9),
        st.floats(min_value=1e3, max_value=1e9),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_trimmed_mean_bounded_when_trim_covers_attack(
        self, honest_lists, attack_scale, seed
    ):
        import numpy as np

        honest = [np.array(v) for v in honest_lists]
        f = min(2, (len(honest) - 1) // 2)
        rng = np.random.default_rng(seed)
        attacks = [
            np.sign(rng.normal(0, 1, 3)) * attack_scale for _ in range(f)
        ]
        out = trimmed_mean_aggregate(honest + attacks, f)
        h = np.vstack(honest)
        assert np.all(out >= h.min(axis=0) - 1e-9)
        assert np.all(out <= h.max(axis=0) + 1e-9)

    @given(st.lists(_vec, min_size=4, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_all_rules_idempotent_on_duplicates(self, vec_lists):
        """Aggregating n copies of one vector returns that vector."""
        import numpy as np

        v = np.array(vec_lists[0])
        copies = [v.copy() for _ in range(len(vec_lists))]
        f = max(0, (len(copies) - 1) // 3)
        for name, fn in AGGREGATORS.items():
            try:
                out = fn(copies, f)
            except LearningError:
                continue  # krum/trim size preconditions
            assert np.allclose(out, v), name
