"""Tests for functional (service-pipeline) composition."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.synthesis.functional import (
    PipelinePlacer,
    ServiceGraph,
    Stage,
)
from repro.errors import CompositionError
from repro.net.topology import build_topology


def tracking_pipeline(source_node=None, heavy=1e9):
    return ServiceGraph.linear_pipeline(
        [
            Stage("capture", 1e6, output_bits_per_unit=64_000,
                  pinned_node=source_node),
            Stage("detect", heavy, output_bits_per_unit=4_000),
            Stage("associate", 1e8, output_bits_per_unit=1_000),
            Stage("report", 1e5, output_bits_per_unit=512),
        ]
    )


@pytest.fixture
def world():
    sim = Simulator(seed=61)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=5, block_size_m=90.0, density=0.3)
        .population(n_blue=60, n_red=0, n_gray=0)
        .build()
    )
    hosts = [a for a in scenario.inventory.blue() if a.profile.compute_flops > 0]
    topology = build_topology(scenario.network)
    return scenario, hosts, topology


class TestServiceGraph:
    def test_duplicate_stage_rejected(self):
        graph = ServiceGraph()
        graph.add_stage(Stage("a", 1.0))
        with pytest.raises(CompositionError):
            graph.add_stage(Stage("a", 2.0))

    def test_unknown_stage_in_connect(self):
        graph = ServiceGraph()
        graph.add_stage(Stage("a", 1.0))
        with pytest.raises(CompositionError):
            graph.connect("a", "missing")

    def test_cycle_rejected(self):
        graph = ServiceGraph()
        graph.add_stage(Stage("a", 1.0))
        graph.add_stage(Stage("b", 1.0))
        graph.connect("a", "b")
        with pytest.raises(CompositionError):
            graph.connect("b", "a")

    def test_topological_order_respects_edges(self):
        graph = tracking_pipeline()
        names = [s.name for s in graph.topological_order()]
        assert names.index("capture") < names.index("detect")
        assert names.index("detect") < names.index("report")

    def test_fan_in_graph(self):
        graph = ServiceGraph()
        for name in ("cam", "acoustic", "fuse"):
            graph.add_stage(Stage(name, 1e6))
        graph.connect("cam", "fuse")
        graph.connect("acoustic", "fuse")
        assert graph.upstream_of("fuse") == ["acoustic", "cam"]


class TestPlacement:
    def test_requires_compute_hosts(self, world):
        scenario, hosts, topology = world
        with pytest.raises(CompositionError):
            PipelinePlacer([], topology)

    def test_all_stages_assigned(self, world):
        scenario, hosts, topology = world
        placer = PipelinePlacer(hosts, topology)
        placement = placer.place(tracking_pipeline())
        assert set(placement.assignment) == {
            "capture", "detect", "associate", "report"
        }
        host_nodes = {a.node_id for a in hosts}
        assert set(placement.assignment.values()) <= host_nodes

    def test_pinned_stage_honored(self, world):
        scenario, hosts, topology = world
        pinned = hosts[3].node_id
        placer = PipelinePlacer(hosts, topology)
        placement = placer.place(tracking_pipeline(source_node=pinned))
        assert placement.node_of("capture") == pinned

    def test_heavy_stage_lands_on_big_host(self, world):
        scenario, hosts, topology = world
        placer = PipelinePlacer(hosts, topology, data_rate_hz=1.0)
        placement = placer.place(tracking_pipeline(heavy=5e11))
        detect_host = next(
            a for a in hosts if a.node_id == placement.node_of("detect")
        )
        median_flops = sorted(a.profile.compute_flops for a in hosts)[
            len(hosts) // 2
        ]
        assert detect_host.profile.compute_flops >= median_flops

    def test_latency_decomposition_consistent(self, world):
        scenario, hosts, topology = world
        placer = PipelinePlacer(hosts, topology)
        placement = placer.place(tracking_pipeline())
        assert placement.end_to_end_latency_s == pytest.approx(
            placement.compute_latency_s + placement.transfer_latency_s
        )
        assert placement.end_to_end_latency_s > 0

    def test_capacity_constraint_spreads_load(self, world):
        scenario, hosts, topology = world
        # Mid-size hosts only (no edge cloud to absorb everything); each
        # stage's load is sized so one host can carry at most one stage.
        mid = [
            h for h in hosts if 1e10 <= h.profile.compute_flops <= 1e11
        ]
        if len(mid) < 3:
            pytest.skip("not enough mid-size hosts in draw")
        # Stage load ~3e10 flops/s: only the biggest mid-size hosts can
        # carry one stage each, so two stages must land on two hosts.
        placer = PipelinePlacer(mid, topology, data_rate_hz=100.0)
        graph = ServiceGraph.linear_pipeline(
            [Stage(f"s{i}", 3e8) for i in range(2)]
        )
        placement = placer.place(graph)
        assert placement.feasible
        assert len(set(placement.assignment.values())) == 2

    def test_greedy_no_worse_than_colocated_baseline(self, world):
        scenario, hosts, topology = world
        placer = PipelinePlacer(hosts, topology)
        graph = tracking_pipeline(source_node=hosts[5].node_id)
        greedy = placer.place(graph)
        baseline = placer.colocated_baseline(graph)
        assert greedy.end_to_end_latency_s <= baseline.end_to_end_latency_s + 1e-9

    def test_infeasible_marked_but_best_effort(self, world):
        scenario, hosts, topology = world
        tiny = [h for h in hosts if h.profile.compute_flops < 1e9][:3]
        if not tiny:
            pytest.skip("no tiny hosts in draw")
        placer = PipelinePlacer(tiny, topology, data_rate_hz=100.0)
        placement = placer.place(
            ServiceGraph.linear_pipeline([Stage("x", 1e12)])
        )
        assert not placement.feasible
        assert placement.assignment  # still produced a best-effort mapping
