"""Tests for continuous asset discovery and side-channel detection."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.synthesis.discovery import DiscoveryService
from repro.errors import DiscoveryError


def make_scenario(sim, n_blue=40, n_red=6, n_gray=10):
    return (
        ScenarioBuilder(sim)
        .urban_grid(blocks=5, block_size_m=80.0, density=0.3)
        .population(n_blue=n_blue, n_red=n_red, n_gray=n_gray)
        .build()
    )


class TestDiscovery:
    def test_requires_discoverers(self, sim):
        scenario = make_scenario(sim)
        with pytest.raises(DiscoveryError):
            DiscoveryService(scenario, [])

    def test_recall_grows_over_rounds(self, sim):
        scenario = make_scenario(sim)
        service = DiscoveryService(scenario, scenario.blue_node_ids()[:10])
        service.start()
        sim.run(until=6.0)
        early = service.recall()
        sim.run(until=60.0)
        late = service.recall()
        assert late >= early
        assert late > 0.3

    def test_duty_cycle_slows_discovery(self):
        def recall_at(duty, t):
            sim = Simulator(seed=9)
            scenario = (
                ScenarioBuilder(sim)
                .urban_grid(blocks=5, block_size_m=80.0, density=0.3)
                .population(n_blue=40, n_red=0, n_gray=0)
                .build()
            )
            for asset in scenario.inventory:
                asset.duty_cycle = duty
            service = DiscoveryService(
                scenario, scenario.blue_node_ids()[:8], probe_period_s=5.0
            )
            service.start()
            sim.run(until=t)
            return service.recall()

        assert recall_at(0.05, 12.0) < recall_at(1.0, 12.0)

    def test_staleness_expires_records(self, sim):
        scenario = make_scenario(sim, n_blue=20, n_red=0, n_gray=0)
        service = DiscoveryService(
            scenario, scenario.blue_node_ids()[:5], staleness_s=10.0
        )
        service.probe_round()
        discovered = service.discovered_ids()
        assert discovered
        # Take everything down so nothing refreshes, then advance time.
        sim.run(until=50.0)
        assert service.fresh_records() == []

    def test_dead_assets_not_counted_in_recall(self, sim):
        scenario = make_scenario(sim, n_blue=10, n_red=0, n_gray=0)
        service = DiscoveryService(scenario, scenario.blue_node_ids()[:3])
        for asset in list(scenario.inventory)[:5]:
            scenario.network.fail_node(asset.node_id)
        service.probe_round()
        assert 0.0 <= service.recall() <= 1.0

    def test_side_channel_flags_non_blue(self, sim):
        scenario = make_scenario(sim, n_blue=40, n_red=8, n_gray=8)
        service = DiscoveryService(
            scenario, scenario.blue_node_ids()[:10], emission_rate=0.9
        )
        service.start()
        sim.run(until=120.0)
        stats = service.hostile_detection_stats()
        assert stats["suspected"] > 0
        # Everything suspected must actually be non-blue (no false blues):
        blue_ids = {a.id for a in scenario.inventory.blue()}
        assert not (service.suspected_hostiles & blue_ids)
        assert stats["precision"] == pytest.approx(1.0)

    def test_blue_assets_never_suspected(self, sim):
        scenario = make_scenario(sim, n_blue=30, n_red=0, n_gray=0)
        service = DiscoveryService(scenario, scenario.blue_node_ids()[:10])
        service.start()
        sim.run(until=60.0)
        assert service.suspected_hostiles == set()

    def test_records_track_observation_counts(self, sim):
        scenario = make_scenario(sim, n_blue=15, n_red=0, n_gray=0)
        service = DiscoveryService(scenario, scenario.blue_node_ids()[:5])
        service.probe_round()
        service.probe_round()
        multi = [r for r in service.records.values() if r.observations >= 2]
        assert multi

    def test_down_discoverers_do_not_probe(self, sim):
        scenario = make_scenario(sim, n_blue=15, n_red=0, n_gray=0)
        discoverers = scenario.blue_node_ids()[:3]
        service = DiscoveryService(scenario, discoverers)
        for node_id in discoverers:
            scenario.network.fail_node(node_id)
        observed = service.probe_round()
        assert observed == 0
