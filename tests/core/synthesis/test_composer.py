"""Tests for composition, optimizers, and assurance."""

import numpy as np
import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import (
    AnnealingComposer,
    GreedyComposer,
    RandomComposer,
    assess,
    compile_goal,
    evaluate_composite,
)
from repro.core.synthesis.composer import coverage_fraction
from repro.errors import CompositionError
from repro.net.topology import build_topology
from repro.things.capabilities import SensingModality


@pytest.fixture
def world():
    sim = Simulator(seed=21)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.3)
        .population(n_blue=120, n_red=0, n_gray=0)
        .build()
    )
    topo = build_topology(scenario.network)
    pool = [a for a in scenario.inventory.blue() if a.alive]
    return scenario, topo, pool


def surveil_goal(region, coverage=0.6):
    # Restrict to mid-range ground modalities so coverage is non-trivial.
    return MissionGoal(
        MissionType.SURVEIL,
        region,
        min_coverage=coverage,
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC}
        ),
    )


class TestGreedyComposer:
    def test_empty_pool_rejected(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        with pytest.raises(CompositionError):
            GreedyComposer().compose(req, [], topo)

    def test_composite_has_roles(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        assert comp.sink is not None
        assert comp.sensors
        assert comp.size == len(comp.members)

    def test_sensors_have_required_modality(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        by_id = {a.id: a for a in pool}
        for sid in comp.sensors:
            assert by_id[sid].profile.sensing & req.modalities

    def test_members_deduplicated(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        assert len(comp.members) == len(set(comp.members))

    def test_coverage_metric_matches_manual(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        by_id = {a.id: a for a in pool}
        manual = coverage_fraction(
            [by_id[s] for s in comp.sensors], scenario.region
        )
        assert comp.coverage == pytest.approx(manual)

    def test_greedy_beats_random(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region, coverage=0.7))
        greedy = GreedyComposer().compose(req, pool, topo)
        rng = np.random.default_rng(3)
        random_scores = [
            evaluate_composite(RandomComposer(rng).compose(req, pool, topo))
            for _ in range(5)
        ]
        assert evaluate_composite(greedy) >= max(random_scores)

    def test_flops_requirement_met_when_possible(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        assert comp.total_flops >= req.compute_flops


class TestAnnealingComposer:
    def test_never_worse_than_greedy(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region, coverage=0.7))
        greedy = GreedyComposer().compose(req, pool, topo)
        annealed = AnnealingComposer(
            np.random.default_rng(5), iterations=30
        ).compose(req, pool, topo)
        assert evaluate_composite(annealed) >= evaluate_composite(greedy) - 1e-9

    def test_invalid_iterations(self):
        with pytest.raises(CompositionError):
            AnnealingComposer(np.random.default_rng(0), iterations=0)


class TestAssurance:
    def test_report_fields_consistent(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        report = assess(comp, scenario.inventory, rng=np.random.default_rng(0))
        assert 0.0 <= report.coverage <= 1.0
        assert 0.0 <= report.dependability <= 1.0
        assert 0.0 <= report.adversary_exposure <= 1.0
        assert report.meets_coverage == (report.coverage >= req.coverage_target)

    def test_higher_failure_rate_lower_dependability(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        rng = np.random.default_rng(0)
        low = assess(comp, scenario.inventory, failure_rate=0.05, rng=rng)
        rng = np.random.default_rng(0)
        high = assess(comp, scenario.inventory, failure_rate=0.6, rng=rng)
        assert high.dependability <= low.dependability

    def test_all_blue_composite_zero_exposure(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        report = assess(comp, scenario.inventory)
        assert report.adversary_exposure == 0.0

    def test_captured_member_raises_exposure(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        scenario.inventory.get(comp.members[0]).captured = True
        report = assess(comp, scenario.inventory)
        assert report.adversary_exposure > 0.0

    def test_describe_flags_state(self, world):
        scenario, topo, pool = world
        req = compile_goal(surveil_goal(scenario.region))
        comp = GreedyComposer().compose(req, pool, topo)
        text = assess(comp, scenario.inventory).describe()
        assert "ASSURED" in text
