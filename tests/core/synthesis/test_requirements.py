"""Tests for goals-to-means requirement compilation."""

import pytest

from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis.requirements import compile_goal
from repro.errors import RequirementError
from repro.util.geometry import Region


def goal(**kw):
    defaults = dict(mission_type=MissionType.SURVEIL, area=Region(0, 0, 1000, 1000))
    defaults.update(kw)
    return MissionGoal(**defaults)


class TestCompileGoal:
    def test_more_coverage_needs_more_sensors(self):
        low = compile_goal(goal(min_coverage=0.3, min_confidence=0.8))
        high = compile_goal(goal(min_coverage=0.95, min_confidence=0.8))
        assert high.n_sensors > low.n_sensors

    def test_bigger_area_needs_more_sensors(self):
        small = compile_goal(goal(area=Region(0, 0, 500, 500)))
        big = compile_goal(goal(area=Region(0, 0, 2000, 2000)))
        assert big.n_sensors > small.n_sensors

    def test_longer_range_needs_fewer_sensors(self):
        short = compile_goal(goal(), sensing_range_m=100.0)
        long = compile_goal(goal(), sensing_range_m=400.0)
        assert long.n_sensors < short.n_sensors

    def test_confidence_drives_redundancy(self):
        lax = compile_goal(goal(min_confidence=0.6))
        strict = compile_goal(goal(min_confidence=0.97))
        assert strict.redundancy > lax.redundancy

    def test_tracking_adds_redundancy(self):
        surveil = compile_goal(goal(min_confidence=0.8))
        track = compile_goal(goal(mission_type=MissionType.TRACK, min_confidence=0.8))
        assert track.redundancy > surveil.redundancy

    def test_tighter_latency_fewer_hops(self):
        slow = compile_goal(goal(max_latency_s=60.0))
        fast = compile_goal(goal(max_latency_s=1.0))
        assert fast.max_hops < slow.max_hops
        assert fast.max_hops >= 1

    def test_compute_scales_with_sensors(self):
        small = compile_goal(goal(area=Region(0, 0, 400, 400)))
        big = compile_goal(goal(area=Region(0, 0, 3000, 3000)))
        assert big.compute_flops > small.compute_flops

    def test_invalid_range_rejected(self):
        with pytest.raises(RequirementError):
            compile_goal(goal(), sensing_range_m=0.0)

    def test_describe_mentions_counts(self):
        req = compile_goal(goal())
        assert "sensors" in req.describe()
