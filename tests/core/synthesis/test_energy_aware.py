"""Tests for energy-aware composition."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import GreedyComposer, compile_goal
from repro.net.topology import build_topology
from repro.things.capabilities import SensingModality


@pytest.fixture
def drained_world():
    sim = Simulator(seed=83)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.3)
        .population(n_blue=100, n_red=0, n_gray=0)
        .build()
    )
    rng = sim.rng.get("drain-test")
    drained = set()
    for asset in scenario.inventory.blue():
        if asset.battery is not None and rng.random() < 0.5:
            asset.battery.remaining_j = 0.01 * asset.battery.capacity_j
            drained.add(asset.id)
    goal = MissionGoal(
        MissionType.SURVEIL,
        scenario.region,
        min_coverage=0.5,
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC}
        ),
    )
    requirements = compile_goal(goal)
    pool = [a for a in scenario.inventory.blue() if a.alive and a.sensors]
    topology = build_topology(scenario.network)
    return scenario, requirements, pool, topology, drained


class TestEnergyAwareComposition:
    def test_energy_factor_neutral_when_disabled(self, drained_world):
        scenario, requirements, pool, topology, drained = drained_world
        composer = GreedyComposer(energy_aware=False)
        assert composer._energy_factor(pool[0]) == 1.0

    def test_energy_factor_scales_with_battery(self, drained_world):
        scenario, requirements, pool, topology, drained = drained_world
        composer = GreedyComposer(energy_aware=True)
        fresh = next(a for a in pool if a.id not in drained)
        dead = next(a for a in pool if a.id in drained)
        assert composer._energy_factor(fresh) > composer._energy_factor(dead)

    def test_energy_aware_recruits_fresher_sensors(self, drained_world):
        scenario, requirements, pool, topology, drained = drained_world
        blind = GreedyComposer(energy_aware=False).compose(
            requirements, pool, topology
        )
        aware = GreedyComposer(energy_aware=True).compose(
            requirements, pool, topology
        )

        def drained_fraction(composite):
            sensors = composite.sensors
            if not sensors:
                return 0.0
            return sum(1 for s in sensors if s in drained) / len(sensors)

        assert drained_fraction(aware) <= drained_fraction(blind)

    def test_energy_aware_still_satisfies_when_possible(self, drained_world):
        scenario, requirements, pool, topology, drained = drained_world
        aware = GreedyComposer(energy_aware=True).compose(
            requirements, pool, topology
        )
        assert aware.coverage >= requirements.coverage_target * 0.9

    def test_batteryless_assets_unpenalized(self, drained_world):
        scenario, requirements, pool, topology, drained = drained_world
        composer = GreedyComposer(energy_aware=True)
        asset = pool[0]
        battery = asset.battery
        asset.battery = None
        try:
            assert composer._energy_factor(asset) == 1.0
        finally:
            asset.battery = battery
