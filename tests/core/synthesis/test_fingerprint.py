"""Tests for traffic fingerprinting."""

import pytest

from repro.core.synthesis.fingerprint import TrafficFingerprinter
from repro.errors import DiscoveryError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.packet import Packet, PacketKind
from repro.sim import Simulator
from repro.util.geometry import Point


@pytest.fixture
def net_and_fp():
    sim = Simulator(seed=4)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=4))
    for i in range(1, 9):
        net.create_node(i, Point((i % 4) * 20.0, (i // 4) * 20.0))
    fp = TrafficFingerprinter(net, min_packets=3)
    return sim, net, fp


def drive_traffic(sim, net, node_id, *, n, size, kind=PacketKind.DATA, gap=1.0):
    for k in range(n):
        sim.call_in(
            gap * (k + 1),
            lambda nid=node_id: net.send(
                nid, (nid % 8) + 1, Packet(src=nid, dst=(nid % 8) + 1, size_bits=size, kind=kind)
            ),
        )


class TestProfiles:
    def test_profiles_accumulate(self, net_and_fp):
        sim, net, fp = net_and_fp
        drive_traffic(sim, net, 1, n=5, size=1000)
        sim.run(until=30.0)
        profile = fp.profile(1)
        assert profile is not None
        assert profile.packets >= 3
        assert profile.mean_size_bits == pytest.approx(1000.0)

    def test_rate_estimate(self, net_and_fp):
        sim, net, fp = net_and_fp
        drive_traffic(sim, net, 1, n=10, size=500, gap=2.0)
        sim.run(until=60.0)
        assert fp.profile(1).rate_hz == pytest.approx(0.5, rel=0.4)

    def test_observed_nodes_threshold(self, net_and_fp):
        sim, net, fp = net_and_fp
        drive_traffic(sim, net, 1, n=2, size=500)
        sim.run(until=30.0)
        assert 1 not in fp.observed_nodes()


class TestClassification:
    def _train(self, sim, net, fp):
        # Two behavioral classes: chatty-small (sensors), bulky-slow (cameras).
        for nid in (1, 2, 3):
            drive_traffic(sim, net, nid, n=20, size=200, gap=0.5)
        for nid in (4, 5, 6):
            drive_traffic(sim, net, nid, n=5, size=20000, gap=5.0)
        sim.run(until=60.0)
        fp.fit({1: "sensor", 2: "sensor", 3: "sensor", 4: "camera", 5: "camera", 6: "camera"})

    def test_classify_matches_behavior(self, net_and_fp):
        sim, net, fp = net_and_fp
        self._train(sim, net, fp)
        drive_traffic(sim, net, 7, n=20, size=200, gap=0.5)   # behaves like sensor
        drive_traffic(sim, net, 8, n=5, size=20000, gap=5.0)  # behaves like camera
        sim.run(until=120.0)
        assert fp.classify(7)[0] == "sensor"
        assert fp.classify(8)[0] == "camera"

    def test_unfitted_raises(self, net_and_fp):
        sim, net, fp = net_and_fp
        with pytest.raises(DiscoveryError):
            fp.classify(1)

    def test_fit_without_examples_raises(self, net_and_fp):
        sim, net, fp = net_and_fp
        with pytest.raises(DiscoveryError):
            fp.fit({1: "sensor"})  # node 1 has no traffic yet

    def test_sybil_flagging(self, net_and_fp):
        sim, net, fp = net_and_fp
        self._train(sim, net, fp)
        # Node 7 claims to be a camera but emits sensor-like traffic.
        drive_traffic(sim, net, 7, n=20, size=200, gap=0.5)
        # Node 8 claims camera and behaves like one.
        drive_traffic(sim, net, 8, n=5, size=20000, gap=5.0)
        sim.run(until=120.0)
        flagged = fp.flag_sybils({7: "camera", 8: "camera"}, threshold=2.0)
        assert 7 in flagged
        assert 8 not in flagged

    def test_unknown_claimed_class_scores_none(self, net_and_fp):
        sim, net, fp = net_and_fp
        self._train(sim, net, fp)
        assert fp.anomaly_score(1, "submarine") is None
