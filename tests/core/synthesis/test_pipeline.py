"""Integration test: the full synthesis pipeline from discovery to assurance."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import (
    AssetCharacterizer,
    DiscoveryService,
    GreedyComposer,
    Recruiter,
    assess,
    compile_goal,
)
from repro.net.topology import build_topology
from repro.security.trust import TrustLedger
from repro.things.capabilities import SensingModality


@pytest.fixture
def pipeline():
    sim = Simulator(seed=31)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.3)
        .population(n_blue=100, n_red=15, n_gray=20)
        .build()
    )
    discovery = DiscoveryService(
        scenario, scenario.blue_node_ids()[:15], emission_rate=0.6
    )
    discovery.start()
    sim.run(until=60.0)
    trust = TrustLedger()
    characterizer = AssetCharacterizer(
        scenario.inventory, discovery, trust=trust
    )
    recruiter = Recruiter(scenario.inventory, characterizer)
    return scenario, discovery, characterizer, recruiter, trust


class TestPipeline:
    def test_characterizations_only_for_discovered(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        chars = characterizer.characterize_all()
        discovered = set(discovery.records)
        assert {c.asset_id for c in chars} <= discovered
        assert chars  # something was discovered

    def test_recruiter_excludes_suspected_hostiles(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        pool = recruiter.recruit()
        suspected = discovery.suspected_hostiles
        assert not ({a.id for a in pool} & suspected)

    def test_rejection_report_sums_to_characterized(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        report = recruiter.rejection_report()
        total = sum(report.values())
        assert total == len(characterizer.characterize_all())

    def test_low_trust_blocks_recruitment(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        pool_before = recruiter.recruit()
        assert pool_before
        victim = pool_before[0]
        for _ in range(20):
            trust.observe(victim.id, False)
        pool_after = recruiter.recruit()
        assert victim.id not in {a.id for a in pool_after}

    def test_end_to_end_composition_from_recruited_pool(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        goal = MissionGoal(
            MissionType.SURVEIL,
            scenario.region,
            min_coverage=0.5,
            modalities=frozenset(
                {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
                 SensingModality.CAMERA}
            ),
        )
        requirements = compile_goal(goal)
        pool = recruiter.recruit()
        topology = build_topology(scenario.network)
        composite = GreedyComposer().compose(requirements, pool, topology)
        report = assess(composite, scenario.inventory, trust=trust)
        assert composite.sensors
        assert 0.0 <= report.coverage <= 1.0
        # Recruited-only membership: nothing outside the pool.
        pool_ids = {a.id for a in pool}
        assert set(composite.members) <= pool_ids

    def test_limit_caps_pool(self, pipeline):
        scenario, discovery, characterizer, recruiter, trust = pipeline
        assert len(recruiter.recruit(limit=5)) <= 5
