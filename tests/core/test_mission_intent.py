"""Tests for mission goals and command-by-intent decomposition."""

import pytest

from repro.core.intent import (
    CommanderIntent,
    InitiativeEnvelope,
    aggregate_compliance,
    decompose_spatial,
)
from repro.core.mission import MissionGoal, MissionType
from repro.errors import ConfigurationError
from repro.util.geometry import Region

AREA = Region(0, 0, 1000, 800)


def goal(**kw):
    defaults = dict(mission_type=MissionType.SURVEIL, area=AREA)
    defaults.update(kw)
    return MissionGoal(**defaults)


class TestMissionGoal:
    def test_valid_goal(self):
        g = goal(min_coverage=0.9)
        assert g.min_coverage == 0.9
        assert "surveil" in g.describe()

    def test_invalid_coverage(self):
        with pytest.raises(ConfigurationError):
            goal(min_coverage=0.0)

    def test_invalid_latency(self):
        with pytest.raises(ConfigurationError):
            goal(max_latency_s=-1.0)

    def test_empty_modalities(self):
        with pytest.raises(ConfigurationError):
            goal(modalities=frozenset())


class TestInitiativeEnvelope:
    def test_permits(self):
        env = InitiativeEnvelope(allowed_knobs=frozenset({"a"}))
        assert env.permits("a")
        assert not env.permits("b")

    def test_risk_budget_validated(self):
        with pytest.raises(ConfigurationError):
            InitiativeEnvelope(risk_budget=1.5)


class TestDecomposition:
    def test_sector_count(self):
        intent = CommanderIntent(goal=goal())
        objectives = decompose_spatial(intent, 4, 2)
        assert len(objectives) == 8

    def test_sectors_tile_the_area(self):
        intent = CommanderIntent(goal=goal())
        objectives = decompose_spatial(intent, 5, 4)
        total = sum(o.sector.area for o in objectives)
        assert total == pytest.approx(AREA.area)

    def test_weights_sum_to_one(self):
        intent = CommanderIntent(goal=goal())
        objectives = decompose_spatial(intent, 3, 3)
        assert sum(o.weight for o in objectives) == pytest.approx(1.0)

    def test_sector_goals_inherit_parameters(self):
        intent = CommanderIntent(goal=goal(min_coverage=0.77))
        objectives = decompose_spatial(intent, 2, 2)
        assert all(o.goal.min_coverage == 0.77 for o in objectives)
        assert all(o.goal.area.area < AREA.area for o in objectives)

    def test_invalid_grid(self):
        intent = CommanderIntent(goal=goal())
        with pytest.raises(ConfigurationError):
            decompose_spatial(intent, 0, 2)

    def test_objective_ids_unique(self):
        intent = CommanderIntent(goal=goal())
        ids = [o.objective_id for o in decompose_spatial(intent, 3, 2)]
        assert len(set(ids)) == len(ids)


class TestAggregateCompliance:
    def _objectives(self, n=4):
        intent = CommanderIntent(goal=goal())
        return decompose_spatial(intent, n, 1)

    def test_all_satisfied(self):
        objectives = self._objectives()
        assert aggregate_compliance([(o, 1.0) for o in objectives]) == pytest.approx(
            1.0
        )

    def test_none_satisfied(self):
        objectives = self._objectives()
        assert aggregate_compliance([(o, 0.0) for o in objectives]) == 0.0

    def test_weighted_mixture(self):
        objectives = self._objectives(2)  # equal halves
        value = aggregate_compliance(
            [(objectives[0], 1.0), (objectives[1], 0.0)]
        )
        assert value == pytest.approx(0.5)

    def test_satisfaction_clamped(self):
        objectives = self._objectives(1)
        assert aggregate_compliance([(objectives[0], 5.0)]) == 1.0

    def test_empty_results(self):
        assert aggregate_compliance([]) == 0.0
