"""Tests for resource allocation and controller teams."""

import numpy as np
import pytest

from repro.core.adaptation.controllers import (
    ControllerTeam,
    TrackingController,
    make_diverse_team,
    make_homogeneous_team,
)
from repro.core.adaptation.resources import (
    AdaptiveRateController,
    CoordinatedRateControllers,
    EdgeAllocator,
)
from repro.errors import AdaptationError
from repro.sim import Simulator
from repro.things.compute import ComputeElement, ComputeTask


def make_elements(sim, flops_list):
    return [
        ComputeElement(sim, node_id=i + 1, flops=f)
        for i, f in enumerate(flops_list)
    ]


class TestEdgeAllocator:
    def test_requires_elements(self):
        with pytest.raises(AdaptationError):
            EdgeAllocator([])

    def test_prefers_faster_idle_element(self):
        sim = Simulator()
        fast, slow = make_elements(sim, [1000.0, 10.0])
        alloc = EdgeAllocator([fast, slow])
        alloc.submit(1, ComputeTask(work_flops=100.0))
        assert fast.queue_length == 1
        assert slow.queue_length == 0

    def test_balances_under_load(self):
        sim = Simulator()
        a, b = make_elements(sim, [100.0, 100.0])
        alloc = EdgeAllocator([a, b])
        for _ in range(10):
            alloc.submit(1, ComputeTask(work_flops=100.0))
        assert a.queue_length > 0 and b.queue_length > 0

    def test_avoids_failed_elements(self):
        sim = Simulator()
        a, b = make_elements(sim, [100.0, 100.0])
        alloc = EdgeAllocator([a, b])
        alloc.fail_element(a.node_id)
        for _ in range(4):
            alloc.submit(1, ComputeTask(work_flops=10.0))
        assert a.queue_length == 0
        alloc.restore_element(a.node_id)
        assert a in alloc.live_elements()

    def test_all_failed_rejects(self):
        sim = Simulator()
        (a,) = make_elements(sim, [100.0])
        alloc = EdgeAllocator([a])
        alloc.fail_element(a.node_id)
        assert not alloc.submit(1, ComputeTask(work_flops=10.0))
        assert alloc.dispatch_rejections == 1

    def test_quota_blocks_flooder_but_not_others(self):
        sim = Simulator()
        elements = make_elements(sim, [1000.0])
        alloc = EdgeAllocator(elements, per_source_quota=3, quota_window_s=100.0)
        flooder_accepted = sum(
            alloc.submit(666, ComputeTask(work_flops=1.0)) for _ in range(20)
        )
        victim_accepted = alloc.submit(1, ComputeTask(work_flops=1.0))
        assert flooder_accepted == 3
        assert victim_accepted
        assert alloc.quota_rejections == 17

    def test_quota_refills_each_window(self):
        sim = Simulator()
        elements = make_elements(sim, [1000.0])
        alloc = EdgeAllocator(elements, per_source_quota=2, quota_window_s=10.0)
        for _ in range(5):
            alloc.submit(1, ComputeTask(work_flops=1.0))
        sim.run(until=15.0)  # window reset fires
        assert alloc.submit(1, ComputeTask(work_flops=1.0))


class TestRateControl:
    def test_reduces_rate_when_over_setpoint(self):
        ctrl = AdaptiveRateController(setpoint_s=1.0, rate=2.0, gain=0.5)
        new_rate = ctrl.update(observed_delay_s=4.0)
        assert new_rate < 2.0

    def test_raises_rate_when_under_setpoint(self):
        ctrl = AdaptiveRateController(setpoint_s=1.0, rate=2.0, gain=0.5)
        assert ctrl.update(observed_delay_s=0.1) > 2.0

    def test_rate_bounds_respected(self):
        ctrl = AdaptiveRateController(rate=0.1, rate_bounds=(0.05, 1.0), gain=2.0)
        for _ in range(50):
            ctrl.update(0.0)  # keeps pushing the rate up
        assert ctrl.rate <= 1.0

    def test_uncoordinated_oscillates_more(self):
        def run(coordinated):
            controllers = [
                AdaptiveRateController(setpoint_s=1.0, rate=1.0, gain=1.5)
                for _ in range(5)
            ]
            shared = CoordinatedRateControllers(
                controllers, capacity=10.0, coordinated=coordinated
            )
            return shared.run(epochs=80)

        coord = run(True)
        uncoord = run(False)
        assert uncoord["delay_rmse"] > 2 * coord["delay_rmse"]
        assert uncoord["oscillation"] > coord["oscillation"]

    def test_empty_controllers_rejected(self):
        with pytest.raises(AdaptationError):
            CoordinatedRateControllers([])


class TestControllerTeams:
    def _drive(self, team, seed=3, regime_change=True):
        rng = np.random.default_rng(seed)
        for t in range(800):
            if regime_change and t >= 400:
                truth = float(np.sign(np.sin(t * 0.6)) * 10.0)  # fast square
            else:
                truth = float(np.sin(t * 0.01) * 10.0)          # slow drift
            team.step(truth + float(rng.normal(0, 1.0)), truth)
        return team.team_rmse

    def test_invalid_alpha(self):
        with pytest.raises(AdaptationError):
            TrackingController(0.0)

    def test_diverse_beats_homogeneous_across_regimes(self):
        homogeneous = self._drive(make_homogeneous_team(7, alpha=0.2))
        diverse = self._drive(make_diverse_team(7))
        assert diverse < homogeneous

    def test_imitation_moves_alphas(self):
        team = make_diverse_team(5, imitate=True, imitation_period=10)
        before = team.alphas()
        self._drive(team)
        assert team.alphas() != before

    def test_no_imitation_keeps_alphas(self):
        team = make_diverse_team(5, imitate=False)
        before = team.alphas()
        self._drive(team)
        assert team.alphas() == before

    def test_empty_team_rejected(self):
        with pytest.raises(AdaptationError):
            ControllerTeam([])

    def test_fused_estimate_is_member_mean(self):
        team = make_homogeneous_team(3, alpha=0.5, imitate=False)
        team.step(10.0, 10.0)
        assert team.fused_estimate() == pytest.approx(
            np.mean([c.estimate for c in team.controllers])
        )
