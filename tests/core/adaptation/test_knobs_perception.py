"""Tests for adaptation knobs and modality switching."""

import pytest

from repro.core.adaptation.knobs import AdaptationKnob, KnobRegistry
from repro.core.adaptation.perception import ModalityManager
from repro.core.intent import InitiativeEnvelope
from repro.errors import AdaptationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.sim import Simulator
from repro.things.asset import AssetInventory
from repro.things.capabilities import SensingModality, make_profile
from repro.things.sensors import Environment
from repro.util.geometry import Point


class TestKnob:
    def test_bounds_enforced(self):
        knob = AdaptationKnob("rate", 1.0, bounds=(0.0, 2.0))
        knob.set(1.5)
        with pytest.raises(AdaptationError):
            knob.set(3.0)

    def test_choices_enforced(self):
        knob = AdaptationKnob("mode", "a", choices=("a", "b"))
        knob.set("b")
        with pytest.raises(AdaptationError):
            knob.set("c")

    def test_exactly_one_constraint_kind(self):
        with pytest.raises(AdaptationError):
            AdaptationKnob("x", 1.0)
        with pytest.raises(AdaptationError):
            AdaptationKnob("x", 1.0, bounds=(0, 2), choices=(1.0,))

    def test_on_change_callback(self):
        seen = []
        knob = AdaptationKnob("r", 0.0, bounds=(0, 10), on_change=seen.append)
        knob.set(4.0)
        assert seen == [4.0]

    def test_initial_value_validated(self):
        with pytest.raises(AdaptationError):
            AdaptationKnob("r", 99.0, bounds=(0, 10))


class TestRegistry:
    def test_envelope_denies_unlisted_knob(self):
        env = InitiativeEnvelope(allowed_knobs=frozenset({"allowed"}))
        reg = KnobRegistry(env)
        reg.register(AdaptationKnob("allowed", 1.0, bounds=(0, 5)))
        reg.register(AdaptationKnob("forbidden", 1.0, bounds=(0, 5)))
        assert reg.move("allowed", 2.0)
        assert not reg.move("forbidden", 2.0)
        assert reg.get("forbidden").value == 1.0
        assert len(reg.denied_moves()) == 1

    def test_no_envelope_permits_everything(self):
        reg = KnobRegistry()
        reg.register(AdaptationKnob("k", 0.0, bounds=(0, 1)))
        assert reg.move("k", 1.0)

    def test_duplicate_registration_rejected(self):
        reg = KnobRegistry()
        reg.register(AdaptationKnob("k", 0.0, bounds=(0, 1)))
        with pytest.raises(AdaptationError):
            reg.register(AdaptationKnob("k", 0.0, bounds=(0, 1)))

    def test_unknown_knob(self):
        with pytest.raises(AdaptationError):
            KnobRegistry().get("nope")

    def test_audit_log_records_moves(self):
        reg = KnobRegistry()
        reg.register(AdaptationKnob("k", 0.0, bounds=(0, 9)))
        reg.move("k", 3.0, time=12.5)
        assert reg.audit_log == [(12.5, "k", 0.0, 3.0)]


def make_multimodal_asset():
    sim = Simulator(seed=1)
    net = Network(sim, Channel(seed=1))
    inv = AssetInventory(net)
    ugv = inv.create(make_profile("ugv"), Point(0, 0))
    ugv.add_default_sensors()  # camera, lidar, acoustic
    return ugv


class TestModalityManager:
    def test_benign_environment_prefers_a_modality(self):
        asset = make_multimodal_asset()
        mgr = ModalityManager([asset])
        mgr.update(Environment())
        active = mgr.active_modality(asset.id)
        assert active is not None
        enabled = [s.modality for s in asset.sensors if s.enabled]
        assert enabled == [active]

    def test_smoke_forces_switch_away_from_optics(self):
        asset = make_multimodal_asset()
        mgr = ModalityManager([asset])
        mgr.update(Environment())
        mgr.update(Environment(smoke=1.0))
        active = mgr.active_modality(asset.id)
        assert active not in (SensingModality.CAMERA, SensingModality.LIDAR)
        assert active is SensingModality.ACOUSTIC

    def test_switch_counted(self):
        # ground_sensor: acoustic + seismic.  Benign conditions pick
        # acoustic (alphabetical tie-break); heavy rain damps acoustics
        # well past the hysteresis margin, forcing a switch to seismic.
        sim = Simulator(seed=3)
        net = Network(sim, Channel(seed=3))
        inv = AssetInventory(net)
        gs = inv.create(make_profile("ground_sensor"), Point(0, 0))
        gs.add_default_sensors()
        mgr = ModalityManager([gs])
        mgr.update(Environment())
        assert mgr.active_modality(gs.id) is SensingModality.ACOUSTIC
        n0 = mgr.switches
        mgr.update(Environment(rain=1.0))
        assert mgr.active_modality(gs.id) is SensingModality.SEISMIC
        assert mgr.switches > n0

    def test_hysteresis_prevents_flapping(self):
        asset = make_multimodal_asset()
        mgr = ModalityManager([asset], hysteresis=0.5)
        mgr.update(Environment())
        first = mgr.active_modality(asset.id)
        # A tiny degradation should not trigger a switch.
        mgr.update(Environment(night=0.1))
        assert mgr.active_modality(asset.id) is first

    def test_blinded_when_nothing_usable(self):
        sim = Simulator(seed=2)
        net = Network(sim, Channel(seed=2))
        inv = AssetInventory(net)
        pole = inv.create(make_profile("camera_pole"), Point(0, 0))
        pole.add_default_sensors()  # camera only
        mgr = ModalityManager([pole], min_effectiveness=0.3)
        mgr.update(Environment(smoke=1.0))
        assert pole.id in mgr.blinded_assets()
        assert all(not s.enabled for s in pole.sensors)

    def test_recovers_after_conditions_clear(self):
        asset = make_multimodal_asset()
        mgr = ModalityManager([asset])
        mgr.update(Environment(smoke=1.0))
        mgr.update(Environment())
        assert mgr.active_modality(asset.id) is not None

    def test_invalid_min_effectiveness(self):
        with pytest.raises(AdaptationError):
            ModalityManager([], min_effectiveness=2.0)
