"""Tests for the unified self-aware adaptation abstraction."""

import pytest

from repro.core.adaptation.selfaware import (
    CodewordCorrector,
    InvariantMaintainer,
    SelfAwareAgent,
    SelfModel,
    SetpointController,
)
from repro.errors import AdaptationError

HAMMING_GROUPS = [(0, 2, 4, 6), (1, 2, 5, 6), (3, 4, 5, 6)]
VALID_CODEWORD = [0, 0, 0, 0, 0, 0, 0]


class TestSelfModel:
    def test_goal_met(self):
        model = SelfModel(state=5, goal=lambda s: s > 3)
        assert model.goal_met()

    def test_unknown_action_raises(self):
        model = SelfModel(state=0, goal=lambda s: False, actions={})

        class Agent(SelfAwareAgent):
            def select_action(self):
                return "missing"

        with pytest.raises(AdaptationError):
            Agent(model).step()


class TestInvariantMaintainer:
    def _counter_agent(self, start):
        """Goal: state == 10; rules move toward it."""
        model = SelfModel(
            state=start,
            goal=lambda s: s == 10,
            actions={"up": lambda s: s + 1, "down": lambda s: s - 1},
        )
        rules = [
            (lambda s: s < 10, "up"),
            (lambda s: s > 10, "down"),
        ]
        return InvariantMaintainer(model, rules)

    def test_restores_from_below(self):
        agent = self._counter_agent(4)
        steps = agent.adapt_until_stable()
        assert agent.self_model.state == 10
        assert steps == 6

    def test_restores_from_above(self):
        agent = self._counter_agent(13)
        agent.adapt_until_stable()
        assert agent.self_model.state == 10

    def test_already_stable_one_step(self):
        agent = self._counter_agent(10)
        assert agent.adapt_until_stable() == 1
        assert agent.adaptations == 0

    def test_divergence_detected(self):
        model = SelfModel(
            state=0, goal=lambda s: s == -1, actions={"up": lambda s: s + 1}
        )
        agent = InvariantMaintainer(
            model, [(lambda s: True, "up")], max_steps_per_adapt=10
        )
        with pytest.raises(AdaptationError):
            agent.adapt_until_stable()


class TestCodewordCorrector:
    def test_valid_codeword_stable(self):
        agent = CodewordCorrector(VALID_CODEWORD, HAMMING_GROUPS)
        assert agent.self_model.goal_met()

    @pytest.mark.parametrize("flip_bit", range(7))
    def test_corrects_any_single_bit_error(self, flip_bit):
        bits = list(VALID_CODEWORD)
        bits[flip_bit] ^= 1
        agent = CodewordCorrector(bits, HAMMING_GROUPS)
        assert not agent.self_model.goal_met()
        agent.adapt_until_stable()
        assert list(agent.self_model.state) == VALID_CODEWORD

    def test_correction_counts_as_adaptation(self):
        bits = list(VALID_CODEWORD)
        bits[2] ^= 1
        agent = CodewordCorrector(bits, HAMMING_GROUPS)
        agent.adapt_until_stable()
        assert agent.adaptations >= 1


class TestSetpointController:
    def test_correct_model_converges_fast(self):
        agent = SetpointController(
            plant_gain=2.0, setpoint=7.0, initial_gain_estimate=2.0
        )
        steps = agent.adapt_until_stable()
        assert abs(float(agent.self_model.state) - 7.0) < 1e-3
        assert steps <= 2
        assert agent.model_revisions == 0

    def test_wrong_sign_gain_triggers_model_revision(self):
        agent = SetpointController(
            plant_gain=-2.0, setpoint=5.0, initial_gain_estimate=1.0
        )
        agent.adapt_until_stable()
        assert agent.model_revisions >= 1
        assert agent.b_hat == pytest.approx(-2.0)
        assert abs(float(agent.self_model.state) - 5.0) < 1e-3

    def test_wrong_magnitude_converges(self):
        agent = SetpointController(
            plant_gain=0.5, setpoint=-3.0, initial_gain_estimate=5.0
        )
        agent.adapt_until_stable()
        assert abs(float(agent.self_model.state) - (-3.0)) < 1e-3

    def test_zero_gain_rejected(self):
        with pytest.raises(AdaptationError):
            SetpointController(plant_gain=0.0, setpoint=1.0)


class TestUnificationClaim:
    """The paper's claim: one loop serves all three disciplines."""

    def test_all_three_recover_through_the_same_interface(self):
        bits = list(VALID_CODEWORD)
        bits[5] ^= 1
        agents = [
            InvariantMaintainer(
                SelfModel(
                    state=3,
                    goal=lambda s: s == 0,
                    actions={"down": lambda s: s - 1},
                ),
                [(lambda s: s > 0, "down")],
            ),
            CodewordCorrector(bits, HAMMING_GROUPS),
            SetpointController(plant_gain=-1.5, setpoint=2.0),
        ]
        for agent in agents:
            agent.adapt_until_stable()   # the SAME generic driver
            assert agent.self_model.goal_met()
