"""Tests for self-stabilizing protocols."""

import pytest

from repro.core.adaptation.stabilizer import LeaderElection, SpanningTreeProtocol
from repro.errors import AdaptationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.sim import Simulator
from repro.util.geometry import Point


def grid_network(nx_, ny, spacing=60.0, seed=2):
    sim = Simulator(seed=seed)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    nid = 0
    for j in range(ny):
        for i in range(nx_):
            nid += 1
            net.create_node(nid, Point(i * spacing, j * spacing))
    return sim, net


class TestSpanningTree:
    def test_converges_to_legitimate_tree(self):
        sim, net = grid_network(4, 3)
        tree = SpanningTreeProtocol(net, root=1)
        tree.stabilize()
        assert tree.legitimate()

    def test_unknown_root_rejected(self):
        sim, net = grid_network(2, 2)
        with pytest.raises(AdaptationError):
            SpanningTreeProtocol(net, root=99)

    def test_recovers_from_node_failure(self):
        sim, net = grid_network(4, 3)
        tree = SpanningTreeProtocol(net, root=1)
        tree.stabilize()
        net.fail_node(2)  # a node next to the root
        assert not tree.legitimate()
        rounds = tree.stabilize()
        assert tree.legitimate()
        assert rounds >= 1

    def test_recovers_from_state_corruption(self):
        sim, net = grid_network(4, 3)
        tree = SpanningTreeProtocol(net, root=1)
        tree.stabilize()
        tree.corrupt(7, 0)  # claims to be the root's distance
        tree.stabilize()
        assert tree.legitimate()

    def test_tree_edges_span_live_reachable_nodes(self):
        sim, net = grid_network(3, 3)
        tree = SpanningTreeProtocol(net, root=1)
        tree.stabilize()
        edges = tree.tree_edges()
        # n-1 edges for n reachable nodes.
        assert len(edges) == len(net.nodes) - 1

    def test_distances_are_bfs_distances(self):
        sim, net = grid_network(5, 1, spacing=100.0)  # a line, 1 hop apart
        tree = SpanningTreeProtocol(net, root=1)
        tree.stabilize()
        assert [tree.dist[i] for i in range(1, 6)] == [0, 1, 2, 3, 4]


class TestLeaderElection:
    def test_elects_max_id(self):
        sim, net = grid_network(4, 2)
        election = LeaderElection(net)
        election.stabilize()
        assert election.legitimate()
        max_id = max(net.nodes)
        assert all(
            election.leader[n] == max_id for n in net.nodes if net.node(n).up
        )

    def test_ghost_leader_ages_out_after_death(self):
        sim, net = grid_network(4, 2)
        election = LeaderElection(net)
        election.stabilize()
        old_leader = max(net.nodes)
        net.fail_node(old_leader)
        rounds = election.stabilize()
        assert election.legitimate()
        live = [n for n in net.nodes if net.node(n).up]
        new_leader = max(live)
        assert all(election.leader[n] == new_leader for n in live)
        assert rounds >= 1

    def test_partition_elects_per_component_leaders(self):
        sim, net = grid_network(6, 1, spacing=100.0)  # line: 1..6
        election = LeaderElection(net)
        election.stabilize()
        net.fail_node(3)  # split {1,2} and {4,5,6}
        election.stabilize()
        assert election.legitimate()
        assert election.leader[1] == 2
        assert election.leader[5] == 6

    def test_stabilize_bound(self):
        sim, net = grid_network(3, 3)
        election = LeaderElection(net)
        rounds = election.stabilize()
        # Information travels one hop per round: diameter bounds convergence.
        assert rounds <= len(net.nodes) + 2
