"""Tests for connectivity-driven transport switching."""

import pytest

from repro.core.adaptation.comms import TransportSwitcher
from repro.errors import AdaptationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter, SprayAndWaitRouter
from repro.sim import Simulator
from repro.util.geometry import Point


def connected_world(seed=1):
    """Six nodes in a well-connected line."""
    sim = Simulator(seed=seed)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    for i in range(1, 7):
        net.create_node(i, Point(i * 30.0, 0.0))
    return sim, net


def make_switcher(net, node_ids, **kw):
    routers = {
        "mesh": AodvRouter(net),
        "dtn": SprayAndWaitRouter(net, copies=4, contact_period_s=2.0),
    }
    return TransportSwitcher(net, node_ids, routers, **kw)


class TestConstruction:
    def test_router_keys_validated(self):
        sim, net = connected_world()
        with pytest.raises(AdaptationError):
            TransportSwitcher(net, [1, 2], {"mesh": AodvRouter(net)})

    def test_empty_nodes_rejected(self):
        sim, net = connected_world()
        with pytest.raises(AdaptationError):
            make_switcher(net, [])

    def test_starts_in_mesh(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        assert switcher.current == "mesh"
        for i in range(1, 7):
            assert net.node(i).router is switcher.routers["mesh"]


class TestSwitching:
    def test_connected_stays_mesh(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        assert switcher.connectivity() == pytest.approx(1.0)
        switcher.check()
        assert switcher.current == "mesh"
        assert switcher.switches == 0

    def test_partition_triggers_dtn(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        # Break the middle: 1-3 | 4-6.
        net.set_position(4, Point(5000, 0))
        net.set_position(5, Point(5030, 0))
        net.set_position(6, Point(5060, 0))
        switcher.check()
        assert switcher.current == "dtn"
        assert switcher.switches == 1
        for i in range(1, 7):
            assert net.node(i).router is switcher.routers["dtn"]

    def test_healing_switches_back_with_hysteresis(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        net.set_position(6, Point(5000, 0))  # 5/6 connected = 0.833 < 0.9
        switcher.check()
        assert switcher.current == "dtn"
        net.set_position(6, Point(180, 0))   # healed
        switcher.check()
        assert switcher.current == "mesh"
        assert switcher.switches == 2

    def test_borderline_does_not_flap_back(self):
        sim, net = connected_world()
        switcher = make_switcher(
            net, list(range(1, 7)), partition_threshold=0.9, hysteresis=0.2
        )
        net.set_position(6, Point(5000, 0))
        switcher.check()
        assert switcher.current == "dtn"
        # Connectivity back to 5/6 = 0.833: below 0.9 + 0.2, stays DTN...
        # bring back node 6 => 1.0 which is < 1.1, ALSO stays DTN.
        net.set_position(6, Point(180, 0))
        switcher.check()
        assert switcher.current == "dtn"  # hysteresis holds it


class TestEndToEnd:
    def test_delivers_in_mesh_regime(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        receipt = switcher.send(1, 6)
        sim.run(until=60.0)
        assert receipt.delivered
        assert switcher.delivery_ratio() == 1.0

    def test_dtn_regime_delivers_across_partition_via_ferry(self):
        sim, net = connected_world(seed=3)
        # Partition with a ferry (node 3) shuttling between islands.
        net.set_position(4, Point(5000, 0))
        net.set_position(5, Point(5030, 0))
        net.set_position(6, Point(5060, 0))
        switcher = make_switcher(net, list(range(1, 7)))
        switcher.check()
        assert switcher.current == "dtn"

        def shuttle():
            pos = net.node(3).position
            net.set_position(3, Point(5000.0 - pos.x + 60.0, 0.0))

        sim.every(15.0, shuttle)
        receipt = switcher.send(1, 6)
        sim.run(until=300.0)
        assert receipt.delivered

    def test_handlers_survive_switch(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)))
        got = []
        switcher.on_message(6, lambda p: got.append(p.payload))
        net.set_position(6, Point(5000, 0))
        switcher.check()  # -> dtn
        net.set_position(6, Point(180, 0))
        switcher.check()  # -> mesh again
        switcher.send(1, 6, payload="post-switch")
        sim.run(until=60.0)
        assert got == ["post-switch"]

    def test_periodic_monitoring(self):
        sim, net = connected_world()
        switcher = make_switcher(net, list(range(1, 7)), check_period_s=5.0)
        switcher.start()
        sim.call_at(12.0, lambda: net.set_position(6, Point(5000, 0)))
        sim.run(until=30.0)
        assert switcher.current == "dtn"
        assert sim.metrics.has_series("comms.connectivity")
