"""Tests for game-theoretic intent decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptation.games import BestResponseDynamics, TaskAssignmentGame
from repro.errors import AdaptationError


class TestGameMechanics:
    def test_invalid_values_rejected(self):
        with pytest.raises(AdaptationError):
            TaskAssignmentGame([1.0, -2.0], 3)
        with pytest.raises(AdaptationError):
            TaskAssignmentGame([], 3)

    def test_payoff_is_equal_share(self):
        game = TaskAssignmentGame([12.0], 3)
        assignment = [0, 0, 0]
        assert game.payoff(assignment, 0) == pytest.approx(4.0)

    def test_welfare_counts_staffed_tasks_once(self):
        game = TaskAssignmentGame([10.0, 6.0, 2.0], 4)
        assert game.welfare([0, 0, 1, 1]) == pytest.approx(16.0)

    def test_optimal_welfare(self):
        game = TaskAssignmentGame([10.0, 6.0, 2.0], 2)
        assert game.optimal_welfare() == pytest.approx(16.0)

    def test_best_response_prefers_empty_high_value(self):
        game = TaskAssignmentGame([10.0, 9.0], 2)
        # Both on task 0: moving to task 1 gives 9 > 5.
        assert game.best_response([0, 0], 1) == 1


class TestPotential:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=20), min_size=2, max_size=5),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_improving_moves_increase_potential(self, values, n_agents, seed):
        """The defining property of an exact potential game."""
        game = TaskAssignmentGame(values, n_agents)
        rng = np.random.default_rng(seed)
        assignment = [int(rng.integers(0, game.n_tasks)) for _ in range(n_agents)]
        agent = int(rng.integers(0, n_agents))
        before_pay = game.payoff(assignment, agent)
        before_phi = game.potential(assignment)
        trial = list(assignment)
        trial[agent] = game.best_response(assignment, agent)
        after_pay = game.payoff(trial, agent)
        after_phi = game.potential(trial)
        # Potential difference equals payoff difference (exact potential).
        assert after_phi - before_phi == pytest.approx(
            after_pay - before_pay, abs=1e-9
        )


class TestConvergence:
    def test_honest_dynamics_converge_to_nash(self):
        game = TaskAssignmentGame([10, 8, 5, 3, 2], 9)
        brd = BestResponseDynamics(game, rng=np.random.default_rng(7))
        result = brd.run()
        assert result.converged
        assert brd.is_nash(result.assignment)

    def test_nash_welfare_is_efficient_here(self):
        # With n_agents >= n_tasks, every task gets staffed at equilibrium.
        game = TaskAssignmentGame([10, 8, 5], 6)
        result = BestResponseDynamics(game, rng=np.random.default_rng(1)).run()
        assert result.efficiency == pytest.approx(1.0)

    def test_potential_nondecreasing_under_honest_play(self):
        game = TaskAssignmentGame([9, 7, 4, 2], 8)
        result = BestResponseDynamics(game, rng=np.random.default_rng(3)).run()
        trace = result.potential_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_convergence_scales_with_agents(self):
        for n in (5, 20, 60):
            game = TaskAssignmentGame([10, 8, 5, 3], n)
            result = BestResponseDynamics(
                game, rng=np.random.default_rng(n)
            ).run()
            assert result.converged


class TestMaliciousAgents:
    def test_malicious_ids_validated(self):
        game = TaskAssignmentGame([5, 3], 4)
        with pytest.raises(AdaptationError):
            BestResponseDynamics(game, malicious={9})

    def test_malicious_agents_reduce_welfare(self):
        # More tasks than agents, with empty-task values always beating
        # shared ones for honest players — so honest play staffs 5 distinct
        # tasks, while malicious stacking strands task value.
        game = TaskAssignmentGame([10, 9, 8, 7, 6, 5, 4, 3], 5)
        honest = BestResponseDynamics(
            game, rng=np.random.default_rng(2)
        ).run()
        attacked = BestResponseDynamics(
            game, malicious={0, 1}, rng=np.random.default_rng(2)
        ).run()
        assert honest.welfare == pytest.approx(40.0)  # top-5 all staffed
        assert attacked.welfare < honest.welfare

    def test_more_malicious_worse_welfare(self):
        game = TaskAssignmentGame([10, 9, 8, 7, 6, 5, 4, 3], 8)
        welfares = []
        for k in (0, 2, 4):
            result = BestResponseDynamics(
                game,
                malicious=set(range(k)),
                rng=np.random.default_rng(4),
            ).run()
            welfares.append(result.welfare)
        assert welfares[0] >= welfares[1] >= welfares[2]
        assert welfares[0] > welfares[2]


class TestGameFromObjectives:
    def _objectives(self, nx=3, ny=2):
        from repro.core.intent import CommanderIntent, decompose_spatial
        from repro.core.mission import MissionGoal, MissionType
        from repro.util.geometry import Region

        goal = MissionGoal(MissionType.SURVEIL, Region(0, 0, 900, 600))
        return decompose_spatial(CommanderIntent(goal=goal), nx, ny)

    def test_one_task_per_sector(self):
        from repro.core.adaptation.games import game_from_objectives

        objectives = self._objectives(3, 2)
        game = game_from_objectives(objectives, n_agents=6)
        assert game.n_tasks == 6

    def test_empty_objectives_rejected(self):
        from repro.core.adaptation.games import game_from_objectives
        from repro.errors import AdaptationError

        with pytest.raises(AdaptationError):
            game_from_objectives([], 3)

    def test_equilibrium_staffs_every_sector_when_agents_suffice(self):
        from repro.core.adaptation.games import game_from_objectives

        objectives = self._objectives(3, 2)
        game = game_from_objectives(objectives, n_agents=12)
        result = BestResponseDynamics(
            game, rng=np.random.default_rng(5)
        ).run()
        assert result.converged
        counts = game.counts(result.assignment)
        assert all(c >= 1 for c in counts)  # full spatial coverage

    def test_priority_scales_values(self):
        from dataclasses import replace

        from repro.core.adaptation.games import game_from_objectives
        from repro.core.intent import CommanderIntent, decompose_spatial
        from repro.core.mission import MissionGoal, MissionType
        from repro.util.geometry import Region

        goal_hi = MissionGoal(MissionType.SURVEIL, Region(0, 0, 100, 100), priority=5)
        objectives = decompose_spatial(CommanderIntent(goal=goal_hi), 2, 1)
        game = game_from_objectives(objectives, 4)
        goal_lo = replace(goal_hi, priority=1)
        objectives_lo = decompose_spatial(CommanderIntent(goal=goal_lo), 2, 1)
        game_lo = game_from_objectives(objectives_lo, 4)
        assert game.task_values[0] == pytest.approx(5 * game_lo.task_values[0])
