"""Tests for the integrated evacuation mission."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.services.evacuation import (
    EvacuationConfig,
    EvacuationMission,
    EvacuationResult,
)
from repro.errors import ConfigurationError


def make_mission(seed=11, **config_kw):
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=90.0, density=0.4)
        .population(n_blue=50, n_red=20, n_gray=15)
        .build()
    )
    return EvacuationMission(scenario, EvacuationConfig(**config_kw))


class TestConfig:
    def test_invalid_groups(self):
        with pytest.raises(ConfigurationError):
            EvacuationConfig(n_evacuee_groups=0)

    def test_invalid_deadline(self):
        with pytest.raises(ConfigurationError):
            EvacuationConfig(deadline_s=0.0)


class TestMissionMechanics:
    def test_runs_to_completion(self):
        mission = make_mission(deadline_s=400.0)
        result = mission.run()
        assert isinstance(result, EvacuationResult)
        assert 0.0 <= result.evacuated_fraction <= 1.0
        assert result.exposures >= 0

    def test_cannot_run_twice(self):
        mission = make_mission(deadline_s=200.0)
        mission.run()
        with pytest.raises(ConfigurationError):
            mission.run()

    def test_hazards_scheduled_within_window(self):
        mission = make_mission()
        mission._schedule_hazards()
        lo, hi = mission.config.hazard_onset_s
        assert all(lo <= t <= hi for t in mission.hazard_onset.values())

    def test_exits_never_hazardous(self):
        mission = make_mission()
        mission._schedule_hazards()
        assert not (set(mission.hazard_onset) & mission.exits)

    def test_groups_start_off_exits(self):
        mission = make_mission()
        assert all(g.node not in mission.exits for g in mission.groups)

    def test_n_exits_respected(self):
        mission = make_mission(n_exits=2)
        assert len(mission.exits) == 2

    def test_sensor_budget_respected(self):
        mission = make_mission(sensor_budget=5)
        assert len(mission.sensors) <= 5

    def test_deterministic_given_seed(self):
        r1 = make_mission(seed=77, deadline_s=300.0).run()
        r2 = make_mission(seed=77, deadline_s=300.0).run()
        assert r1.evacuated == r2.evacuated
        assert r1.exposures == r2.exposures

    def test_most_groups_evacuate_with_long_deadline(self):
        result = make_mission(deadline_s=900.0).run()
        assert result.evacuated_fraction >= 0.9


class TestAblationEffects:
    """E1's claim at test scale: the full stack is safest."""

    def _mean_exposures(self, seeds=(11, 12, 13), **flags):
        total = 0
        for seed in seeds:
            total += make_mission(seed=seed, **flags).run().exposures
        return total / len(seeds)

    def test_adaptation_reduces_exposures(self):
        with_adapt = self._mean_exposures()
        without = self._mean_exposures(use_adaptation=False)
        assert with_adapt <= without

    def test_belief_accuracy_better_with_learning(self):
        def mean_belief(flag):
            accs = []
            for seed in (11, 12, 13):
                accs.append(
                    make_mission(seed=seed, use_learning=flag).run()
                    .hazard_belief_accuracy
                )
            return sum(accs) / len(accs)

        assert mean_belief(True) > mean_belief(False)
