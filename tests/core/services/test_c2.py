"""Tests for the C2 decision-loop models."""

import pytest

from repro.core.services.c2 import (
    C2Comparison,
    C2Mode,
    DecisionRequest,
    EchelonChain,
)
from repro.errors import ConfigurationError
from repro.sim import Simulator


def run_mode(mode, *, seed=5, rate=0.05, duration=3600.0, **kw):
    sim = Simulator(seed=seed)
    comparison = C2Comparison(sim, mode, arrival_rate_hz=rate, **kw)
    comparison.start(duration)
    sim.run(until=duration * 3)
    return comparison


class TestEchelonChain:
    def test_request_clears_all_stages(self):
        sim = Simulator(seed=1)
        chain = EchelonChain(sim)
        decided = []
        chain.submit(DecisionRequest(created_at=0.0), decided.append)
        sim.run(until=2000.0)
        assert len(decided) == 1
        assert decided[0].latency_s > 0

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            EchelonChain(Simulator(), stage_specs=[])

    def test_queueing_delays_under_load(self):
        sim = Simulator(seed=2)
        chain = EchelonChain(sim, stage_specs=[("hq", 1, 50.0)])
        decided = []
        for _ in range(10):
            chain.submit(DecisionRequest(created_at=0.0), decided.append)
        sim.run(until=50_000.0)
        latencies = sorted(r.latency_s for r in decided)
        assert latencies[-1] > latencies[0]  # later ones queued


class TestC2Comparison:
    def test_hierarchical_slowest_autonomous_fastest(self):
        hier = run_mode(C2Mode.HIERARCHICAL).report()
        intent = run_mode(C2Mode.INTENT).report()
        auto = run_mode(C2Mode.AUTONOMOUS).report()
        assert hier["latency_mean_s"] > intent["latency_mean_s"]
        assert intent["latency_mean_s"] > auto["latency_mean_s"]

    def test_intent_staleness_between_extremes(self):
        hier = run_mode(C2Mode.HIERARCHICAL).report()
        intent = run_mode(C2Mode.INTENT).report()
        auto = run_mode(C2Mode.AUTONOMOUS).report()
        assert hier["stale_fraction"] >= intent["stale_fraction"]
        assert intent["stale_fraction"] >= auto["stale_fraction"]

    def test_escalations_only_out_of_envelope(self):
        comparison = run_mode(C2Mode.INTENT, envelope_fraction=1.0)
        assert comparison.escalations == 0
        comparison = run_mode(C2Mode.INTENT, envelope_fraction=0.0)
        assert comparison.escalations == len(comparison.decided) or (
            comparison.escalations > 0
        )

    def test_wider_envelope_lower_latency(self):
        narrow = run_mode(C2Mode.INTENT, envelope_fraction=0.2).report()
        wide = run_mode(C2Mode.INTENT, envelope_fraction=0.9).report()
        assert wide["latency_mean_s"] < narrow["latency_mean_s"]

    def test_staleness_proportional_to_latency(self):
        comparison = run_mode(C2Mode.AUTONOMOUS, drift_speed_m_s=2.0)
        for request in comparison.decided[:10]:
            assert comparison.staleness_m(request) == pytest.approx(
                request.latency_s * 2.0
            )

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            C2Comparison(sim, C2Mode.INTENT, arrival_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            C2Comparison(sim, C2Mode.INTENT, envelope_fraction=1.5)
