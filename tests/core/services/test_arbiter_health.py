"""Tests for multi-mission arbitration and health monitoring."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.services.arbiter import MissionArbiter, MissionState
from repro.core.services.health import (
    CasualtyKind,
    HealthMonitorService,
    SoldierModel,
)
from repro.errors import ConfigurationError
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService
from repro.things.capabilities import SensingModality
from repro.util.geometry import Region


# --------------------------------------------------------------------- arbiter


def make_world(sim, n_blue=120):
    return (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.3)
        .population(n_blue=n_blue, n_red=0, n_gray=0)
        .build()
    )


def goal(scenario, *, priority=1, coverage=0.4, duration=300.0, sub_region=None):
    area = sub_region if sub_region is not None else scenario.region
    return MissionGoal(
        MissionType.SURVEIL,
        area,
        min_coverage=coverage,
        priority=priority,
        duration_s=duration,
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
             SensingModality.CAMERA}
        ),
    )


class TestArbiter:
    def test_single_mission_admitted(self, sim):
        scenario = make_world(sim)
        arbiter = MissionArbiter(scenario)
        record = arbiter.submit(goal(scenario))
        assert record.state is MissionState.ACTIVE
        assert record.held_assets

    def test_disjoint_missions_no_asset_overlap(self, sim):
        scenario = make_world(sim)
        arbiter = MissionArbiter(scenario)
        half = scenario.region.width / 2
        left = Region(0, 0, half, scenario.region.height)
        right = Region(half, 0, scenario.region.width, scenario.region.height)
        r1 = arbiter.submit(goal(scenario, sub_region=left))
        r2 = arbiter.submit(goal(scenario, sub_region=right))
        assert r1.state is MissionState.ACTIVE
        assert r2.state is MissionState.ACTIVE
        assert not (r1.held_assets & r2.held_assets)

    def test_completion_releases_assets(self, sim):
        scenario = make_world(sim)
        arbiter = MissionArbiter(scenario)
        record = arbiter.submit(goal(scenario, duration=50.0))
        held = set(record.held_assets)
        sim.run(until=100.0)
        assert record.state is MissionState.COMPLETED
        assert not (held & arbiter.allocated_assets())

    def test_higher_priority_preempts(self, sim):
        scenario = make_world(sim, n_blue=60)
        arbiter = MissionArbiter(scenario)
        # Saturate with low-priority demanding missions.
        records = [
            arbiter.submit(goal(scenario, priority=1, coverage=0.8))
            for _ in range(4)
        ]
        active_before = [
            r for r in records if r.state is MissionState.ACTIVE
        ]
        # A saturating high-priority newcomer.
        vip = arbiter.submit(goal(scenario, priority=10, coverage=0.8))
        if vip.state is MissionState.ACTIVE and any(
            r.state is MissionState.PREEMPTED for r in active_before
        ):
            assert arbiter.preemption_count >= 1
        # Either way, the VIP must not have been starved by lower priority:
        assert vip.state in (MissionState.ACTIVE, MissionState.REJECTED)

    def test_preemption_disabled(self, sim):
        scenario = make_world(sim, n_blue=60)
        arbiter = MissionArbiter(scenario, allow_preemption=False)
        for _ in range(4):
            arbiter.submit(goal(scenario, priority=1, coverage=0.8))
        arbiter.submit(goal(scenario, priority=10, coverage=0.8))
        assert arbiter.preemption_count == 0

    def test_completion_unblocks_rejected(self, sim):
        scenario = make_world(sim, n_blue=60)
        arbiter = MissionArbiter(scenario, allow_preemption=False)
        first = arbiter.submit(goal(scenario, coverage=0.8, duration=50.0))
        assert first.state is MissionState.ACTIVE
        second = arbiter.submit(goal(scenario, coverage=0.8, duration=50.0))
        if second.state is MissionState.REJECTED:
            sim.run(until=120.0)
            assert second.state in (
                MissionState.ACTIVE, MissionState.COMPLETED
            )

    def test_report_accounting(self, sim):
        scenario = make_world(sim)
        arbiter = MissionArbiter(scenario)
        arbiter.submit(goal(scenario))
        report = arbiter.report()
        assert report["submitted"] == 1.0
        assert report["admitted"] == 1.0
        assert report["admission_rate"] == 1.0


# --------------------------------------------------------------------- health


@pytest.fixture
def health_world():
    sim = Simulator(seed=71)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=4, block_size_m=70.0, density=0.2)
        .population(n_blue=40, n_red=0, n_gray=0)
        .mobility(mobile_fraction=0.0)
        .build()
    )
    wearers = [
        a for a in scenario.inventory.blue()
        if a.profile.can_sense(SensingModality.PHYSIOLOGICAL)
    ][:8]
    if len(wearers) < 3:
        pytest.skip("not enough wearables in draw")
    medic = scenario.blue_node_ids()[0]
    router = FloodingRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)
    monitor = HealthMonitorService(scenario, wearers, medic, service)
    return scenario, wearers, monitor


class TestSoldierModel:
    def test_healthy_vitals_near_baseline(self):
        import numpy as np

        rng = np.random.default_rng(1)
        soldier = SoldierModel(1, rng, resting_hr=70.0)
        rates = [soldier.heart_rate(t, rng) for t in range(100)]
        assert 50 < np.median(rates) < 100

    def test_collapse_decays_to_zero(self):
        import numpy as np

        rng = np.random.default_rng(2)
        soldier = SoldierModel(1, rng, resting_hr=70.0)
        soldier.become_casualty(10.0, CasualtyKind.COLLAPSE)
        assert soldier.heart_rate(200.0, rng) < 5.0

    def test_trauma_spikes_then_declines(self):
        import numpy as np

        rng = np.random.default_rng(3)
        soldier = SoldierModel(1, rng, resting_hr=70.0)
        soldier.become_casualty(0.0, CasualtyKind.TRAUMA)
        spike = np.mean([soldier.heart_rate(30.0, rng) for _ in range(20)])
        later = np.mean([soldier.heart_rate(200.0, rng) for _ in range(20)])
        assert spike > 110
        assert later < spike


class TestHealthMonitor:
    def test_requires_wearers(self, health_world):
        scenario, wearers, monitor = health_world
        with pytest.raises(ConfigurationError):
            HealthMonitorService(
                scenario, [], monitor.medic_node, monitor.service
            )

    def test_no_casualty_no_false_alarm_storm(self, health_world):
        scenario, wearers, monitor = health_world
        monitor.start()
        scenario.sim.run(until=300.0)
        stats = monitor.detection_stats()
        assert stats["false_alarms"] <= 1  # activity noise tolerated

    def test_trauma_detected(self, health_world):
        scenario, wearers, monitor = health_world
        monitor.start()
        scenario.sim.run(until=120.0)  # baseline warmup
        victim = wearers[1].id
        monitor.inflict_casualty(victim, CasualtyKind.TRAUMA)
        scenario.sim.run(until=400.0)
        assert victim in monitor.alerts
        latency = monitor.detection_latency_s(victim)
        assert latency is not None and latency < 120.0

    def test_silent_casualty_detected_by_timeout(self, health_world):
        scenario, wearers, monitor = health_world
        monitor.start()
        scenario.sim.run(until=120.0)
        victim = wearers[2]
        scenario.network.fail_node(victim.node_id)  # wearable goes dark
        scenario.sim.run(until=300.0)
        assert victim.id in monitor.alerts

    def test_detection_stats_shape(self, health_world):
        scenario, wearers, monitor = health_world
        monitor.start()
        scenario.sim.run(until=120.0)
        monitor.inflict_casualty(wearers[0].id, CasualtyKind.COLLAPSE)
        scenario.sim.run(until=400.0)
        stats = monitor.detection_stats()
        assert stats["casualties"] == 1.0
        assert 0.0 <= stats["recall"] <= 1.0
