"""Tests for tracking and surveillance services."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.services.surveillance import SurveillanceService
from repro.core.services.tracking import TrackingService
from repro.errors import ConfigurationError
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService


@pytest.fixture
def tracking_world():
    sim = Simulator(seed=23)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=4, block_size_m=80.0, density=0.2)
        .population(n_blue=40, n_red=0, n_gray=0)
        .mobility(mobile_fraction=0.0)
        .targets(4)
        .build()
    )
    sensors = [a for a in scenario.inventory.blue() if a.sensors][:15]
    sink = scenario.blue_node_ids()[0]
    router = FloodingRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)
    return scenario, sensors, sink, service


class TestTrackingService:
    def test_requires_targets(self, sim):
        scenario = ScenarioBuilder(sim).urban_grid(blocks=3).population(10, 0, 0).build()
        router = FloodingRouter(scenario.network)
        router.attach_all(scenario.blue_node_ids())
        with pytest.raises(ConfigurationError):
            TrackingService(
                scenario, [], scenario.blue_node_ids()[0], MessageService(router)
            )

    def test_builds_tracks_over_time(self, tracking_world):
        scenario, sensors, sink, service = tracking_world
        tracking = TrackingService(scenario, sensors, sink, service)
        tracking.start()
        scenario.start()
        scenario.sim.run(until=120.0)
        assert tracking.tracks
        assert tracking.reports_received > 0

    def test_track_error_bounded(self, tracking_world):
        scenario, sensors, sink, service = tracking_world
        tracking = TrackingService(scenario, sensors, sink, service)
        tracking.start()
        scenario.start()
        scenario.sim.run(until=120.0)
        error = tracking.mean_track_error()
        assert error == error  # not NaN
        assert error < 200.0   # far better than random (region ~450m wide)

    def test_custody_fraction_in_unit_interval(self, tracking_world):
        scenario, sensors, sink, service = tracking_world
        tracking = TrackingService(scenario, sensors, sink, service)
        tracking.start()
        scenario.start()
        scenario.sim.run(until=60.0)
        assert 0.0 <= tracking.custody_fraction() <= 1.0

    def test_dead_sensors_stop_reporting(self, tracking_world):
        scenario, sensors, sink, service = tracking_world
        tracking = TrackingService(scenario, sensors, sink, service)
        tracking.start()
        scenario.start()
        for asset in sensors:
            scenario.network.fail_node(asset.node_id)
        scenario.sim.run(until=60.0)
        assert tracking.reports_sent == 0


class TestSurveillance:
    def _world(self, sim):
        scenario = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=4, block_size_m=80.0)
            .population(n_blue=40, n_red=0, n_gray=0)
            .build()
        )
        sensors = [a for a in scenario.inventory.blue() if a.sensors]
        return scenario, sensors

    def test_coverage_in_unit_interval(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors)
        assert 0.0 <= service.coverage() <= 1.0

    def test_losing_sensors_drops_coverage(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors)
        before = service.coverage()
        for asset in sensors[: len(sensors) * 3 // 4]:
            scenario.network.fail_node(asset.node_id)
        assert service.coverage() <= before

    def test_series_recorded(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors, sample_period_s=5.0)
        service.start()
        sim.run(until=30.0)
        series = sim.metrics.series("surveillance.coverage")
        assert len(series) >= 5

    def test_recovery_time_detection(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors, sample_period_s=2.0)
        service.start()
        baseline = service.coverage()
        # Fail EVERY sensor (partial loss may not dent coverage when
        # long-range drones remain); restore them all at t=60.
        sim.call_at(
            20.0, lambda: [scenario.network.fail_node(a.node_id) for a in sensors]
        )
        sim.call_at(
            60.0,
            lambda: [scenario.network.restore_node(a.node_id) for a in sensors],
        )
        sim.run(until=120.0)
        recovery = service.recovery_time_s(20.0, baseline * 0.9)
        assert recovery is not None
        assert 38.0 <= recovery <= 44.0

    def test_disabled_sensors_excluded(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors)
        before = service.coverage()
        for asset in sensors:
            for sensor in asset.sensors:
                sensor.enabled = False
        assert service.coverage() == 0.0 <= before

    def test_replace_sensors(self, sim):
        scenario, sensors = self._world(sim)
        service = SurveillanceService(scenario, sensors)
        service.replace_sensors(sensors[:1])
        assert len(service.sensor_assets) == 1
