"""Whole-stack determinism: identical seeds give identical runs.

This is the invariant everything else in the library leans on — every
experiment is reproducible from its seed, and any two components drawing
from distinct named streams never perturb each other.
"""

import numpy as np

from repro import ScenarioBuilder, Simulator
from repro.faults import FaultInjector
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter
from repro.net.transport import MessageService, ReliableMessageService
from repro.security.attacks import JammingAttack, NodeDestructionAttack
from repro.util.geometry import Point


def run_full_stack(seed: int):
    """A busy run touching mobility, routing, attacks, metrics, traces."""
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=5, block_size_m=90.0, density=0.4)
        .population(n_blue=40, n_red=5, n_gray=10)
        .targets(3)
        .jammers(2)
        .build()
    )
    scenario.start()
    router = AodvRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)
    ids = scenario.blue_node_ids()
    rng = sim.rng.get("workload")
    for _ in range(20):
        a, b = rng.choice(ids, size=2, replace=False)
        service.send(int(a), int(b))
    JammingAttack(scenario).schedule(start_s=30.0, duration_s=30.0)
    victims = [a.id for a in scenario.inventory.blue()[:3]]
    NodeDestructionAttack(scenario, victims).schedule(start_s=45.0)
    sim.run(until=120.0)
    return {
        "trace": sim.trace.fingerprint(),
        "counters": tuple(sorted(sim.metrics.counters().items())),
        "delivery": service.delivery_ratio(),
        "positions": tuple(
            (n.id, round(n.position.x, 9), round(n.position.y, 9))
            for n in scenario.network.nodes.values()
        ),
    }


def run_chaos_stack(seed: int):
    """A run where every fault class and the reliable transport are live."""
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, 13):
        net.create_node(i, Point(i * 75.0, 0.0))
    injector = FaultInjector(net)
    injector.node_churn(mtbf_s=60.0, mean_downtime_s=15.0)
    injector.link_flaps(n_links=2, mtbf_s=40.0, mean_downtime_s=10.0)
    injector.partition_spatial(start_s=60.0, duration_s=30.0)
    injector.gremlin(drop_p=0.05, duplicate_p=0.02, delay_p=0.05)
    router = AodvRouter(net)
    router.attach_all(range(1, 13))
    service = ReliableMessageService(router, base_rto_s=2.0, max_retries=4)
    rng = sim.rng.get("workload")
    for _ in range(25):
        a, b = rng.choice(range(1, 13), size=2, replace=False)
        service.send(int(a), int(b))
    sim.run(until=240.0)
    return {
        "trace": sim.trace.fingerprint(),
        "counters": tuple(sorted(sim.metrics.counters().items())),
        "fates": tuple(sorted(service.fate_counts().items())),
        "mttr": injector.mttr(),
        "windows": tuple(
            (name, tuple(spans)) for name, spans in sorted(injector.fault_windows().items())
        ),
    }


class TestDeterminism:
    def test_identical_seed_identical_run(self):
        assert run_full_stack(101) == run_full_stack(101)

    def test_different_seed_different_run(self):
        assert run_full_stack(101) != run_full_stack(102)

    def test_fault_schedule_identical_seed_identical_trace(self):
        """Same seed + same FaultSchedule => bit-identical traces and stats."""
        first = run_chaos_stack(31)
        second = run_chaos_stack(31)
        assert first["trace"] == second["trace"]
        assert first == second

    def test_fault_schedule_seed_sensitivity(self):
        assert run_chaos_stack(31) != run_chaos_stack(32)

    def test_stream_isolation(self):
        """Consuming an unrelated stream must not perturb others."""
        sim1 = Simulator(seed=7)
        a1 = sim1.rng.get("a").random(8)

        sim2 = Simulator(seed=7)
        sim2.rng.get("unrelated").random(1000)  # burn another stream
        a2 = sim2.rng.get("a").random(8)
        assert np.allclose(a1, a2)

    def test_component_order_independence(self):
        """Creating components in a different order gives identical draws."""
        sim1 = Simulator(seed=9)
        m1 = sim1.rng.get("mobility").random(4)
        c1 = sim1.rng.get("channel").random(4)

        sim2 = Simulator(seed=9)
        c2 = sim2.rng.get("channel").random(4)
        m2 = sim2.rng.get("mobility").random(4)
        assert np.allclose(m1, m2)
        assert np.allclose(c1, c2)
