"""Tests for scenario construction."""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.errors import ConfigurationError
from repro.scenarios.urban import UrbanGrid


class TestUrbanGrid:
    def test_region_size(self):
        grid = UrbanGrid(blocks=5, block_size_m=100.0)
        assert grid.region.width == 500.0

    def test_intersections_count(self):
        grid = UrbanGrid(blocks=3)
        assert len(grid.intersections()) == 16

    def test_channel_density_scaling(self):
        grid = UrbanGrid()
        open_ch = grid.channel(density=0.0)
        dense_ch = grid.channel(density=1.0)
        assert dense_ch.path_loss_exponent > open_ch.path_loss_exponent
        assert dense_ch.shadowing_sigma_db > open_ch.shadowing_sigma_db

    def test_bad_density(self):
        with pytest.raises(ConfigurationError):
            UrbanGrid().channel(density=1.5)

    def test_street_points_on_grid(self):
        import numpy as np

        grid = UrbanGrid(blocks=4, block_size_m=100.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = grid.random_street_point(rng)
            assert grid.region.contains(p)
            assert p.x % 100 == 0 or p.y % 100 == 0


class TestScenarioBuilder:
    def test_population_counts(self, sim):
        sc = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=4)
            .population(n_blue=20, n_red=4, n_gray=6)
            .build()
        )
        counts = sc.inventory.counts()
        assert counts == {"blue": 20, "red": 4, "gray": 6}
        assert len(sc.network.nodes) == 30

    def test_red_sources_are_malicious(self, sim):
        sc = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=4)
            .population(n_blue=0, n_red=20, n_gray=0)
            .build()
        )
        humans = [a.human for a in sc.inventory.all() if a.human is not None]
        assert humans  # red mix includes smartphones
        assert all(h.malicious for h in humans)

    def test_assets_inside_region(self, sim):
        sc = ScenarioBuilder(sim).urban_grid(blocks=3).population(30, 3, 5).build()
        for asset in sc.inventory:
            assert sc.region.contains(asset.position)

    def test_default_sensors_attached(self, sim):
        sc = ScenarioBuilder(sim).urban_grid(blocks=3).population(20, 0, 0).build()
        sensed = [a for a in sc.inventory if a.profile.sensing]
        assert sensed
        assert all(a.sensors for a in sensed)

    def test_jammers_start_inactive(self, sim):
        sc = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=3)
            .population(10, 0, 0)
            .jammers(3)
            .build()
        )
        assert len(sc.jammers) == 3
        assert all(not j.active for j in sc.jammers)

    def test_targets_and_events(self, sim):
        sc = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=3)
            .population(10, 0, 0)
            .targets(5)
            .events(7)
            .build()
        )
        assert len(sc.targets) == 5
        assert len(sc.events) == 7

    def test_negative_population_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            ScenarioBuilder(sim).population(n_blue=-1)

    def test_deterministic_given_seed(self):
        def fingerprint(seed):
            sim = Simulator(seed=seed)
            sc = ScenarioBuilder(sim).urban_grid(blocks=4).population(25, 3, 5).build()
            return [
                (a.profile.device_class, round(a.position.x, 6), round(a.position.y, 6))
                for a in sc.inventory
            ]

        assert fingerprint(9) == fingerprint(9)
        assert fingerprint(9) != fingerprint(10)

    def test_start_runs_dynamics(self, sim):
        sc = (
            ScenarioBuilder(sim)
            .urban_grid(blocks=3)
            .population(10, 0, 0)
            .targets(2)
            .build()
        )
        sc.start()
        before = dict(sc.targets.positions())
        sim.run(until=60.0)
        after = sc.targets.positions()
        assert any(before[k] != after[k] for k in before)


class TestWorkloads:
    def test_event_field_refresh_partial(self, sim):
        from repro.scenarios.workloads import EventField
        from repro.util.geometry import Region

        field = EventField(sim, Region(0, 0, 100, 100), n_events=50)
        before = dict(field.truth)
        field.refresh(fraction=0.0)
        assert field.truth == before

    def test_poisson_traffic_sends(self, small_scenario):
        from repro.net.routing import FloodingRouter
        from repro.net.transport import MessageService
        from repro.scenarios.workloads import PoissonTraffic

        sc = small_scenario
        ids = sc.blue_node_ids()
        router = FloodingRouter(sc.network)
        router.attach_all(ids)
        svc = MessageService(router)
        traffic = PoissonTraffic(sc.sim, svc, ids, rate_hz=2.0)
        traffic.start()
        sc.sim.run(until=30.0)
        assert traffic.sent > 20
        traffic.stop()
