"""``python -m repro.campaign replay``: re-run one cached task entry."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.cli import replay_main
from tests.campaign.taskfns import affine_noise_task

FN = "tests.campaign.taskfns:affine_noise_task"


@pytest.fixture()
def entry(tmp_path):
    """A hand-rolled cache entry whose result the task fn reproduces."""
    params = {"gain": 3.0, "offset": 2.0}
    seed = 424242
    path = tmp_path / "entry.json"
    path.write_text(
        json.dumps(
            {
                "key": "deadbeef",
                "params": params,
                "seed": seed,
                "result": affine_noise_task(params, seed),
            }
        )
    )
    return path


def test_reproduced_entry_exits_zero(entry, capsys):
    assert replay_main([str(entry), "--fn", FN]) == 0
    assert "REPLAY OK" in capsys.readouterr().out


def test_perturbed_field_exits_one_and_names_it(entry, tmp_path, capsys):
    payload = json.loads(entry.read_text())
    payload["result"]["value"] += 1e-6
    entry.write_text(json.dumps(payload))
    verdict_path = tmp_path / "verdict.json"
    assert replay_main([str(entry), "--fn", FN, "--json", str(verdict_path)]) == 1
    out = capsys.readouterr().out
    assert "REPLAY DIVERGED (1 field(s))" in out
    assert "value:" in out
    verdict = json.loads(verdict_path.read_text())
    assert verdict["mismatches"][0]["field"] == "value"


def test_volatile_fields_are_ignored(entry, capsys):
    payload = json.loads(entry.read_text())
    payload["result"]["events_per_sec"] = 1e9  # host-dependent, never compared
    entry.write_text(json.dumps(payload))
    assert replay_main([str(entry), "--fn", FN]) == 0
    capsys.readouterr()


def test_unreadable_entry_exits_two(tmp_path, capsys):
    assert replay_main([str(tmp_path / "missing.json"), "--fn", FN]) == 2
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert replay_main([str(garbage), "--fn", FN]) == 2
    assert "cannot replay" in capsys.readouterr().err


def test_bad_fn_spec_exits_two(entry, capsys):
    assert replay_main([str(entry), "--fn", "no-colon"]) == 2
    assert replay_main([str(entry), "--fn", "tests.campaign.taskfns:absent"]) == 2
    capsys.readouterr()


def test_main_dispatches_replay_subcommand(entry, capsys):
    assert campaign_main(["replay", str(entry), "--fn", FN]) == 0
    assert "REPLAY OK" in capsys.readouterr().out


def test_bare_key_resolves_through_cache_dir(tmp_path, capsys):
    from repro.campaign.cache import ResultCache

    cache = ResultCache(str(tmp_path / "cache"))
    params = {"gain": 1.0, "offset": 5.0}
    seed = 7
    path = cache.path_for("ab12cd")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "key": "ab12cd",
                "params": params,
                "seed": seed,
                "result": affine_noise_task(params, seed),
            }
        )
    )
    code = replay_main(
        ["ab12cd", "--cache", str(tmp_path / "cache"), "--fn", FN]
    )
    assert code == 0
    capsys.readouterr()
