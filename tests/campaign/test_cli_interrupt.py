"""The smoke CLI exits cleanly (code 0, summary line) on Ctrl-C."""

from repro.campaign import cli
from repro.campaign.runner import (
    CampaignInterrupted,
    CampaignResult,
    TaskOutcome,
)


class InterruptingRunner:
    """Stands in for CampaignRunner: settles two tasks, then 'Ctrl-C'."""

    def __init__(self, *args, **kwargs):
        pass

    def run(self, spec):
        tasks = spec.tasks()
        outcomes = [
            TaskOutcome(t, {"value": float(i)}, False, 1, 0.1)
            for i, t in enumerate(tasks[:2])
        ]
        partial = CampaignResult(
            spec=spec, outcomes=outcomes, wall_s=0.5, workers=1
        )
        raise CampaignInterrupted("interrupted", partial=partial)


class TestCliInterrupt:
    def test_exit_zero_with_summary(self, monkeypatch, capsys, tmp_path):
        monkeypatch.setattr(cli, "CampaignRunner", InterruptingRunner)
        code = cli.main(
            ["--workers", "1", "--cache", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "interrupted: settled=2" in out
        assert "executed=2" in out
        assert str(tmp_path / "cache") in out

    def test_summary_notes_missing_cache(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "CampaignRunner", InterruptingRunner)
        code = cli.main(["--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no cache configured" in out
