"""Sharded-run specs content-address into the campaign cache.

Repartitioning a world (shard count, cell size, partition seed, window)
changes what a task computes, so a :class:`~repro.shard.ShardPlan` or
:class:`~repro.shard.ShardScenarioSpec` embedded in a task config must
produce a different content-addressed key — recompose ⇒ cache miss.
"""

from __future__ import annotations

import dataclasses

from repro.campaign.cache import ResultCache
from repro.campaign.spec import TaskSpec, canonical_json, config_key
from repro.shard import ShardPlan, ShardScenarioSpec, WorkloadSpec


def _key(**config):
    return config_key(config, version="test")


class TestShardPlanKeys:
    def test_equal_plans_share_a_key(self):
        a = ShardPlan(n_shards=4, cell_size_m=60.0, partition_seed=3)
        b = ShardPlan(n_shards=4, cell_size_m=60.0, partition_seed=3)
        assert _key(plan=a) == _key(plan=b)

    def test_any_recompose_is_a_cache_miss(self):
        base = ShardPlan(n_shards=4, cell_size_m=60.0, partition_seed=3)
        variants = [
            dataclasses.replace(base, n_shards=2),
            dataclasses.replace(base, cell_size_m=80.0),
            dataclasses.replace(base, partition_seed=4),
            dataclasses.replace(base, window_s=0.002),
        ]
        keys = {_key(plan=p) for p in [base, *variants]}
        assert len(keys) == len(variants) + 1

    def test_plan_does_not_collide_with_equivalent_dict(self):
        plan = ShardPlan(n_shards=4)
        as_dict = dataclasses.asdict(plan)
        assert _key(plan=plan) != _key(plan=as_dict)
        assert "__dataclass__" in canonical_json(plan)

    def test_scenario_spec_changes_key_too(self):
        spec = ShardScenarioSpec(seed=7, router="flooding")
        rerouted = dataclasses.replace(spec, router="aodv")
        reworked = dataclasses.replace(
            spec, workload=WorkloadSpec(kind="local", rate_hz=2.0)
        )
        keys = {_key(world=s) for s in (spec, rerouted, reworked)}
        assert len(keys) == 3


class TestShardPlanInCache:
    def test_recomposed_plan_misses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        serial = ShardPlan(n_shards=1)
        sharded = ShardPlan(n_shards=4, cell_size_m=60.0)

        def task(plan):
            # Params stay JSON-able for storage; the *key* is derived from
            # the dataclass itself via canonical_json's dataclass tagging.
            return TaskSpec(
                campaign="shard-key",
                index=0,
                params=tuple(sorted(dataclasses.asdict(plan).items())),
                replicate=0,
                seed=9,
                key=config_key({"plan": plan, "seed": 9}, version="test"),
            )

        cache.put(task(serial), {"events_per_sec": 1000.0})
        assert cache.get(task(serial)) == {"events_per_sec": 1000.0}
        # Same seed, same campaign — but a different cut: must miss.
        assert cache.get(task(sharded)) is None
