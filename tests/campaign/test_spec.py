"""Spec expansion: ordering, seeds, filtering, content keys."""

import pytest

from repro.campaign import SweepSpec, canonical_json, config_key
from repro.errors import ConfigurationError


class TestExpansion:
    def test_grid_cross_product_times_replicates(self):
        spec = SweepSpec("t", grid={"a": (1, 2), "b": ("x", "y", "z")}, replicates=2)
        tasks = spec.tasks()
        assert len(tasks) == 2 * 3 * 2
        assert [t.index for t in tasks] == list(range(12))

    def test_point_order_independent_of_dict_insertion(self):
        one = SweepSpec("t", grid={"a": (1, 2), "b": (3, 4)}).tasks()
        two = SweepSpec("t", grid={"b": (3, 4), "a": (1, 2)}).tasks()
        assert [t.params for t in one] == [t.params for t in two]
        assert [t.key for t in one] == [t.key for t in two]

    def test_fixed_params_ride_along(self):
        spec = SweepSpec("t", grid={"a": (1,)}, fixed={"c": 9})
        assert spec.tasks()[0].config == {"a": 1, "c": 9}

    def test_where_prunes_points(self):
        spec = SweepSpec(
            "t", grid={"a": (1, 2, 3)}, where=lambda p: p["a"] != 2
        )
        assert [t.config["a"] for t in spec.tasks()] == [1, 3]

    def test_empty_expansion_rejected(self):
        spec = SweepSpec("t", grid={"a": (1,)}, where=lambda p: False)
        with pytest.raises(ConfigurationError):
            spec.tasks()

    def test_swept_and_fixed_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec("t", grid={"a": (1,)}, fixed={"a": 2})


class TestSeeds:
    def test_seeds_derive_from_point_content_not_position(self):
        """Adding a grid value must not perturb existing points' seeds."""
        small = SweepSpec("t", grid={"a": (1, 2)}, replicates=2, base_seed=5)
        large = SweepSpec("t", grid={"a": (0, 1, 2)}, replicates=2, base_seed=5)
        by_identity = {
            (t.params, t.replicate): t.seed for t in large.tasks()
        }
        for t in small.tasks():
            assert by_identity[(t.params, t.replicate)] == t.seed

    def test_replicates_get_distinct_seeds(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=4)
        seeds = [t.seed for t in spec.tasks()]
        assert len(set(seeds)) == 4

    def test_base_seed_changes_all_seeds(self):
        a = SweepSpec("t", grid={"a": (1,)}, base_seed=1).tasks()[0].seed
        b = SweepSpec("t", grid={"a": (1,)}, base_seed=2).tasks()[0].seed
        assert a != b

    def test_seed_params_pairs_treatment_arms(self):
        """Seeds ignore params outside seed_params, pairing arms on worlds."""
        spec = SweepSpec(
            "t",
            grid={"n": (10, 20), "algo": ("x", "y")},
            replicates=2,
            seed_params=("n",),
        )
        seeds = {}
        for t in spec.tasks():
            seeds.setdefault((t.config["n"], t.replicate), set()).add(t.seed)
        # Both algos share a seed at each (n, replicate)...
        assert all(len(s) == 1 for s in seeds.values())
        # ...but distinct (n, replicate) pairs do not.
        assert len({next(iter(s)) for s in seeds.values()}) == 4

    def test_explicit_seeds_are_literal_and_shared_across_points(self):
        spec = SweepSpec("t", grid={"a": (1, 2)}, seeds=(7, 13))
        tasks = spec.tasks()
        assert [t.seed for t in tasks if t.config["a"] == 1] == [7, 13]
        assert [t.seed for t in tasks if t.config["a"] == 2] == [7, 13]

    def test_unknown_seed_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec("t", grid={"a": (1,)}, seed_params=("nope",))


class TestContentKeys:
    def test_key_stable_for_equal_config(self):
        assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})

    def test_key_changes_with_any_field(self):
        base = SweepSpec("t", grid={"a": (1,)}, base_seed=3).tasks()[0].key
        assert SweepSpec("t", grid={"a": (2,)}, base_seed=3).tasks()[0].key != base
        assert SweepSpec("u", grid={"a": (1,)}, base_seed=3).tasks()[0].key != base
        assert SweepSpec("t", grid={"a": (1,)}, base_seed=4).tasks()[0].key != base

    def test_key_changes_with_version(self):
        cfg = {"a": 1}
        assert config_key(cfg, version="1.0.0") != config_key(cfg, version="1.0.1")

    def test_canonical_json_sorts_and_handles_sets(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        assert canonical_json({"s": {3, 1, 2}}) == '{"s":[1,2,3]}'

    def test_tasks_pickle(self):
        import pickle

        task = SweepSpec("t", grid={"a": (1,)}).tasks()[0]
        assert pickle.loads(pickle.dumps(task)) == task
