"""Runner semantics: parallel determinism, crash/exception/timeout recovery."""

import pytest

from repro.campaign import CampaignError, CampaignRunner, SweepSpec

from tests.campaign.taskfns import (
    affine_noise_task,
    always_raises_task,
    crash_once_task,
    flaky_exception_task,
    hang_task,
)


def _grid_spec(replicates=3):
    return SweepSpec(
        "runner-test",
        grid={"gain": (1.0, 2.0), "offset": (0.0, 0.5)},
        replicates=replicates,
        base_seed=42,
    )


def _index_spec(marker_dir, n=6, **fixed):
    return SweepSpec(
        "fault-test",
        grid={"i": tuple(range(n))},
        fixed={"marker_dir": str(marker_dir), **fixed},
        base_seed=1,
    )


class TestParallelDeterminism:
    def test_two_workers_match_serial(self):
        """The issue's determinism bar: workers=2 == workers=1, same spec."""
        spec = _grid_spec()
        serial = CampaignRunner(affine_noise_task, workers=1).run(spec)
        parallel = CampaignRunner(affine_noise_task, workers=2).run(spec)
        # Raw per-task results agree in spec order...
        assert serial.results() == parallel.results()
        # ...and so do the aggregated tables, bit for bit.
        assert serial.table(ci=True) == parallel.table(ci=True)
        assert serial.table(ci=True).render() == parallel.table(ci=True).render()

    def test_worker_count_does_not_leak_into_results(self):
        spec = _grid_spec(replicates=2)
        tables = [
            CampaignRunner(affine_noise_task, workers=w).run(spec).table(ci=True)
            for w in (1, 2, 4)
        ]
        assert tables[0] == tables[1] == tables[2]

    def test_outcomes_preserve_spec_order(self):
        spec = _grid_spec()
        result = CampaignRunner(affine_noise_task, workers=2).run(spec)
        assert [o.task.index for o in result.outcomes] == list(range(len(spec.tasks())))


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_campaign_completes(self, tmp_path):
        """A hard worker death (os._exit) breaks the pool; the runner heals
        it and retries the task, so the campaign still completes fully."""
        spec = _index_spec(tmp_path, crash_i=2)
        runner = CampaignRunner(crash_once_task, workers=2, max_retries=2)
        result = runner.run(spec)
        assert result.n_failed == 0
        assert [r["value"] for r in result.results()] == [float(i) for i in range(6)]
        crashed = result.outcomes[2]
        assert crashed.attempts >= 2  # the crash consumed at least one attempt
        assert (tmp_path / "crashed-2").exists()

    def test_crash_budget_exhaustion_raises(self, tmp_path):
        # The task crashes once, but zero retries are allowed, so the
        # campaign must report failure.  Neighbours in flight when the pool
        # broke may burn their only attempt too (documented semantics), so
        # assert on the guilty task, not an exact count.
        spec = _index_spec(tmp_path, n=3, crash_i=1)
        runner = CampaignRunner(crash_once_task, workers=2, max_retries=0)
        with pytest.raises(CampaignError, match="worker crash"):
            runner.run(spec)

    def test_exception_is_retried(self, tmp_path):
        spec = _index_spec(tmp_path, fail_i=3)
        result = CampaignRunner(flaky_exception_task, workers=2, max_retries=1).run(spec)
        assert result.n_failed == 0
        assert result.outcomes[3].attempts == 2

    def test_exception_retry_in_serial_mode_too(self, tmp_path):
        spec = _index_spec(tmp_path, fail_i=1)
        result = CampaignRunner(flaky_exception_task, workers=1, max_retries=1).run(spec)
        assert result.n_failed == 0
        assert result.outcomes[1].attempts == 2

    def test_on_error_skip_records_failures(self, tmp_path):
        spec = _index_spec(tmp_path, n=3)
        runner = CampaignRunner(
            always_raises_task, workers=1, max_retries=0, on_error="skip"
        )
        result = runner.run(spec)
        assert result.n_failed == 3
        assert all("unconditional failure" in o.error for o in result.failures())
        with pytest.raises(ValueError):
            result.table()  # nothing to aggregate


class TestTimeouts:
    def test_hung_task_is_killed_and_reported(self, tmp_path):
        spec = _index_spec(tmp_path, n=4, hang_i=1)
        runner = CampaignRunner(
            hang_task,
            workers=2,
            timeout_s=1.5,
            max_retries=0,
            on_error="skip",
        )
        result = runner.run(spec)
        assert result.wall_s < 60.0  # nowhere near the 600 s hang
        assert result.n_failed == 1
        assert "timeout" in result.outcomes[1].error
        # The healthy tasks all completed despite the pool rebuild.
        assert {o.task.config["i"] for o in result.outcomes if o.ok} == {0, 2, 3}


class TestValidation:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(affine_noise_task, on_error="explode")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(affine_noise_task, timeout_s=0.0)

    def test_non_dict_result_rejected(self):
        def bad(params, seed):
            return 42

        runner = CampaignRunner(bad, workers=1, max_retries=0, on_error="skip")
        result = runner.run(SweepSpec("t", grid={"a": (1,)}))
        assert result.n_failed == 1
        assert "dict" in result.outcomes[0].error
