"""The ISSUE acceptance bar: 24 tasks, 4 workers, >= 2.5x, warm rerun free.

The speedup task is wall-clock-bound (a fixed sleep standing in for the
blocking portion of a real experiment) rather than CPU-bound, so the test
measures the runner's concurrency itself and passes on single-core CI
machines where CPU-bound work cannot speed up at all.
"""

import pytest

from repro.campaign import CampaignRunner, ResultCache, SweepSpec

from tests.campaign.taskfns import sleep_task

SLEEP_S = 0.2
N_TASKS = 24


def _spec():
    return SweepSpec(
        "scaling-test",
        grid={"i": tuple(range(N_TASKS))},
        fixed={"sleep_s": SLEEP_S},
        base_seed=9,
    )


@pytest.mark.slow
def test_24_task_campaign_speedup_identical_table_and_free_warm_rerun(tmp_path):
    spec = _spec()

    serial = CampaignRunner(sleep_task, workers=1).run(spec)
    assert serial.n_executed == N_TASKS
    assert serial.wall_s >= N_TASKS * SLEEP_S

    cache = ResultCache(tmp_path / "cache")
    parallel = CampaignRunner(sleep_task, workers=4, cache=cache).run(spec)
    assert parallel.n_executed == N_TASKS

    speedup = serial.wall_s / parallel.wall_s
    assert speedup >= 2.5, f"4-worker speedup only {speedup:.2f}x"

    # Identical aggregated output, serial vs 4 workers.
    assert serial.table(ci=True) == parallel.table(ci=True)
    assert serial.table(ci=True).render() == parallel.table(ci=True).render()

    # Immediate warm-cache rerun: no task executes, output still identical.
    warm = CampaignRunner(sleep_task, workers=4, cache=cache).run(spec)
    assert warm.n_executed == 0
    assert warm.n_cached == N_TASKS
    assert warm.wall_s < N_TASKS * SLEEP_S / 4  # far under even parallel cost
    assert warm.table(ci=True) == serial.table(ci=True)
