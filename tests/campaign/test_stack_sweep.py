"""Campaign x registry integration: declarative stack sweeps and caching.

Two contracts from the layered-stack refactor:

* A sweep can grid over stack compositions by *name* (``router="aodv"``,
  ``mac="csma"``) and run end-to-end through the registry.
* Stack composition parameters — including a full
  :class:`~repro.net.registry.StackSpec` — content-address into the
  :class:`~repro.campaign.cache.ResultCache` key, so recomposing the stack
  is a cache miss, never a stale hit.
"""

from repro.campaign import CampaignRunner, ResultCache, SweepSpec
from repro.campaign.spec import canonical_json, config_key
from repro.net.registry import StackSpec

from tests.campaign.taskfns import stack_sweep_task


def _spec(routers, macs, replicates=1):
    return SweepSpec(
        "stack-sweep",
        grid={"router": list(routers), "mac": list(macs)},
        fixed={"n_nodes": 5, "n_messages": 6},
        replicates=replicates,
        base_seed=21,
    )


class TestDeclarativeSweep:
    def test_sweep_over_router_and_mac_names(self, tmp_path):
        spec = _spec(routers=("flooding", "gossip", "aodv"), macs=("csma", "ideal"))
        runner = CampaignRunner(stack_sweep_task, cache=ResultCache(tmp_path / "c"))
        result = runner.run(spec)
        assert result.n_tasks == 6
        rows = result.results()
        assert len(rows) == 6
        for row in rows:
            assert 0.0 <= row["delivery_ratio"] <= 1.0
            assert row["tx_attempts"] > 0
        # Guard against vacuous passes: on a 5-node line at 50 m spacing
        # something must actually arrive under at least one composition.
        assert any(row["delivery_ratio"] > 0.0 for row in rows)

    def test_compositions_produce_distinct_runs(self, tmp_path):
        spec = _spec(routers=("flooding", "gossip"), macs=("csma",))
        runner = CampaignRunner(stack_sweep_task, cache=ResultCache(tmp_path / "c"))
        result = runner.run(spec)
        prints = {row["fingerprint"] for row in result.results()}
        assert len(prints) == 2  # different routers -> different traces

    def test_rerun_is_fully_cached(self, tmp_path):
        spec = _spec(routers=("flooding",), macs=("csma", "ideal"))
        cache = ResultCache(tmp_path / "c")
        cold = CampaignRunner(stack_sweep_task, cache=cache).run(spec)
        warm = CampaignRunner(stack_sweep_task, cache=cache).run(spec)
        assert warm.n_executed == 0
        assert warm.results() == cold.results()


class TestCacheMissOnRecompose:
    def test_router_name_feeds_cache_key(self):
        k_flood = config_key({"router": "flooding", "mac": "csma"})
        k_aodv = config_key({"router": "aodv", "mac": "csma"})
        assert k_flood != k_aodv

    def test_stack_spec_hashes_into_key(self):
        base = StackSpec(router="aodv", mac="csma")
        same = StackSpec(router="aodv", mac="csma")
        other_mac = StackSpec(router="aodv", mac="ideal")
        other_params = StackSpec(
            router="aodv", mac="csma", router_params={"x": 1}
        )
        assert config_key({"stack": base}) == config_key({"stack": same})
        assert config_key({"stack": base}) != config_key({"stack": other_mac})
        assert config_key({"stack": base}) != config_key({"stack": other_params})

    def test_spec_does_not_collide_with_equivalent_dict(self):
        spec = StackSpec(router="aodv")
        assert config_key({"stack": spec}) != config_key({"stack": spec.as_config()})

    def test_canonical_json_is_stable(self):
        a = canonical_json(StackSpec(router="aodv", router_params={"b": 2, "a": 1}))
        b = canonical_json(StackSpec(router="aodv", router_params={"a": 1, "b": 2}))
        assert a == b

    def test_recompose_reexecutes_tasks(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        csma = _spec(routers=("flooding",), macs=("csma",))
        ideal = _spec(routers=("flooding",), macs=("ideal",))
        CampaignRunner(stack_sweep_task, cache=cache).run(csma)
        recomposed = CampaignRunner(stack_sweep_task, cache=cache).run(ideal)
        assert recomposed.n_cached == 0
        assert recomposed.n_executed == recomposed.n_tasks
