"""Aggregation: grouping, CI columns, passthrough, NaN handling."""

import math

import pytest

from repro.campaign import CampaignRunner, SweepSpec, aggregate
from repro.campaign.runner import CampaignResult, TaskOutcome
from repro.util.stats import mean_confidence_interval

from tests.campaign.taskfns import affine_noise_task


def _result_from(spec, metric_rows):
    """Hand-build a CampaignResult: metric_rows[i] is task i's result dict."""
    tasks = spec.tasks()
    outcomes = [
        TaskOutcome(task, row, False, 1, 0.0)
        for task, row in zip(tasks, metric_rows)
    ]
    return CampaignResult(spec, outcomes, 0.0, 1)


class TestAggregate:
    def test_one_row_per_sweep_point_mean_over_replicates(self):
        spec = SweepSpec("t", grid={"a": (1, 2)}, replicates=2)
        result = _result_from(
            spec, [{"m": 1.0}, {"m": 3.0}, {"m": 10.0}, {"m": 20.0}]
        )
        table = aggregate(result, metrics=["m"])
        assert table.columns == ["a", "m"]
        assert table.column("m") == [2.0, 15.0]

    def test_ci_columns_match_stats_helper(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=3)
        values = [1.0, 2.0, 4.0]
        result = _result_from(spec, [{"m": v} for v in values])
        table = aggregate(result, metrics=["m"], ci=True)
        mean, half = mean_confidence_interval(values)
        row = table.to_dicts()[0]
        assert row["m"] == pytest.approx(mean)
        assert row["m_ci95"] == pytest.approx(half)
        assert row["n"] == 3

    def test_constant_non_float_passes_through(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=2)
        result = _result_from(
            spec,
            [{"label": "greedy", "flag": True}, {"label": "greedy", "flag": True}],
        )
        table = aggregate(result, metrics=["label", "flag"])
        row = table.to_dicts()[0]
        assert row["label"] == "greedy"
        assert row["flag"] is True

    def test_varying_bools_average_to_a_rate(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=4)
        result = _result_from(spec, [{"ok": v} for v in (True, True, True, False)])
        assert aggregate(result, metrics=["ok"]).column("ok") == [0.75]

    def test_nan_replicates_are_omitted_not_poisonous(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=3)
        result = _result_from(
            spec, [{"m": 2.0}, {"m": math.nan}, {"m": 4.0}]
        )
        assert aggregate(result, metrics=["m"]).column("m") == [3.0]

    def test_all_nan_stays_nan(self):
        spec = SweepSpec("t", grid={"a": (1,)}, replicates=2)
        result = _result_from(spec, [{"m": math.nan}, {"m": math.nan}])
        assert math.isnan(aggregate(result, metrics=["m"]).column("m")[0])

    def test_default_metrics_are_numeric_keys_in_order(self):
        spec = SweepSpec("t", grid={"a": (1,)})
        result = _result_from(spec, [{"x": 1.0, "name": "s", "y": 2}])
        table = aggregate(result)
        assert table.columns == ["a", "x", "y"]

    def test_string_metrics_must_be_explicit(self):
        spec = SweepSpec("t", grid={"a": (1,)})
        result = _result_from(spec, [{"fingerprint": "abc", "m": 1.0}])
        table = aggregate(result, metrics=["m", "fingerprint"])
        assert table.to_dicts()[0]["fingerprint"] == "abc"

    def test_param_cols_order_respected(self):
        spec = SweepSpec("t", grid={"a": (1,), "b": (2,)})
        result = _result_from(spec, [{"m": 1.0}])
        table = aggregate(result, metrics=["m"], param_cols=["b", "a"])
        assert table.columns == ["b", "a", "m"]

    def test_end_to_end_through_runner(self):
        spec = SweepSpec(
            "t", grid={"gain": (1.0, 2.0)}, fixed={"offset": 1.0}, replicates=3
        )
        table = CampaignRunner(affine_noise_task).run(spec).table(ci=True)
        assert len(table) == 2
        assert "value_ci95" in table.columns
