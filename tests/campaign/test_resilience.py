"""Runner resilience additions: retry backoff pacing and interrupt recovery."""

import pytest

from repro.campaign import (
    CampaignInterrupted,
    CampaignRunner,
    ResultCache,
    SweepSpec,
)
from repro.util.backoff import BackoffPolicy

from tests.campaign.taskfns import (
    affine_noise_task,
    flaky_exception_task,
    interrupt_task,
)


def _index_spec(marker_dir, n=6, name="resilience-test", **fixed):
    return SweepSpec(
        name,
        grid={"i": tuple(range(n))},
        fixed={"marker_dir": str(marker_dir), **fixed},
        base_seed=1,
    )


FAST = BackoffPolicy(base_s=0.01, factor=2.0, max_s=0.05, jitter=0.5)


class TestRetryBackoff:
    def test_delays_deterministic_under_seed(self, tmp_path):
        """Same (seed, task, attempt) -> same delay, across runner instances
        and regardless of worker count — the determinism bar."""
        spec = _index_spec(tmp_path)
        tasks = spec.tasks()
        delays = [
            [
                CampaignRunner(
                    affine_noise_task, workers=w, backoff_seed=9
                )._retry_delay_s(t, k)
                for t in tasks
                for k in (1, 2, 3)
            ]
            for w in (1, 2, 4)
        ]
        assert delays[0] == delays[1] == delays[2]

    def test_delays_decorrelate_by_task_and_seed(self, tmp_path):
        spec = _index_spec(tmp_path)
        a, b = spec.tasks()[:2]
        runner = CampaignRunner(affine_noise_task, backoff_seed=9)
        other = CampaignRunner(affine_noise_task, backoff_seed=10)
        assert runner._retry_delay_s(a, 1) != runner._retry_delay_s(b, 1)
        assert runner._retry_delay_s(a, 1) != other._retry_delay_s(a, 1)

    def test_delay_envelope_capped(self, tmp_path):
        task = _index_spec(tmp_path).tasks()[0]
        runner = CampaignRunner(
            affine_noise_task,
            backoff=BackoffPolicy(base_s=0.5, factor=10.0, max_s=2.0, jitter=0.5),
        )
        for attempt in range(1, 8):
            assert runner._retry_delay_s(task, attempt) <= 2.0

    def test_backoff_none_restores_immediate_retries(self, tmp_path):
        task = _index_spec(tmp_path).tasks()[0]
        runner = CampaignRunner(affine_noise_task, backoff=None)
        assert runner._retry_delay_s(task, 1) == 0.0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retried_campaign_still_completes(self, tmp_path, workers):
        spec = _index_spec(tmp_path, fail_i=2)
        result = CampaignRunner(
            flaky_exception_task, workers=workers, max_retries=1, backoff=FAST
        ).run(spec)
        assert result.n_failed == 0
        assert result.outcomes[2].attempts == 2

    def test_backoff_does_not_change_results(self, tmp_path):
        spec = _index_spec(tmp_path, fail_i=1)
        paced = CampaignRunner(
            flaky_exception_task, workers=2, max_retries=1, backoff=FAST
        ).run(spec)
        (tmp_path / "raised-1").unlink()  # re-arm the transient failure
        immediate = CampaignRunner(
            flaky_exception_task, workers=2, max_retries=1, backoff=None
        ).run(spec)
        assert paced.results() == immediate.results()


class TestInterruptRecovery:
    def test_interrupt_raises_with_partial_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _index_spec(tmp_path, interrupt_i=3)
        runner = CampaignRunner(interrupt_task, cache=cache, workers=1)
        with pytest.raises(CampaignInterrupted) as err:
            runner.run(spec)
        partial = err.value.partial
        assert partial is not None
        # Tasks 0-2 settled before the interrupt; each was flushed to disk.
        assert partial.n_tasks == 3
        assert [o.task.config["i"] for o in partial.outcomes] == [0, 1, 2]
        assert len(cache) == 3

    def test_resume_after_interrupt_runs_only_the_gap(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _index_spec(tmp_path, interrupt_i=3)
        with pytest.raises(CampaignInterrupted):
            CampaignRunner(interrupt_task, cache=cache, workers=1).run(spec)
        # The "operator" re-runs without the interrupt: cache hits cover
        # everything that settled, only the rest executes.
        clean = _index_spec(tmp_path, interrupt_i=3)
        resumed = CampaignRunner(affine_noise_task_like, cache=cache).run(clean)
        assert resumed.n_cached == 3
        assert resumed.n_executed == 3
        assert resumed.n_failed == 0

    def test_interrupt_without_cache_still_reports_partial(self, tmp_path):
        spec = _index_spec(tmp_path, interrupt_i=2)
        with pytest.raises(CampaignInterrupted) as err:
            CampaignRunner(interrupt_task, workers=1).run(spec)
        assert err.value.partial.n_tasks == 2


def affine_noise_task_like(params, seed):
    """Same metric shape as interrupt_task, minus the interrupt."""
    return {"value": float(params["i"])}
