"""Cache correctness: warm == cold, zero re-execution, invalidation."""

import json
import math
import time

from repro.campaign import CampaignRunner, ResultCache, SweepSpec

from tests.campaign.taskfns import counting_task


def _spec(marker_dir, gains=(1.0, 2.0, 3.0), replicates=2):
    return SweepSpec(
        "cache-test",
        grid={"gain": gains},
        fixed={"offset": 0.5, "marker_dir": str(marker_dir)},
        replicates=replicates,
        base_seed=11,
    )


def _executions(marker_dir):
    return len(list(marker_dir.glob("*.ran")))


class TestWarmCache:
    def test_warm_rerun_identical_and_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        spec = _spec(marker)
        runner = CampaignRunner(counting_task, cache=cache)

        cold = runner.run(spec)
        executed_cold = _executions(marker)
        assert executed_cold == cold.n_tasks == 6
        assert cold.n_cached == 0

        warm = runner.run(spec)
        # Zero executions: not one marker file was added.
        assert _executions(marker) == executed_cold
        assert warm.n_cached == warm.n_tasks and warm.n_executed == 0
        # And results identical to the cold run, raw and aggregated.
        assert warm.results() == cold.results()
        assert warm.table(ci=True) == cold.table(ci=True)
        assert warm.table(ci=True).render() == cold.table(ci=True).render()

    def test_fresh_runner_instance_shares_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        marker = tmp_path / "markers"
        spec = _spec(marker)
        cold = CampaignRunner(counting_task, cache=ResultCache(cache_dir)).run(spec)
        warm = CampaignRunner(counting_task, cache=ResultCache(cache_dir)).run(spec)
        assert warm.n_executed == 0
        assert warm.table() == cold.table()

    def test_interrupted_campaign_resumes(self, tmp_path):
        """A partial cache (as left by an interrupt) re-runs only the gap."""
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        spec = _spec(marker)
        tasks = spec.tasks()
        runner = CampaignRunner(counting_task, cache=cache)
        runner.run(spec)
        # Simulate dying before the last two tasks were stored.
        for task in tasks[-2:]:
            assert cache.invalidate(task)
        before = _executions(marker)
        resumed = runner.run(spec)
        assert resumed.n_cached == len(tasks) - 2
        assert resumed.n_executed == 2
        assert _executions(marker) == before + 2


class TestInvalidation:
    def test_any_config_field_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        runner = CampaignRunner(counting_task, cache=cache)
        runner.run(_spec(marker))
        before = _executions(marker)

        # A changed grid value is a different config: its cells re-execute,
        # the unchanged ones stay cached.
        shifted = _spec(marker, gains=(1.0, 2.0, 4.0))
        result = runner.run(shifted)
        assert result.n_cached == 4  # gains 1.0 and 2.0, two replicates each
        assert result.n_executed == 2
        assert _executions(marker) == before + 2

    def test_fixed_param_change_invalidates_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        runner = CampaignRunner(counting_task, cache=cache)
        runner.run(_spec(marker))
        before = _executions(marker)
        other_marker = tmp_path / "markers2"  # marker_dir is itself a config field
        result = runner.run(_spec(other_marker))
        assert result.n_cached == 0
        assert _executions(marker) == before
        assert _executions(other_marker) == result.n_tasks

    def test_version_keys_the_cache(self, tmp_path, monkeypatch):
        import repro.campaign.spec as spec_mod

        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        runner = CampaignRunner(counting_task, cache=cache)
        runner.run(_spec(marker))
        before = _executions(marker)
        monkeypatch.setattr(spec_mod, "__version__", "999.0.0")
        result = runner.run(_spec(marker))
        assert result.n_cached == 0
        assert _executions(marker) == before + result.n_tasks


class TestRobustness:
    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        spec = _spec(marker)
        runner = CampaignRunner(counting_task, cache=cache)
        runner.run(spec)
        victim = cache.path_for(spec.tasks()[0].key)
        victim.write_text("{ truncated", encoding="utf-8")
        result = runner.run(spec)
        assert result.n_executed == 1  # only the corrupted entry re-ran
        assert not victim.read_text().startswith("{ truncated")

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        spec = _spec(marker)
        task = spec.tasks()[0]
        CampaignRunner(counting_task, cache=cache).run(spec)
        path = cache.path_for(task.key)
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(task) is None

    def test_nan_survives_the_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = _spec(tmp_path / "m").tasks()[0]
        cache.put(task, {"metric": math.nan, "other": 1.5})
        back = cache.get(task)
        assert back["other"] == 1.5
        assert math.isnan(back["metric"])

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        marker = tmp_path / "markers"
        CampaignRunner(counting_task, cache=cache).run(_spec(marker))
        assert len(cache) == 6
        assert cache.clear() == 6
        assert len(cache) == 0


class TestStaleLookup:
    """get_stale: the degraded-mode raw-key read with age reporting."""

    def _primed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = _spec(tmp_path / "m").tasks()[0]
        cache.put(task, {"metric": 7.0})
        return cache, task

    def test_fresh_entry_has_small_age(self, tmp_path):
        cache, task = self._primed(tmp_path)
        hit = cache.get_stale(task.key, max_age_s=60.0)
        assert hit is not None
        result, age = hit
        assert result == {"metric": 7.0}
        assert 0.0 <= age < 5.0

    def test_entry_older_than_budget_is_a_miss(self, tmp_path):
        cache, task = self._primed(tmp_path)
        path = cache.path_for(task.key)
        payload = json.loads(path.read_text())
        payload["stored_at"] = time.time() - 120.0
        path.write_text(json.dumps(payload))
        assert cache.get_stale(task.key, max_age_s=60.0) is None
        # But a looser budget (or none) still reads it, with honest age.
        result, age = cache.get_stale(task.key, max_age_s=None)
        assert result == {"metric": 7.0}
        assert age > 100.0

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get_stale("0" * 64, max_age_s=None) is None

    def test_legacy_entry_without_timestamp(self, tmp_path):
        """Pre-timestamp entries: readable unbounded, rejected by any
        finite budget (their age is unknown, reported as inf)."""
        cache, task = self._primed(tmp_path)
        path = cache.path_for(task.key)
        payload = json.loads(path.read_text())
        del payload["stored_at"]
        path.write_text(json.dumps(payload))
        assert cache.get_stale(task.key, max_age_s=1e9) is None
        result, age = cache.get_stale(task.key, max_age_s=None)
        assert result == {"metric": 7.0}
        assert age == math.inf

    def test_corrupt_entry_is_discarded(self, tmp_path):
        cache, task = self._primed(tmp_path)
        path = cache.path_for(task.key)
        path.write_text("{ truncated")
        assert cache.get_stale(task.key, max_age_s=None) is None
        assert not path.exists()

    def test_existing_entries_remain_readable_via_get(self, tmp_path):
        """The timestamp addition must not invalidate normal reads."""
        cache, task = self._primed(tmp_path)
        assert cache.get(task) == {"metric": 7.0}
