"""Tests for campaign run telemetry: per-task accounting and table.meta."""

import json
import math

from tests.campaign.taskfns import affine_noise_task, flaky_exception_task

from repro.campaign import CampaignRunner, ResultCache, SweepSpec


def _spec(**overrides):
    base = dict(
        name="telemetry-spec",
        grid={"gain": (1.0, 2.0)},
        fixed={"offset": 3.0},
        replicates=2,
        base_seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestTaskTelemetry:
    def test_executed_tasks_carry_worker_accounting(self):
        result = CampaignRunner(affine_noise_task).run(_spec())
        for outcome in result.outcomes:
            assert outcome.telemetry is not None
            assert outcome.telemetry["wall_s"] >= 0.0
            rss = outcome.telemetry["peak_rss_kb"]
            assert rss > 0 or math.isnan(rss)
            assert outcome.retries == 0

    def test_parallel_tasks_carry_worker_accounting(self):
        result = CampaignRunner(affine_noise_task, workers=2).run(_spec())
        assert all(o.telemetry is not None for o in result.outcomes)
        assert all(o.telemetry["wall_s"] >= 0.0 for o in result.outcomes)

    def test_cache_hits_have_no_worker_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = CampaignRunner(affine_noise_task, cache=cache)
        runner.run(_spec())
        warm = runner.run(_spec())
        assert warm.n_cached == warm.n_tasks
        assert all(o.telemetry is None for o in warm.outcomes)

    def test_retries_surface_in_telemetry(self, tmp_path):
        spec = _spec(
            name="retry-spec",
            grid={"i": (0, 1)},
            fixed={"fail_i": 1, "marker_dir": str(tmp_path)},
            replicates=1,
        )
        result = CampaignRunner(flaky_exception_task).run(spec)
        telemetry = result.telemetry()
        assert telemetry["n_retried"] == 1
        retried = [t for t in telemetry["tasks"] if t["retries"] > 0]
        assert len(retried) == 1
        assert retried[0]["attempts"] == 2


class TestCampaignTelemetry:
    def test_aggregate_shape(self):
        result = CampaignRunner(affine_noise_task, workers=2).run(_spec())
        telemetry = result.telemetry()
        assert telemetry["campaign"] == "telemetry-spec"
        assert telemetry["workers"] == 2
        assert telemetry["wall_s"] > 0.0
        assert telemetry["n_tasks"] == 4
        assert telemetry["n_executed"] == 4
        assert telemetry["n_cached"] == 0
        assert len(telemetry["tasks"]) == 4
        for entry in telemetry["tasks"]:
            assert entry["ok"] is True
            assert entry["wall_s"] >= 0.0
            assert "worker_wall_s" in entry
            assert "peak_rss_kb" in entry
            assert "seed" in entry

    def test_table_meta_carries_telemetry_and_serializes(self, tmp_path):
        result = CampaignRunner(affine_noise_task).run(_spec())
        table = result.table("t", param_cols=["gain"], metrics=["value"])
        assert table.meta["telemetry"]["n_tasks"] == 4
        out = tmp_path / "table.json"
        table.to_json(str(out))
        document = json.loads(out.read_text())
        assert document["meta"]["telemetry"]["campaign"] == "telemetry-spec"
        assert len(document["meta"]["telemetry"]["tasks"]) == 4

    def test_meta_excluded_from_equality(self):
        a = CampaignRunner(affine_noise_task).run(_spec())
        b = CampaignRunner(affine_noise_task, workers=2).run(_spec())
        ta = a.table("t", param_cols=["gain"], metrics=["value"])
        tb = b.table("t", param_cols=["gain"], metrics=["value"])
        # Telemetry differs (wall times, worker counts) but the tables —
        # the determinism contract — compare equal.
        assert ta.meta != tb.meta
        assert ta == tb

    def test_cached_tasks_marked_in_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignRunner(affine_noise_task, cache=cache).run(_spec())
        warm = CampaignRunner(affine_noise_task, cache=cache).run(_spec())
        telemetry = warm.telemetry()
        assert telemetry["n_cached"] == 4
        assert all(t["cached"] for t in telemetry["tasks"])
