"""Module-level task functions for campaign tests.

Worker processes reach task functions by pickling them *by reference*
(module + qualname), so every function the runner executes in a pool must
live at module level — hence this helper module rather than closures inside
the tests.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict

import numpy as np


def affine_noise_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Deterministic function of (params, seed): value + seeded noise."""
    rng = np.random.default_rng(seed)
    noise = float(rng.normal())
    return {
        "value": params["gain"] * params["offset"] + noise,
        "noise": noise,
    }


def counting_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Like affine_noise_task, but leaves a per-execution marker file.

    Execution counting must survive process boundaries, so it is done on
    the filesystem: each *execution* (not cache hit) touches one file named
    by the task's identity in ``params["marker_dir"]``.
    """
    marker_dir = Path(params["marker_dir"])
    marker_dir.mkdir(parents=True, exist_ok=True)
    stamp = f"{params['gain']}-{params['offset']}-{seed}-{time.monotonic_ns()}"
    (marker_dir / f"{stamp}.ran").touch()
    rng = np.random.default_rng(seed)
    return {"value": params["gain"] * params["offset"] + float(rng.normal())}


def crash_once_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hard-kills its worker process on first execution of the marked index.

    ``os._exit`` (not an exception) models a real worker death — segfault,
    OOM-kill — which surfaces to the runner as a broken process pool.  The
    marker file makes the crash one-shot so a retry succeeds.
    """
    if params["i"] == params.get("crash_i", -1):
        marker = Path(params["marker_dir"]) / f"crashed-{params['i']}"
        if not marker.exists():
            marker.write_bytes(b"x")
            os._exit(17)
    return {"value": float(params["i"])}


def flaky_exception_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Raises (cleanly) on first execution of the marked index."""
    if params["i"] == params.get("fail_i", -1):
        marker = Path(params["marker_dir"]) / f"raised-{params['i']}"
        if not marker.exists():
            marker.write_bytes(b"x")
            raise ValueError("transient task failure")
    return {"value": float(params["i"])}


def always_raises_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    raise RuntimeError("unconditional failure")


def hang_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hangs far past any test timeout on the marked index."""
    if params["i"] == params.get("hang_i", -1):
        time.sleep(600.0)
    return {"value": float(params["i"])}


def sleep_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Sleeps a fixed budget — wall-clock-bound work for speedup tests."""
    time.sleep(params["sleep_s"])
    return {"value": float(params["i"]) + float(seed % 97)}
