"""Module-level task functions for campaign tests.

Worker processes reach task functions by pickling them *by reference*
(module + qualname), so every function the runner executes in a pool must
live at module level — hence this helper module rather than closures inside
the tests.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict

import numpy as np


def affine_noise_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Deterministic function of (params, seed): value + seeded noise."""
    rng = np.random.default_rng(seed)
    noise = float(rng.normal())
    return {
        "value": params["gain"] * params["offset"] + noise,
        "noise": noise,
    }


def counting_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Like affine_noise_task, but leaves a per-execution marker file.

    Execution counting must survive process boundaries, so it is done on
    the filesystem: each *execution* (not cache hit) touches one file named
    by the task's identity in ``params["marker_dir"]``.
    """
    marker_dir = Path(params["marker_dir"])
    marker_dir.mkdir(parents=True, exist_ok=True)
    stamp = f"{params['gain']}-{params['offset']}-{seed}-{time.monotonic_ns()}"
    (marker_dir / f"{stamp}.ran").touch()
    rng = np.random.default_rng(seed)
    return {"value": params["gain"] * params["offset"] + float(rng.normal())}


def crash_once_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hard-kills its worker process on first execution of the marked index.

    ``os._exit`` (not an exception) models a real worker death — segfault,
    OOM-kill — which surfaces to the runner as a broken process pool.  The
    marker file makes the crash one-shot so a retry succeeds.
    """
    if params["i"] == params.get("crash_i", -1):
        marker = Path(params["marker_dir"]) / f"crashed-{params['i']}"
        if not marker.exists():
            marker.write_bytes(b"x")
            os._exit(17)
    return {"value": float(params["i"])}


def flaky_exception_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Raises (cleanly) on first execution of the marked index."""
    if params["i"] == params.get("fail_i", -1):
        marker = Path(params["marker_dir"]) / f"raised-{params['i']}"
        if not marker.exists():
            marker.write_bytes(b"x")
            raise ValueError("transient task failure")
    return {"value": float(params["i"])}


def always_raises_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    raise RuntimeError("unconditional failure")


def hang_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Hangs far past any test timeout on the marked index."""
    if params["i"] == params.get("hang_i", -1):
        time.sleep(600.0)
    return {"value": float(params["i"])}


def interrupt_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Raises KeyboardInterrupt on the marked index (a Ctrl-C stand-in).

    Serial mode only: in a pool the interrupt would surface as a plain
    task exception, not as the operator pressing Ctrl-C in the runner.
    """
    if params["i"] == params.get("interrupt_i", -1):
        raise KeyboardInterrupt
    return {"value": float(params["i"])}


def sleep_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Sleeps a fixed budget — wall-clock-bound work for speedup tests."""
    time.sleep(params["sleep_s"])
    return {"value": float(params["i"]) + float(seed % 97)}


def stack_sweep_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run a tiny line network composed entirely from registry names.

    The sweep grids over ``router``/``mac`` strings; this function proves
    the declarative composition path end-to-end: names -> registry ->
    StackSpec -> live stack -> delivery metrics.
    """
    from repro.net.registry import StackSpec, compose
    from repro.sim import Simulator
    from repro.util.geometry import Point

    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    spec = StackSpec(
        router=params["router"],
        mac=params["mac"],
        channel="log_distance",
        transport="basic",
        router_params=dict(params.get("router_params", {})),
    )
    composed = compose(sim, spec)
    net = composed.network
    n = int(params.get("n_nodes", 5))
    for i in range(n):
        net.create_node(i + 1, Point(i * 50.0, 0.0))
    composed.attach_all(sorted(net.nodes))
    for k in range(int(params.get("n_messages", 6))):
        src = 1 + (k % n)
        dst = 1 + ((k + 2) % n)
        sim.call_at(
            1.0 + 0.5 * k,
            lambda s=src, d=dst, i=k: composed.transport.send(s, d, payload=i),
        )
    sim.run(until=30.0)
    ratio = composed.transport.delivery_ratio()
    return {
        "delivery_ratio": ratio if ratio == ratio else 0.0,  # NaN-guard
        "tx_attempts": sim.metrics.counter("net.tx_attempts"),
        "fingerprint": sim.trace.fingerprint(),
    }
