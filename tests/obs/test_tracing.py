"""Causal packet tracing: determinism, phase-sum invariant, event coverage.

The two load-bearing guarantees:

* **Non-perturbation** — tracing disabled leaves the whole trace
  fingerprint bit-identical to a never-traced run; tracing enabled leaves
  every non-``pkt.*`` record bit-identical (the tracer only ever adds
  records, never schedules events or draws RNG).
* **Exact attribution** — for every delivered packet with a complete
  chain, the five latency phases sum to the measured end-to-end delay.
"""

import pytest

from repro.faults import FaultInjector
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter, SprayAndWaitRouter
from repro.net.transport import MessageService, ReliableMessageService
from repro.obs.analyze import PHASES, analyze_trace
from repro.obs.tracing import TRACE_CATEGORIES, TRACE_HEADER
from repro.sim.kernel import Simulator
from repro.util.geometry import Point


def churn_aodv_scenario(seed: int, *, traced: bool):
    """The acceptance scenario: 30-node AODV + reliable transport under
    node churn, Poisson unicast workload."""
    sim = Simulator(seed=seed)
    if traced:
        sim.enable_packet_tracing()
    net = Network(
        sim, Channel(shadowing_sigma_db=0.0, fading_sigma_db=2.0, seed=seed)
    )
    topo_rng = sim.rng.get("topo")
    for i in range(1, 31):
        net.create_node(
            i,
            Point(
                float(topo_rng.uniform(0, 300.0)),
                float(topo_rng.uniform(0, 300.0)),
            ),
        )
    router = AodvRouter(net)
    router.attach_all(range(1, 31))
    service = ReliableMessageService(router)
    faults = FaultInjector(net)
    faults.node_churn(
        mtbf_s=50.0, mean_downtime_s=6.0, start_s=5.0, duration_s=150.0
    )
    workload = sim.rng.get("workload")

    def tick():
        if sim.now > 110.0:
            return
        a, b = workload.choice(range(1, 31), size=2, replace=False)
        service.send(int(a), int(b))
        sim.call_in(float(workload.exponential(2.5)), tick)

    sim.call_in(1.0, tick)
    sim.run(until=150.0)
    return sim, service


class TestNonPerturbation:
    def test_disabled_tracer_is_bit_identical_to_untraced(self):
        sim_plain, svc_plain = churn_aodv_scenario(9, traced=False)
        sim_off = Simulator(seed=9)
        tracer = sim_off.enable_packet_tracing()
        tracer.enabled = False
        # Rebuild the same scenario on the tracer-disabled simulator.
        net = Network(
            sim_off, Channel(shadowing_sigma_db=0.0, fading_sigma_db=2.0, seed=9)
        )
        topo_rng = sim_off.rng.get("topo")
        for i in range(1, 31):
            net.create_node(
                i,
                Point(
                    float(topo_rng.uniform(0, 300.0)),
                    float(topo_rng.uniform(0, 300.0)),
                ),
            )
        router = AodvRouter(net)
        router.attach_all(range(1, 31))
        service = ReliableMessageService(router)
        faults = FaultInjector(net)
        faults.node_churn(
            mtbf_s=50.0, mean_downtime_s=6.0, start_s=5.0, duration_s=150.0
        )
        workload = sim_off.rng.get("workload")

        def tick():
            if sim_off.now > 110.0:
                return
            a, b = workload.choice(range(1, 31), size=2, replace=False)
            service.send(int(a), int(b))
            sim_off.call_in(float(workload.exponential(2.5)), tick)

        sim_off.call_in(1.0, tick)
        sim_off.run(until=150.0)

        assert sim_off.trace.fingerprint() == sim_plain.trace.fingerprint()
        assert service.fate_counts() == svc_plain.fate_counts()

    def test_enabled_tracer_only_adds_pkt_records(self):
        sim_traced, svc_traced = churn_aodv_scenario(9, traced=True)
        sim_plain, svc_plain = churn_aodv_scenario(9, traced=False)
        non_pkt = sorted(
            {r.category for r in sim_plain.trace.records}
            | {r.category for r in sim_traced.trace.records}
            - set(TRACE_CATEGORIES)
        )
        assert sim_traced.trace.fingerprint(
            categories=non_pkt
        ) == sim_plain.trace.fingerprint(categories=non_pkt)
        # Identical behaviour, identical application outcomes.
        assert svc_traced.fate_counts() == svc_plain.fate_counts()
        # And the traced run really produced pkt.* records.
        assert any(
            r.category in TRACE_CATEGORIES for r in sim_traced.trace.records
        )
        assert not any(
            r.category in TRACE_CATEGORIES for r in sim_plain.trace.records
        )

    def test_traced_run_is_reproducible(self):
        sim_a, _ = churn_aodv_scenario(13, traced=True)
        sim_b, _ = churn_aodv_scenario(13, traced=True)
        assert sim_a.trace.fingerprint() == sim_b.trace.fingerprint()


class TestPhaseSumInvariant:
    def test_phases_sum_to_end_to_end_latency_under_churn(self):
        sim, service = churn_aodv_scenario(42, traced=True)
        assert service.delivery_ratio() > 0  # scenario actually delivered
        analysis = analyze_trace(sim.trace.iter_dicts())

        checked = 0
        for pt in analysis.packets.values():
            for delivery in pt.deliveries:
                if not delivery.complete:
                    continue
                checked += 1
                total = sum(delivery.phases.values())
                assert total == pytest.approx(
                    delivery.latency_s, rel=1e-9, abs=1e-12
                )
                for name in PHASES:
                    assert delivery.phases[name] >= -1e-12
        assert checked > 0

        # Every delivered DATA packet decomposed with a complete chain.
        data_deliveries = [
            d
            for pt in analysis.packets.values()
            if pt.kind == "data"
            for d in pt.deliveries
        ]
        assert data_deliveries
        assert all(d.complete for d in data_deliveries)

    def test_critical_path_names_slowest_hop(self):
        sim, _ = churn_aodv_scenario(42, traced=True)
        analysis = analyze_trace(sim.trace.iter_dicts())
        critical = analysis.critical_delivery()
        assert critical is not None
        pt, delivery = critical
        assert delivery.chain, "critical path must be nonempty"
        slowest = delivery.slowest_hop()
        assert slowest is not None
        assert slowest.total_s == max(h.total_s for h in delivery.chain)
        # The slowest hop is on the chain and bounded by the whole delay.
        assert slowest.total_s <= delivery.latency_s + 1e-12


class TestEventCoverage:
    def line(self, n=6, seed=3, spacing=30.0):
        sim = Simulator(seed=seed)
        sim.enable_packet_tracing()
        net = Network(
            sim, Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
        )
        for i in range(1, n + 1):
            net.create_node(i, Point(i * spacing, 0.0))
        return sim, net

    def test_transport_retransmits_are_traced(self):
        sim, net = self.line()
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        service = ReliableMessageService(router, base_rto_s=0.05)
        faults = FaultInjector(net)
        faults.gremlin(drop_p=0.6, duration_s=20.0)
        fate = service.send(1, 6)
        sim.run(until=60.0)
        retx = sim.trace.filter("pkt.retx")
        if fate.attempts > 1:
            transport_retx = [r for r in retx if r.get("layer") == "transport"]
            assert len(transport_retx) == fate.attempts - 1
            assert all(r.get("msg") == fate.msg_id for r in transport_retx)

    def test_dtn_custody_events(self):
        sim, net = self.line(n=4)
        router = SprayAndWaitRouter(net, copies=4, contact_period_s=1.0)
        router.attach_all(range(1, 5))
        service = MessageService(router)
        receipt = service.send(1, 4)
        sim.run(until=60.0)
        custody = sim.trace.filter("pkt.custody")
        assert custody, "custody transfers must be traced"
        assert receipt.delivered
        # The origin's admit records the full spray budget.
        assert any(rec.get("copies") == 4 for rec in custody)

    def test_trace_context_header_is_carried(self):
        sim, net = self.line()
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        service = MessageService(router)
        captured = []
        service.on_message(6, lambda pkt: captured.append(pkt))
        service.send(1, 6)
        sim.run(until=30.0)
        assert captured
        ctx = captured[0].headers.get(TRACE_HEADER)
        assert isinstance(ctx, tuple) and len(ctx) == 3
        tid, parent_span, hop = ctx
        assert tid >= 1 and parent_span >= 1 and hop >= 1
