"""Tests for the kernel profiler and the run-report CLI."""

import json

import pytest

from repro.obs import NdjsonSink, summarize_run
from repro.obs.report import main as report_main
from repro.obs.profiler import KernelProfiler
from repro.sim import Simulator


def module_level_tick():
    pass


class TestKernelProfiler:
    def test_off_by_default(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.call_in(1.0, lambda: None)
        sim.run()  # no profiler attached, nothing recorded anywhere

    def test_enable_is_idempotent(self):
        sim = Simulator()
        p1 = sim.enable_profiling()
        p2 = sim.enable_profiling()
        assert p1 is p2

    def test_attributes_wall_time_to_callback_labels(self):
        sim = Simulator()
        sim.enable_profiling()
        sim.call_in(1.0, module_level_tick)
        sim.call_in(2.0, module_level_tick)
        sim.run()
        rows = dict(
            (label, (calls, wall))
            for label, calls, wall in sim.profiler.hot_paths()
        )
        assert "module_level_tick" in rows
        calls, wall = rows["module_level_tick"]
        assert calls == 2
        assert wall >= 0.0

    def test_process_events_labeled_by_process_name(self):
        sim = Simulator()
        sim.enable_profiling()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.spawn(proc(), name="scout")
        sim.run()
        labels = [label for label, _, _ in sim.profiler.hot_paths()]
        assert "proc:scout" in labels

    def test_hot_paths_sorted_by_wall_desc(self):
        profiler = KernelProfiler()
        profiler.record("cold", 0.001)
        profiler.record("hot", 0.5)
        profiler.record("warm", 0.01)
        labels = [label for label, _, _ in profiler.hot_paths()]
        assert labels == ["hot", "warm", "cold"]

    def test_hot_paths_truncates_to_n(self):
        profiler = KernelProfiler()
        for i in range(20):
            profiler.record(f"l{i}", 0.001 * (i + 1))
        assert len(profiler.hot_paths(10)) == 10

    def test_collapsed_stack_format(self):
        profiler = KernelProfiler()
        profiler.record("fire", 0.002)
        (line,) = profiler.collapsed_lines()
        stack, weight = line.rsplit(" ", 1)
        assert stack == "sim;fire"
        assert int(weight) == 2000  # microseconds

    def test_write_collapsed(self, tmp_path):
        profiler = KernelProfiler()
        profiler.record("a", 0.001)
        profiler.record("b", 0.003)
        out = tmp_path / "profile.folded"
        profiler.write_collapsed(str(out))
        lines = out.read_text().splitlines()
        assert lines == sorted(lines)  # deterministic label order
        assert all(" " in line for line in lines)

    def test_label_of_prefers_event_name(self):
        sim = Simulator()
        ev = sim.event(name="custom")
        assert KernelProfiler.label_of(ev) == "custom"

    def test_label_of_anonymous(self):
        sim = Simulator()
        assert KernelProfiler.label_of(sim.event()) == "<anonymous-event>"

    def test_reset(self):
        profiler = KernelProfiler()
        profiler.record("x", 0.1)
        profiler.reset()
        assert profiler.total_calls == 0
        assert profiler.total_s == 0.0


class TestRunCounters:
    def test_events_processed_and_wall_elapsed(self):
        sim = Simulator()
        for i in range(5):
            sim.call_in(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5
        assert sim.wall_elapsed > 0.0
        assert sim.events_per_sec > 0.0

    def test_counters_accumulate_across_runs(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: None)
        sim.run(until=2.0)
        first = sim.events_processed
        sim.call_in(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.events_processed == first + 1

    def test_events_per_sec_zero_before_any_run(self):
        assert Simulator().events_per_sec == 0.0


class TestSummarizeRun:
    def test_folds_record_types(self):
        records = [
            {"type": "trace", "category": "msg.tx", "time": 1.0},
            {"type": "trace", "category": "msg.tx", "time": 2.0},
            {"type": "trace", "category": "msg.rx", "time": 3.0},
            {"type": "span", "path": "run", "virtual_s": 3.0, "wall_s": 0.01},
            {"type": "profile", "label": "hot", "calls": 5, "wall_s": 0.2},
            {"type": "metric", "kind": "counter", "name": "net.tx", "value": 2.0},
            {"type": "meta", "event": "export"},
        ]
        summary = summarize_run(records)
        assert summary["n_records"] == 7
        assert summary["trace_counts"] == {"msg.rx": 1, "msg.tx": 2}
        assert summary["virtual_time"] == {"min": 1.0, "max": 3.0}
        assert summary["spans"]["run"]["count"] == 1
        assert summary["hot_paths"][0]["label"] == "hot"
        assert summary["metrics"]["net.tx"]["value"] == 2.0
        assert summary["meta_events"][0]["event"] == "export"

    def test_profile_snapshots_take_latest_not_sum(self):
        # export_obs can run more than once; profile rows are cumulative.
        records = [
            {"type": "profile", "label": "a", "calls": 3, "wall_s": 0.1},
            {"type": "profile", "label": "a", "calls": 8, "wall_s": 0.4},
        ]
        summary = summarize_run(records)
        (row,) = summary["hot_paths"]
        assert row["calls"] == 8
        assert row["wall_s"] == pytest.approx(0.4)

    def test_hot_paths_sorted(self):
        records = [
            {"type": "profile", "label": "b", "calls": 1, "wall_s": 0.1},
            {"type": "profile", "label": "a", "calls": 1, "wall_s": 0.9},
        ]
        summary = summarize_run(records)
        assert [r["label"] for r in summary["hot_paths"]] == ["a", "b"]


class TestReportCli:
    def _export(self, tmp_path):
        path = tmp_path / "run.ndjson"
        sim = Simulator(seed=3)
        sim.trace.add_sink(NdjsonSink(path))
        sim.enable_profiling()
        with sim.span("smoke"):
            for i in range(10):
                sim.call_in(float(i + 1), module_level_tick)
            sim.call_in(5.0, lambda: sim.trace.emit("tick", i=1))
            sim.run()
        sim.export_obs()
        sim.trace.close_sinks()
        return path

    def test_report_renders_and_writes_json(self, tmp_path, capsys):
        path = self._export(tmp_path)
        json_out = tmp_path / "report.json"
        rc = report_main(["report", str(path), "--top", "10",
                          "--json", str(json_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hot paths" in out
        assert "module_level_tick" in out
        assert "tick" in out  # trace category section
        summary = json.loads(json_out.read_text())
        assert summary["trace_counts"]["tick"] == 1
        assert summary["skipped_lines"] == 0
        assert any(
            row["label"] == "module_level_tick" for row in summary["hot_paths"]
        )
        assert "smoke" in summary["spans"]

    def test_report_survives_truncated_export(self, tmp_path, capsys):
        path = self._export(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the final line
        rc = report_main(["report", str(path)])
        assert rc == 0
        assert "skipped" in capsys.readouterr().out
