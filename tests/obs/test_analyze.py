"""Unit tests for the offline trace analyzer on synthetic record streams.

Hand-built record streams with known timings exercise the happens-before
reconstruction without running a simulation, so the expected phase values
can be computed by hand and checked exactly.
"""

import pytest

from repro.obs.analyze import (
    PHASES,
    analyze_trace,
    chrome_trace,
    render_trace_report,
    trace_summary_json,
)


def R(category, time, **fields):
    return {"type": "trace", "time": time, "category": category, **fields}


def two_hop_records():
    """tid 1: 1 → 2 → 3 DATA delivery; the first hop-1 attempt is lost and
    retried (spans 10 then 11), hop 2 is span 12."""
    return [
        R("pkt.send", 0.0, tid=1, uid=1, src=1, dst=3, kind="data",
          size_bits=1024, flow=7, rmsg=None),
        # Lost first attempt: duration 0.01 + 0.02 + 0.01 = 0.04.
        R("pkt.enqueue", 0.2, tid=1, span=10, parent=0, hop=0, src=1, dst=2,
          backoff_s=0.01, airtime_s=0.02, prop_s=0.01, extra_s=0.0,
          uid=1, kind="data"),
        R("pkt.drop", 0.24, tid=1, span=10, src=1, dst=2, reason="loss"),
        # Delivering attempt.
        R("pkt.enqueue", 0.5, tid=1, span=11, parent=0, hop=0, src=1, dst=2,
          backoff_s=0.01, airtime_s=0.02, prop_s=0.01, extra_s=0.0,
          uid=1, kind="data"),
        R("pkt.rx", 0.54, tid=1, span=11, src=1, dst=2, hop=1),
        R("pkt.enqueue", 0.8, tid=1, span=12, parent=11, hop=1, src=2, dst=3,
          backoff_s=0.005, airtime_s=0.02, prop_s=0.005, extra_s=0.0,
          uid=1, kind="data"),
        R("pkt.rx", 0.83, tid=1, span=12, src=2, dst=3, hop=2),
        R("pkt.deliver", 0.83, tid=1, span=12, node=3, uid=1, hops=2,
          latency_s=0.83),
    ]


class TestReconstruction:
    def test_two_hop_chain_with_retry(self):
        analysis = analyze_trace(two_hop_records())
        pt = analysis.packets[1]
        assert pt.src == 1 and pt.dst == 3 and pt.kind == "data"
        assert pt.delivered
        (delivery,) = pt.deliveries
        assert delivery.complete
        assert [h.sender for h in delivery.chain] == [1, 2]
        assert [h.receiver for h in delivery.chain] == [2, 3]

        hop1, hop2 = delivery.chain
        # Hop 1: gap 0.5, lost sibling accounts 0.04 of it as retransmit.
        assert hop1.attempts == 2
        assert hop1.phases["retransmit"] == pytest.approx(0.04)
        assert hop1.phases["queueing"] == pytest.approx(0.46)
        assert hop1.phases["contention"] == pytest.approx(0.01)
        assert hop1.phases["airtime"] == pytest.approx(0.02)
        assert hop1.phases["propagation"] == pytest.approx(0.01)
        # Hop 2: pure queueing gap after the hop-1 reception.
        assert hop2.attempts == 1
        assert hop2.phases["queueing"] == pytest.approx(0.26)

        # The invariant the whole analyzer exists for.
        assert sum(delivery.phases.values()) == pytest.approx(
            delivery.latency_s
        )
        assert delivery.latency_s == pytest.approx(0.83)
        assert delivery.slowest_hop() is hop1

    def test_incomplete_chain_is_flagged_not_fabricated(self):
        records = [
            R("pkt.send", 0.0, tid=2, uid=2, src=4, dst=6, kind="data",
              size_bits=512, flow=None, rmsg=None),
            # Delivery references span 99 which never appears: the chain
            # cannot be reconstructed (e.g. truncated/rotated export).
            R("pkt.deliver", 1.5, tid=2, span=99, node=6, uid=2, hops=1,
              latency_s=1.5),
        ]
        analysis = analyze_trace(records)
        (delivery,) = analysis.packets[2].deliveries
        assert not delivery.complete
        assert delivery.chain == []
        assert all(delivery.phases[name] == 0.0 for name in PHASES)
        # Incomplete deliveries never become the critical path.
        assert analysis.critical_delivery() is None

    def test_origin_self_delivery_is_zero_hops(self):
        records = [
            R("pkt.send", 2.0, tid=3, uid=3, src=5, dst=5, kind="data",
              size_bits=64, flow=None, rmsg=None),
            R("pkt.deliver", 2.0, tid=3, span=0, node=5, uid=3, hops=0,
              latency_s=0.0),
        ]
        (delivery,) = analyze_trace(records).packets[3].deliveries
        assert delivery.complete
        assert delivery.chain == []
        assert delivery.latency_s == 0.0

    def test_non_pkt_records_are_ignored(self):
        records = [R("node.up", 0.0, node=1), *two_hop_records(),
                   {"type": "profile", "category": "pkt.send", "tid": 9}]
        analysis = analyze_trace(records)
        assert set(analysis.packets) == {1}

    def test_drop_reason_taxonomy(self):
        records = two_hop_records() + [
            R("pkt.route_drop", 0.9, tid=1, node=2, uid=1,
              reason="ttl_expired"),
        ]
        reasons = analyze_trace(records).drop_reasons()
        assert reasons == {"loss": 1, "route:ttl_expired": 1}


class TestFlows:
    def rmsg_records(self):
        """rmsg 55: first attempt (tid 4) lost, retry (tid 5) delivers."""
        return [
            R("pkt.send", 1.0, tid=4, uid=4, src=1, dst=5, kind="data",
              size_bits=256, flow=None, rmsg=55),
            R("pkt.send", 4.0, tid=5, uid=5, src=1, dst=5, kind="data",
              size_bits=256, flow=None, rmsg=55),
            R("pkt.enqueue", 4.1, tid=5, span=40, parent=0, hop=0, src=1,
              dst=5, backoff_s=0.01, airtime_s=0.02, prop_s=0.01,
              extra_s=0.0, uid=5, kind="data"),
            R("pkt.rx", 4.14, tid=5, span=40, src=1, dst=5, hop=1),
            R("pkt.deliver", 4.14, tid=5, span=40, node=5, uid=5, hops=1,
              latency_s=0.14),
        ]

    def test_transport_retries_fold_into_one_flow(self):
        analysis = analyze_trace(self.rmsg_records())
        (flow,) = analysis.flows()
        assert flow.key == "rmsg:55"
        assert flow.tids == [4, 5]
        assert flow.attempts == 2
        assert flow.delivered
        # Latency counts from the FIRST send; the RTO wait shows up as
        # transport_wait_s.
        assert flow.latency_s == pytest.approx(3.14)
        assert flow.transport_wait_s == pytest.approx(3.0)
        assert flow.hops == 1

    def test_undelivered_flow(self):
        records = [
            R("pkt.send", 1.0, tid=9, uid=9, src=1, dst=5, kind="data",
              size_bits=256, flow=3, rmsg=None),
        ]
        (flow,) = analyze_trace(records).flows()
        assert flow.key == "flow:3"
        assert not flow.delivered
        assert flow.latency_s is None

    def test_control_packets_are_not_flows(self):
        records = [
            R("pkt.send", 0.0, tid=8, uid=8, src=1, dst=2, kind="rreq",
              size_bits=64, flow=None, rmsg=None),
        ]
        assert analyze_trace(records).flows() == []


class TestExports:
    def test_chrome_trace_shape(self):
        doc = chrome_trace(analyze_trace(two_hop_records()))
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        phs = {e["ph"] for e in events}
        assert {"M", "X", "i"} <= phs
        spans = [e for e in events if e["ph"] == "X"]
        # Three transmissions (two hop-1 attempts + hop 2).
        assert len(spans) == 3
        for e in spans:
            assert e["pid"] == 1  # pid = trace id
            assert isinstance(e["ts"], (int, float))
            assert e["dur"] >= 0
        # Timestamps are microseconds of virtual time.
        first = min(spans, key=lambda e: e["ts"])
        assert first["ts"] == pytest.approx(0.2e6)

    def test_summary_json_names_slowest_hop(self):
        digest = trace_summary_json(analyze_trace(two_hop_records()))
        assert digest["n_delivered"] == 1
        cp = digest["critical_path"]
        assert cp["hops"] == 2
        assert len(cp["chain"]) == 2
        assert cp["slowest_hop"]["sender"] == 1
        assert cp["slowest_hop"]["receiver"] == 2
        assert sum(cp["phases"].values()) == pytest.approx(cp["latency_s"])

    def test_render_report_is_stable_text(self):
        text = render_trace_report(analyze_trace(two_hop_records()))
        assert "critical path" in text
        assert "slowest hop: 1→2" in text
        assert "queueing" in text
