"""Tests for streaming sinks: NDJSON rotation/recovery, ring sink, and the
TraceLog overflow path (count drops, warn once, keep streaming)."""

import json
import logging
import os

from repro.obs.sinks import (
    NdjsonSink,
    RingSink,
    ndjson_parts,
    read_ndjson,
)
from repro.sim import Simulator


class TestNdjsonSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with NdjsonSink(path) as sink:
            sink.write({"type": "trace", "i": 0})
            sink.write({"type": "trace", "i": 1})
        records, skipped = read_ndjson(path)
        assert skipped == 0
        assert [r["i"] for r in records] == [0, 1]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.ndjson"
        with NdjsonSink(path) as sink:
            sink.write({"a": 1})
        assert path.exists()

    def test_append_mode_accumulates_across_opens(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with NdjsonSink(path) as sink:
            sink.write({"run": 1})
        with NdjsonSink(path) as sink:
            sink.write({"run": 2})
        records, _ = read_ndjson(path)
        assert [r["run"] for r in records] == [1, 2]

    def test_non_finite_values_serialize(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with NdjsonSink(path) as sink:
            sink.write({"v": float("nan")})
        records, skipped = read_ndjson(path)
        assert skipped == 0
        assert records[0]["v"] is None  # json_safe nulls non-finite floats

    def test_rotation_shifts_generations(self, tmp_path):
        path = tmp_path / "run.ndjson"
        sink = NdjsonSink(path, max_bytes=120, max_files=3, append=False)
        for i in range(40):
            sink.write({"i": i})
        sink.close()
        assert sink.rotations > 0
        rotated = sink.rotated_paths()
        assert rotated  # oldest-first generations exist on disk
        assert all(os.path.exists(p) for p in rotated)
        # No generation beyond max_files survives.
        assert not os.path.exists(f"{path}.4")
        # Parts (rotated oldest-first + live) hold a contiguous suffix of
        # the stream, ending with the newest record.
        all_records = []
        for part in ndjson_parts(path):
            all_records.extend(read_ndjson(part)[0])
        seq = [r["i"] for r in all_records]
        assert seq == sorted(seq)
        assert seq[-1] == 39

    def test_oversized_single_record_still_written(self, tmp_path):
        path = tmp_path / "run.ndjson"
        sink = NdjsonSink(path, max_bytes=10, append=False)
        sink.write({"big": "x" * 100})
        sink.close()
        records, _ = read_ndjson(path)
        assert len(records) == 1

    def test_truncated_final_line_recovered(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with NdjsonSink(path) as sink:
            for i in range(5):
                sink.write({"i": i})
        # Simulate a killed run: tear the final record mid-line (cut back
        # to just past the last newline, then one byte more).
        data = path.read_bytes()
        cut = data.rstrip(b"\n").rfind(b"\n") + 2
        path.write_bytes(data[:cut])
        records, skipped = read_ndjson(path)
        assert skipped == 1
        assert [r["i"] for r in records] == [0, 1, 2, 3]

    def test_ndjson_parts_missing_file(self, tmp_path):
        assert ndjson_parts(tmp_path / "nope.ndjson") == []


class TestRingSink:
    def test_keeps_most_recent(self):
        ring = RingSink(capacity=3)
        for i in range(10):
            ring.write({"i": i})
        assert [r["i"] for r in ring.records()] == [7, 8, 9]
        assert ring.evicted == 7
        assert ring.total == 10
        assert len(ring) == 3


class TestTraceLogSinks:
    def test_sink_receives_trace_records(self, tmp_path):
        sim = Simulator()
        ring = sim.trace.add_sink(RingSink())
        sim.trace.emit("evt", x=1)
        (rec,) = ring.records()
        assert rec["type"] == "trace"
        assert rec["category"] == "evt"
        assert rec["x"] == 1

    def test_overflow_counts_drops_and_keeps_streaming(self):
        sim = Simulator()
        sim.trace.max_records = 3
        ring = sim.trace.add_sink(RingSink())
        for i in range(10):
            sim.trace.emit("evt", i=i)
        # In-memory list capped, drop count exact ...
        assert len(sim.trace) == 3
        assert sim.trace.dropped == 7
        # ... but the sink saw the entire stream (plus one capped-marker).
        traces = [r for r in ring.records() if r["type"] == "trace"]
        assert [r["i"] for r in traces] == list(range(10))
        capped = [r for r in ring.records() if r.get("event") == "trace_capped"]
        assert len(capped) == 1
        assert capped[0]["max_records"] == 3

    def test_overflow_warns_exactly_once(self, caplog):
        sim = Simulator()
        sim.trace.max_records = 1
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for _ in range(5):
                sim.trace.emit("evt")
        warnings = [r for r in caplog.records if "trace capped" in r.message]
        assert len(warnings) == 1
        assert sim.trace.dropped == 4

    def test_remove_sink(self):
        sim = Simulator()
        ring = sim.trace.add_sink(RingSink())
        sim.trace.remove_sink(ring)
        sim.trace.emit("evt")
        assert len(ring) == 0
        assert sim.trace.sinks == ()

    def test_ndjson_export_end_to_end(self, tmp_path):
        path = tmp_path / "run.ndjson"
        sim = Simulator(seed=1)
        sim.trace.add_sink(NdjsonSink(path))
        sim.call_in(1.0, lambda: sim.trace.emit("tick", n=1))
        sim.run()
        sim.export_obs()
        sim.trace.close_sinks()
        records, skipped = read_ndjson(path)
        assert skipped == 0
        types = {r["type"] for r in records}
        assert "trace" in types
        assert "meta" in types  # the export marker
        tick = next(r for r in records if r["type"] == "trace")
        assert tick["category"] == "tick"
        assert tick["time"] == 1.0
        # Records are valid one-object-per-line JSON.
        for line in path.read_text().splitlines():
            json.loads(line)


class TestLazySinks:
    def test_lazy_sink_fills_at_flush_points(self):
        sim = Simulator()
        ring = sim.trace.add_sink(RingSink(), lazy=True)
        sim.trace.emit("evt", i=0)
        sim.trace.emit("evt", i=1)
        # Nothing written at emit time — records are still staged.
        assert len(ring) == 0
        sim.trace.flush_sinks()
        assert [r["i"] for r in ring.records()] == [0, 1]
        # Flush is a watermark, not a replay: no duplicates on re-flush.
        sim.trace.emit("evt", i=2)
        sim.trace.flush_sinks()
        assert [r["i"] for r in ring.records()] == [0, 1, 2]

    def test_lazy_sink_drained_by_close_and_export(self, tmp_path):
        path = tmp_path / "run.ndjson"
        sim = Simulator(seed=1)
        sim.trace.add_sink(NdjsonSink(path), lazy=True)
        sim.trace.emit("evt", i=7)
        sim.export_obs()  # flushes lazy backlog before the meta record
        sim.trace.close_sinks()
        records, _ = read_ndjson(path)
        assert [r["category"] for r in records if r["type"] == "trace"] == ["evt"]

    def test_overflow_records_reach_lazy_sinks(self):
        sim = Simulator()
        sim.trace.max_records = 2
        ring = sim.trace.add_sink(RingSink(), lazy=True)
        for i in range(6):
            sim.trace.emit("evt", i=i)
        sim.trace.flush_sinks()
        traces = [r for r in ring.records() if r["type"] == "trace"]
        assert [r["i"] for r in traces] == list(range(6))


class TestRotationRaceGuard:
    def test_rotation_survives_missing_generations(self, tmp_path):
        # A sibling process sharing the export dir (or an overzealous
        # cleaner) may remove rotated generations between our stat and
        # rename; rotation must carry on rather than crash the sink.
        path = tmp_path / "run.ndjson"
        sink = NdjsonSink(path, max_bytes=80, max_files=2, append=False)
        for i in range(10):
            sink.write({"i": i})
        # Yank every rotated generation out from under the sink.
        for gen in sink.rotated_paths():
            if os.path.exists(gen):
                os.remove(gen)
        for i in range(10, 20):
            sink.write({"i": i})
        sink.close()
        records, _ = read_ndjson(path)
        assert records  # still streaming after the race
        assert sink.rotations > 1
