"""OpenMetrics rendering/parsing and the live snapshot/SLO layer."""

from __future__ import annotations

import pytest

from repro.obs.export import (
    check_slos,
    flatten_snapshot,
    live_snapshot,
    parse_openmetrics,
    parse_slo,
    render_live,
    render_openmetrics,
    state_from_records,
)


@pytest.fixture
def state():
    return {
        "net.tx": {"kind": "counter", "value": 321.0},
        "route.aodv.tx": {"kind": "counter", "value": 200.0},
        "route.aodv.delivered": {"kind": "counter", "value": 150.0},
        "route.geo.tx": {"kind": "counter", "value": 0.0},
        "service.breaker.greedy.state": {"kind": "gauge", "value": 0.0},
        "service.breaker.shortest.state": {"kind": "gauge", "value": 2.0},
        "shard.lag_events": {"kind": "gauge", "value": 17.0},
        "service.latency_s": {
            "kind": "histogram",
            "buckets": [0.001, 0.01, 0.1],
            "counts": [6, 3, 0, 1],
            "count": 10,
            "total": 0.35,
            "min": 0.0004,
            "max": 0.4,
        },
    }


def test_openmetrics_round_trip_is_exact(state):
    text = render_openmetrics(state)
    assert text.endswith("# EOF\n")
    parsed = parse_openmetrics(text)
    # The canonical round-trip contract: re-rendering the parse is
    # byte-identical (names are sanitized, so compare renderings).
    assert render_openmetrics(parsed) == text


def test_openmetrics_counter_and_histogram_shapes(state):
    text = render_openmetrics(state)
    assert "# TYPE repro_net_tx counter" in text
    assert "repro_net_tx_total 321.0" in text
    # Buckets are cumulative and close with +Inf == count.
    assert 'repro_service_latency_s_bucket{le="0.001"} 6' in text
    assert 'repro_service_latency_s_bucket{le="0.01"} 9' in text
    assert 'repro_service_latency_s_bucket{le="+Inf"} 10' in text
    assert "repro_service_latency_s_count 10" in text
    parsed = parse_openmetrics(text)
    assert parsed["service_latency_s"]["counts"] == [6.0, 3.0, 0.0, 1.0]
    assert parsed["net_tx"]["value"] == 321.0


def test_openmetrics_summary_histogram_degrades_without_buckets():
    state = {"lat": {"kind": "histogram", "count": 4, "mean": 0.25}}
    text = render_openmetrics(state)
    assert "_bucket" not in text
    assert "repro_lat_count 4" in text
    assert "repro_lat_sum 1.0" in text  # mean * count fallback


def test_parse_openmetrics_rejects_undeclared_samples():
    with pytest.raises(ValueError, match="TYPE"):
        parse_openmetrics("repro_mystery_total 3\n# EOF\n")


def test_live_snapshot_surfaces_every_layer(state):
    meta = {
        "type": "meta",
        "event": "export",
        "sim_now": 120.0,
        "events_processed": 5000,
        "events_per_sec": 9000.0,
    }
    snap = live_snapshot(state, meta)
    assert snap["kernel"]["events_per_sec"] == 9000.0
    assert snap["routers"]["aodv"]["delivery_ratio"] == 0.75
    # Zero-tx router reports None, not a ZeroDivisionError.
    assert snap["routers"]["geo"]["delivery_ratio"] is None
    assert snap["breakers"] == {"greedy": "closed", "shortest": "open"}
    assert snap["shard"]["lag_events"] == 17.0
    # p95 of the bucketed latency histogram: 10th sample sits past the
    # last bound, so the estimate falls back to the observed max.
    assert snap["service"]["latency_p95_s"] == 0.4
    text = render_live(snap)
    assert "events/sec=9000.0" in text
    assert "aodv: delivery_ratio=0.750" in text
    assert "shortest=open" in text
    assert "lag_events=17" in text


def test_state_from_records_folds_metrics_and_latest_meta():
    records = [
        {"type": "trace", "time": 0.1, "category": "pkt.rx"},
        {"type": "metric", "name": "net.tx", "kind": "counter", "value": 3.0},
        {"type": "meta", "event": "export", "events_per_sec": 100.0},
        # Cumulative export: later snapshot wins.
        {"type": "metric", "name": "net.tx", "kind": "counter", "value": 9.0},
        {"type": "meta", "event": "export", "events_per_sec": 450.0},
    ]
    state, meta = state_from_records(records)
    assert state["net.tx"]["value"] == 9.0
    assert meta["events_per_sec"] == 450.0


def test_parse_slo_and_check(state):
    assert parse_slo("kernel.events_per_sec>=1000") == (
        "kernel.events_per_sec", ">=", 1000.0,
    )
    assert parse_slo(" shard.lag_events <= 50 ") == (
        "shard.lag_events", "<=", 50.0,
    )
    with pytest.raises(ValueError):
        parse_slo("kernel.events_per_sec=1000")

    snap = live_snapshot(state, {"events_per_sec": 9000.0, "event": "export"})
    flat = flatten_snapshot(snap, state)
    # Raw state names are addressable too, not just snapshot paths.
    assert flat["net.tx"] == 321.0
    ok = check_slos(flat, ["kernel.events_per_sec>=1000", "shard.lag_events<=50"])
    assert ok == []
    bad = check_slos(
        flat,
        [
            "routers.aodv.delivery_ratio>=0.9",  # 0.75: breach
            "service.breaker.shortest.state<=1",  # open (2.0): breach
            "missing.metric>=1",  # absent: breach, not silence
        ],
    )
    assert len(bad) == 3
    assert any("not present" in b for b in bad)
