"""Binary trace ring: pack/decode fidelity, eviction, transport, disk."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    RING_MAGIC,
    BinaryTraceRing,
    RecordSchema,
    StringTable,
    load_ring,
)


def test_string_table_interns_and_restores():
    table = StringTable()
    a = table.intern("pkt.rx")
    b = table.intern("uid")
    assert table.intern("pkt.rx") == a  # stable on re-intern
    assert table.lookup(a) == "pkt.rx"
    assert table.lookup(b) == "uid"
    clone = StringTable(table.as_list())
    assert clone.intern("pkt.rx") == a
    assert len(clone) == len(table)


def test_record_schema_requires_sorted_keys_and_registers():
    schema = RecordSchema("t.sorted", ("a", "b", "c"))
    assert RecordSchema.registry[schema.sid] is schema
    with pytest.raises(ValueError):
        RecordSchema("t.unsorted", ("b", "a"))


def test_pack_decode_round_trip_is_bit_identical():
    ring = BinaryTraceRing()
    fields = (
        ("big", 2**70),  # wider than i64: object side-table
        ("flag_f", False),
        ("flag_t", True),
        ("fval", 0.1 + 0.2),  # must come back to the exact same double
        ("ival", -(2**62)),
        ("none", None),
        ("sval", "hello"),
    )
    ring.append(1.5, "test.cat", fields)
    [(time, category, decoded)] = list(ring.iter_tuples())
    assert time == 1.5
    assert category == "test.cat"
    assert decoded == fields
    # Types survive exactly: bools are bools, not ints.
    values = dict(decoded)
    assert values["flag_t"] is True and values["flag_f"] is False
    assert type(values["ival"]) is int and type(values["fval"]) is float
    assert values["big"] == 2**70


def test_flight_recorder_eviction_keeps_newest():
    ring = BinaryTraceRing(capacity_records=3)
    for i in range(10):
        ring.append(float(i), "c", (("i", i),))
    assert len(ring) == 3
    assert ring.evicted == 7
    assert [t for t, _c, _f in ring.iter_tuples()] == [7.0, 8.0, 9.0]
    ring.clear()
    assert len(ring) == 0 and ring.evicted == 0 and ring.nbytes == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BinaryTraceRing(capacity_records=0)


def test_payload_round_trip_survives_pickle_shapes():
    ring = BinaryTraceRing()
    for i in range(50):
        ring.append(i * 0.25, f"cat.{i % 3}", (("n", i), ("tag", f"s{i % 5}")))
    payload = ring.to_payload()
    # The whole trace ships as one bytes blob + interning table.
    assert isinstance(payload["packed"], bytes)
    clone = BinaryTraceRing.from_payload(payload)
    assert list(clone.iter_tuples()) == list(ring.iter_tuples())


def test_payload_respects_eviction_offset():
    ring = BinaryTraceRing(capacity_records=4)
    for i in range(9):
        ring.append(float(i), "c", (("i", i),))
    clone = BinaryTraceRing.from_payload(ring.to_payload())
    assert [t for t, _c, _f in clone.iter_tuples()] == [5.0, 6.0, 7.0, 8.0]


def test_iter_tuples_from_offset():
    ring = BinaryTraceRing()
    for i in range(5):
        ring.append(float(i), "c", (("i", i),))
    assert [t for t, _c, _f in ring.iter_tuples(start=3)] == [3.0, 4.0]
    assert list(ring.iter_tuples(start=5)) == []


def test_dump_and_load_ring_with_aux_records(tmp_path):
    ring = BinaryTraceRing()
    ring.append(0.5, "pkt.rx", (("hop", 2), ("uid", "u1")))
    ring.append(1.0, "pkt.drop", (("reason", "loss"),))
    aux = [
        {"type": "meta", "event": "export", "events_per_sec": 1234.5},
        {"type": "metric", "name": "net.tx", "kind": "counter", "value": 7.0},
    ]
    path = ring.dump(str(tmp_path / "sub" / "run.ring"), aux_records=aux)
    records = load_ring(path)
    assert records[0] == {"type": "trace", "time": 0.5, "category": "pkt.rx",
                          "hop": 2, "uid": "u1"}
    assert records[1]["reason"] == "loss"
    assert records[2]["event"] == "export"
    assert records[3]["value"] == 7.0


def test_load_ring_rejects_non_ring_files(tmp_path):
    path = tmp_path / "not-a-ring.ring"
    path.write_bytes(b"something else entirely\n")
    with pytest.raises(ValueError, match="bad magic"):
        load_ring(str(path))
    assert RING_MAGIC.endswith(b"\n")  # readline-based header contract


def test_empty_ring_dump_round_trips(tmp_path):
    ring = BinaryTraceRing()
    path = ring.dump(str(tmp_path / "empty.ring"))
    assert load_ring(path) == []
