"""Binary trace ring: pack/decode fidelity, eviction, transport, disk."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.obs.telemetry import (
    RING_MAGIC,
    RING_SCHEMA,
    BinaryTraceRing,
    RecordSchema,
    StringTable,
    load_ring,
    load_ring_ex,
)


def test_string_table_interns_and_restores():
    table = StringTable()
    a = table.intern("pkt.rx")
    b = table.intern("uid")
    assert table.intern("pkt.rx") == a  # stable on re-intern
    assert table.lookup(a) == "pkt.rx"
    assert table.lookup(b) == "uid"
    clone = StringTable(table.as_list())
    assert clone.intern("pkt.rx") == a
    assert len(clone) == len(table)


def test_record_schema_requires_sorted_keys_and_registers():
    schema = RecordSchema("t.sorted", ("a", "b", "c"))
    assert RecordSchema.registry[schema.sid] is schema
    with pytest.raises(ValueError):
        RecordSchema("t.unsorted", ("b", "a"))


def test_pack_decode_round_trip_is_bit_identical():
    ring = BinaryTraceRing()
    fields = (
        ("big", 2**70),  # wider than i64: object side-table
        ("flag_f", False),
        ("flag_t", True),
        ("fval", 0.1 + 0.2),  # must come back to the exact same double
        ("ival", -(2**62)),
        ("none", None),
        ("sval", "hello"),
    )
    ring.append(1.5, "test.cat", fields)
    [(time, category, decoded)] = list(ring.iter_tuples())
    assert time == 1.5
    assert category == "test.cat"
    assert decoded == fields
    # Types survive exactly: bools are bools, not ints.
    values = dict(decoded)
    assert values["flag_t"] is True and values["flag_f"] is False
    assert type(values["ival"]) is int and type(values["fval"]) is float
    assert values["big"] == 2**70


def test_flight_recorder_eviction_keeps_newest():
    ring = BinaryTraceRing(capacity_records=3)
    for i in range(10):
        ring.append(float(i), "c", (("i", i),))
    assert len(ring) == 3
    assert ring.evicted == 7
    assert [t for t, _c, _f in ring.iter_tuples()] == [7.0, 8.0, 9.0]
    ring.clear()
    assert len(ring) == 0 and ring.evicted == 0 and ring.nbytes == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BinaryTraceRing(capacity_records=0)
    with pytest.raises(ValueError):
        BinaryTraceRing(capacity_bytes=0)


def _record_nbytes(fields) -> int:
    """Packed size of one record with the given fields (for boundary math)."""
    probe = BinaryTraceRing()
    probe.append(0.0, "c", fields)
    return probe.nbytes


def test_byte_budget_evicts_at_exact_record_boundary():
    fields = (("i", 7),)
    size = _record_nbytes(fields)
    # Budget for exactly three records: the fourth append must evict
    # exactly one (a boundary off-by-one would drop zero or two).
    ring = BinaryTraceRing(capacity_bytes=3 * size)
    for i in range(3):
        ring.append(float(i), "c", fields)
    assert len(ring) == 3 and ring.evicted == 0 and ring.nbytes == 3 * size
    ring.append(3.0, "c", fields)
    assert len(ring) == 3 and ring.evicted == 1
    assert [t for t, _c, _f in ring.iter_tuples()] == [1.0, 2.0, 3.0]
    # One byte under the exact fit forces a second record out.
    tight = BinaryTraceRing(capacity_bytes=3 * size - 1)
    for i in range(4):
        tight.append(float(i), "c", fields)
    assert len(tight) == 2 and tight.evicted == 2


def test_byte_budget_always_keeps_newest_record():
    ring = BinaryTraceRing(capacity_bytes=1)
    ring.append(0.0, "cat", (("payload", "x" * 64),))
    ring.append(1.0, "cat", (("payload", "y" * 64),))
    assert len(ring) == 1 and ring.evicted == 1
    [(t, _c, fields)] = list(ring.iter_tuples())
    assert t == 1.0 and dict(fields)["payload"] == "y" * 64


def test_byte_budget_eviction_property_seeded():
    """Property-style sweep: any append sequence under any byte budget
    keeps a decodable suffix of what was appended, within budget."""
    rng = np.random.default_rng(20260809)
    for _trial in range(25):
        budget = int(rng.integers(40, 500))
        ring = BinaryTraceRing(capacity_bytes=budget)
        appended = []
        for i in range(int(rng.integers(5, 90))):
            fields = tuple(
                sorted(
                    {
                        "i": int(i),
                        "s": f"tok-{int(rng.integers(0, 9))}",
                        "f": float(rng.random()),
                    }.items()
                )
            )
            category = f"cat.{int(rng.integers(0, 4))}"
            ring.append(float(i), category, fields)
            appended.append((float(i), category, fields))
            # Invariant: within budget, or a single oversized newest record.
            assert ring.nbytes <= budget or len(ring) == 1
        decoded = list(ring.iter_tuples())
        assert len(decoded) == len(ring)
        assert ring.evicted + len(decoded) == len(appended)
        # Exactly the newest suffix survives, bit-identical.
        assert decoded == appended[len(appended) - len(decoded):]


def test_string_table_round_trips_after_eviction(tmp_path):
    """Eviction drops records, never interned strings: payload and disk
    round trips decode the surviving suffix exactly."""
    rng = np.random.default_rng(7)
    ring = BinaryTraceRing(capacity_bytes=256)
    appended = []
    for i in range(60):
        fields = (("name", f"node-{int(rng.integers(0, 12))}"), ("seq", int(i)))
        ring.append(float(i), "s.cat", fields)
        appended.append((float(i), "s.cat", fields))
    assert ring.evicted > 0  # the budget actually bit
    survivors = appended[len(appended) - len(ring):]
    clone = BinaryTraceRing.from_payload(ring.to_payload())
    assert list(clone.iter_tuples()) == survivors
    path = ring.dump(str(tmp_path / "evicted.ring"))
    records, skipped, evicted = load_ring_ex(path)
    assert skipped == 0 and evicted == ring.evicted
    assert len(records) == len(survivors)
    for rec, (t, category, fields) in zip(records, survivors):
        assert rec["time"] == t and rec["category"] == category
        assert all(rec[k] == v for k, v in fields)


def test_payload_round_trip_survives_pickle_shapes():
    ring = BinaryTraceRing()
    for i in range(50):
        ring.append(i * 0.25, f"cat.{i % 3}", (("n", i), ("tag", f"s{i % 5}")))
    payload = ring.to_payload()
    # The whole trace ships as one bytes blob + interning table.
    assert isinstance(payload["packed"], bytes)
    clone = BinaryTraceRing.from_payload(payload)
    assert list(clone.iter_tuples()) == list(ring.iter_tuples())


def test_payload_respects_eviction_offset():
    ring = BinaryTraceRing(capacity_records=4)
    for i in range(9):
        ring.append(float(i), "c", (("i", i),))
    clone = BinaryTraceRing.from_payload(ring.to_payload())
    assert [t for t, _c, _f in clone.iter_tuples()] == [5.0, 6.0, 7.0, 8.0]


def test_iter_tuples_from_offset():
    ring = BinaryTraceRing()
    for i in range(5):
        ring.append(float(i), "c", (("i", i),))
    assert [t for t, _c, _f in ring.iter_tuples(start=3)] == [3.0, 4.0]
    assert list(ring.iter_tuples(start=5)) == []


def test_dump_and_load_ring_with_aux_records(tmp_path):
    ring = BinaryTraceRing()
    ring.append(0.5, "pkt.rx", (("hop", 2), ("uid", "u1")))
    ring.append(1.0, "pkt.drop", (("reason", "loss"),))
    aux = [
        {"type": "meta", "event": "export", "events_per_sec": 1234.5},
        {"type": "metric", "name": "net.tx", "kind": "counter", "value": 7.0},
    ]
    path = ring.dump(str(tmp_path / "sub" / "run.ring"), aux_records=aux)
    records = load_ring(path)
    assert records[0] == {"type": "trace", "time": 0.5, "category": "pkt.rx",
                          "hop": 2, "uid": "u1"}
    assert records[1]["reason"] == "loss"
    assert records[2]["event"] == "export"
    assert records[3]["value"] == 7.0


def test_load_ring_rejects_non_ring_files(tmp_path):
    path = tmp_path / "not-a-ring.ring"
    path.write_bytes(b"something else entirely\n")
    with pytest.raises(ValueError, match="bad magic"):
        load_ring(str(path))
    assert RING_MAGIC.endswith(b"\n")  # readline-based header contract


def test_empty_ring_dump_round_trips(tmp_path):
    ring = BinaryTraceRing()
    path = ring.dump(str(tmp_path / "empty.ring"))
    assert load_ring(path) == []


def _write_ring_with_future_tag(path, *, advertise_size):
    """Hand-craft a ring whose second record uses value tag 9 (unknown to
    this reader).  ``advertise_size`` controls whether the header's
    ``tag_sizes`` map carries the skip hint a newer writer would include.
    """
    head = struct.Struct("<dII")
    field = struct.Struct("<IB")
    u32 = struct.Struct("<I")
    strings = ["known.cat", "key", "value-str", "future.cat"]
    packed = bytearray()
    packed += head.pack(1.0, 0, 1) + field.pack(1, 3) + u32.pack(2)  # _T_STR
    packed += head.pack(2.0, 3, 1) + field.pack(1, 9) + u32.pack(0)  # tag 9
    packed += head.pack(3.0, 0, 1) + field.pack(1, 3) + u32.pack(2)
    strings_blob = "\x00".join(strings).encode("utf-8")
    tag_sizes = {"0": 0, "1": 8, "2": 8, "3": 4, "4": 0, "5": 0, "6": 4}
    if advertise_size:
        tag_sizes["9"] = 4
    header = {
        "schema": RING_SCHEMA,
        "n_records": 3,
        "strings_len": len(strings_blob),
        "packed_len": len(packed),
        "n_aux": 1,
        "objects": [],
        "tag_sizes": tag_sizes,
        "evicted": 2,
    }
    with open(path, "wb") as fh:
        fh.write(RING_MAGIC)
        fh.write(json.dumps(header, separators=(",", ":")).encode("utf-8"))
        fh.write(b"\n")
        fh.write(strings_blob)
        fh.write(packed)
        fh.write(b'{"type":"meta","event":"export"}\n')
    return str(path)


def test_unknown_tag_records_are_skipped_not_fatal(tmp_path):
    path = _write_ring_with_future_tag(
        tmp_path / "future.ring", advertise_size=True
    )
    records, skipped, evicted = load_ring_ex(path)
    # The tag-9 record is skipped whole; framing survives via the
    # writer-advertised size, so the record *after* it still decodes.
    assert skipped == 1 and evicted == 2
    times = [r["time"] for r in records if r.get("type") == "trace"]
    assert times == [1.0, 3.0]
    assert records[-1] == {"type": "meta", "event": "export"}


def test_unknown_tag_warns_once_via_load_ring(tmp_path):
    path = _write_ring_with_future_tag(
        tmp_path / "warn.ring", advertise_size=True
    )
    with pytest.warns(RuntimeWarning, match="unknown value tags"):
        records = load_ring(path)
    assert [r["time"] for r in records if r.get("type") == "trace"] == [1.0, 3.0]


def test_unknown_tag_without_size_hint_stops_cleanly(tmp_path):
    path = _write_ring_with_future_tag(
        tmp_path / "no-hint.ring", advertise_size=False
    )
    records, skipped, _evicted = load_ring_ex(path)
    # Without a size hint the framing is lost at the unknown record: the
    # reader keeps what it decoded (plus aux) and reports the skip.
    assert skipped == 1
    times = [r["time"] for r in records if r.get("type") == "trace"]
    assert times == [1.0]
    assert any(r.get("type") == "meta" for r in records)
