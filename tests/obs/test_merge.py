"""Deterministic trace merge + partition-invariant fingerprints."""

from __future__ import annotations

import pytest

from repro.obs.merge import (
    MERGE_FIELDS,
    merge_metrics,
    merge_traces,
    merged_fingerprint,
)
from repro.sim.trace import TraceRecord


def _rec(time, category, **fields):
    return TraceRecord(
        time=time, category=category, fields=tuple(sorted(fields.items()))
    )


def test_merge_stamps_shard_and_uid_and_sorts_by_time():
    s0 = [_rec(0.2, "app.rx", node=1), _rec(0.5, "app.rx", node=2)]
    s1 = [_rec(0.1, "app.rx", node=3)]
    merged = merge_traces([s0, s1])
    assert [(r["time"], r["shard"], r["uid"]) for r in merged] == [
        (0.1, 1, 0),
        (0.2, 0, 0),
        (0.5, 0, 1),
    ]
    assert merged[0]["node"] == 3


def test_merge_ties_break_on_shard_then_uid():
    s0 = [_rec(1.0, "a", k=1), _rec(1.0, "a", k=2)]
    s1 = [_rec(1.0, "a", k=3)]
    merged = merge_traces([s0, s1])
    assert [r["k"] for r in merged] == [1, 2, 3]
    # Stream order is preserved within a shard regardless of field values.
    merged_rev = merge_traces([s1, s0])
    assert [r["k"] for r in merged_rev] == [3, 1, 2]


def test_fingerprint_invariant_to_shard_layout():
    records = [_rec(0.1 * i, "app.rx", node=i, src=i + 1) for i in range(10)]
    serial_fp = merged_fingerprint(records)
    # Arbitrary 3-way split of the same records.
    split = [records[0::3], records[1::3], records[2::3]]
    sharded_fp = merged_fingerprint(merge_traces(split))
    assert serial_fp == sharded_fp
    # A different split hashes the same too.
    split2 = [records[:4], records[4:]]
    assert merged_fingerprint(merge_traces(split2)) == serial_fp


def test_fingerprint_detects_content_differences():
    base = [_rec(0.1, "app.rx", node=1), _rec(0.2, "app.rx", node=2)]
    fp = merged_fingerprint(base)
    assert merged_fingerprint(base[:1]) != fp
    changed = [_rec(0.1, "app.rx", node=1), _rec(0.2, "app.rx", node=99)]
    assert merged_fingerprint(changed) != fp
    shifted = [_rec(0.1, "app.rx", node=1), _rec(0.3, "app.rx", node=2)]
    assert merged_fingerprint(shifted) != fp


def test_fingerprint_ignores_subnanosecond_time_noise():
    a = [_rec(0.1, "app.rx", node=1)]
    b = [_rec(0.1 + 1e-12, "app.rx", node=1)]
    assert merged_fingerprint(a) == merged_fingerprint(b)


def test_fingerprint_category_filter():
    records = [
        _rec(0.1, "app.rx", node=1),
        _rec(0.2, "route.drop", node=2),
        _rec(0.3, "app.rx", node=3),
    ]
    all_fp = merged_fingerprint(records)
    rx_fp = merged_fingerprint(records, categories=["app.rx"])
    assert rx_fp != all_fp
    assert rx_fp == merged_fingerprint(
        [records[0], records[2]], categories=["app.rx"]
    )


def test_fingerprint_accepts_dicts_and_strips_merge_fields():
    as_record = [_rec(0.5, "app.rx", node=7)]
    as_dicts = [
        {
            "time": 0.5,
            "category": "app.rx",
            "node": 7,
            "shard": 3,
            "uid": 42,
            "type": "trace",
        }
    ]
    assert merged_fingerprint(as_record) == merged_fingerprint(as_dicts)
    assert set(MERGE_FIELDS) == {"shard", "uid", "type"}


def test_fingerprint_handles_mixed_field_types():
    # Sorting the multiset must not compare floats against strings.
    records = [
        _rec(0.1, "app.rx", node=1, kind="data"),
        _rec(0.1, "app.rx", node="gw", kind=4),
    ]
    fp = merged_fingerprint(records)
    assert fp == merged_fingerprint(list(reversed(records)))


# -- merge_metrics ------------------------------------------------------


def _counter(v):
    return {"kind": "counter", "value": float(v)}


def _gauge(v):
    return {"kind": "gauge", "value": float(v)}


def _hist(counts, *, buckets=(0.1, 1.0), total=0.0, mn=0.0, mx=0.0):
    return {
        "kind": "histogram",
        "buckets": list(buckets),
        "counts": list(counts),
        "count": sum(counts),
        "total": total,
        "min": mn,
        "max": mx,
    }


def test_merge_metrics_counters_sum_but_replicated_families_max():
    # net.tx is per-shard work (sums); faults.* schedules are replicated
    # into every shard, so summing would multiply them by the shard count.
    states = [
        {"net.tx": _counter(10), "faults.link_flaps": _counter(3)},
        {"net.tx": _counter(7), "faults.link_flaps": _counter(3)},
        {"net.tx": _counter(5), "faults.link_flaps": _counter(2)},
    ]
    merged = merge_metrics(states, replicated_prefixes=("faults.",))
    assert merged["net.tx"]["value"] == 22.0
    assert merged["faults.link_flaps"]["value"] == 3.0


def test_merge_metrics_gauges_take_max():
    merged = merge_metrics([{"q": _gauge(2)}, {"q": _gauge(9)}, {"q": _gauge(4)}])
    assert merged["q"] == {"kind": "gauge", "value": 9.0}


def test_merge_metrics_histograms_merge_bucketwise():
    a = _hist([3, 1, 0], total=0.5, mn=0.01, mx=0.9)
    b = _hist([1, 2, 1], total=2.5, mn=0.05, mx=3.0)
    merged = merge_metrics([{"lat": a}, {"lat": b}])["lat"]
    assert merged["counts"] == [4, 3, 1]
    assert merged["count"] == 8
    assert merged["total"] == pytest.approx(3.0)
    assert merged["min"] == 0.01
    assert merged["max"] == 3.0
    # Inputs are not mutated (first-seen state is deep-copied).
    assert a["counts"] == [3, 1, 0]


def test_merge_metrics_rejects_bucket_and_kind_mismatches():
    with pytest.raises(ValueError):
        merge_metrics(
            [
                {"lat": _hist([1, 0, 0], buckets=(0.1, 1.0))},
                {"lat": _hist([1, 0, 0], buckets=(0.2, 1.0))},
            ]
        )
    with pytest.raises(ValueError):
        merge_metrics([{"x": _counter(1)}, {"x": _gauge(1)}])


def test_merge_metrics_union_of_names():
    merged = merge_metrics([{"a": _counter(1)}, {"b": _counter(2)}])
    assert merged["a"]["value"] == 1.0
    assert merged["b"]["value"] == 2.0


def test_merged_metrics_invariant_to_shard_count():
    # The same total work split across 2 or 4 shards merges identically
    # (the metrics analogue of the fingerprint partition-invariance).
    def shard(tx, flaps, depth):
        return {
            "net.tx": _counter(tx),
            "faults.link_flaps": _counter(flaps),
            "queue.depth": _gauge(depth),
        }

    two = [shard(12, 5, 3), shard(8, 5, 7)]
    four = [shard(6, 5, 1), shard(6, 5, 3), shard(4, 5, 7), shard(4, 5, 2)]
    a = merge_metrics(two, replicated_prefixes=("faults.",))
    b = merge_metrics(four, replicated_prefixes=("faults.",))
    assert a == b
