"""Deterministic trace merge + partition-invariant fingerprints."""

from __future__ import annotations

from repro.obs.merge import MERGE_FIELDS, merge_traces, merged_fingerprint
from repro.sim.trace import TraceRecord


def _rec(time, category, **fields):
    return TraceRecord(
        time=time, category=category, fields=tuple(sorted(fields.items()))
    )


def test_merge_stamps_shard_and_uid_and_sorts_by_time():
    s0 = [_rec(0.2, "app.rx", node=1), _rec(0.5, "app.rx", node=2)]
    s1 = [_rec(0.1, "app.rx", node=3)]
    merged = merge_traces([s0, s1])
    assert [(r["time"], r["shard"], r["uid"]) for r in merged] == [
        (0.1, 1, 0),
        (0.2, 0, 0),
        (0.5, 0, 1),
    ]
    assert merged[0]["node"] == 3


def test_merge_ties_break_on_shard_then_uid():
    s0 = [_rec(1.0, "a", k=1), _rec(1.0, "a", k=2)]
    s1 = [_rec(1.0, "a", k=3)]
    merged = merge_traces([s0, s1])
    assert [r["k"] for r in merged] == [1, 2, 3]
    # Stream order is preserved within a shard regardless of field values.
    merged_rev = merge_traces([s1, s0])
    assert [r["k"] for r in merged_rev] == [3, 1, 2]


def test_fingerprint_invariant_to_shard_layout():
    records = [_rec(0.1 * i, "app.rx", node=i, src=i + 1) for i in range(10)]
    serial_fp = merged_fingerprint(records)
    # Arbitrary 3-way split of the same records.
    split = [records[0::3], records[1::3], records[2::3]]
    sharded_fp = merged_fingerprint(merge_traces(split))
    assert serial_fp == sharded_fp
    # A different split hashes the same too.
    split2 = [records[:4], records[4:]]
    assert merged_fingerprint(merge_traces(split2)) == serial_fp


def test_fingerprint_detects_content_differences():
    base = [_rec(0.1, "app.rx", node=1), _rec(0.2, "app.rx", node=2)]
    fp = merged_fingerprint(base)
    assert merged_fingerprint(base[:1]) != fp
    changed = [_rec(0.1, "app.rx", node=1), _rec(0.2, "app.rx", node=99)]
    assert merged_fingerprint(changed) != fp
    shifted = [_rec(0.1, "app.rx", node=1), _rec(0.3, "app.rx", node=2)]
    assert merged_fingerprint(shifted) != fp


def test_fingerprint_ignores_subnanosecond_time_noise():
    a = [_rec(0.1, "app.rx", node=1)]
    b = [_rec(0.1 + 1e-12, "app.rx", node=1)]
    assert merged_fingerprint(a) == merged_fingerprint(b)


def test_fingerprint_category_filter():
    records = [
        _rec(0.1, "app.rx", node=1),
        _rec(0.2, "route.drop", node=2),
        _rec(0.3, "app.rx", node=3),
    ]
    all_fp = merged_fingerprint(records)
    rx_fp = merged_fingerprint(records, categories=["app.rx"])
    assert rx_fp != all_fp
    assert rx_fp == merged_fingerprint(
        [records[0], records[2]], categories=["app.rx"]
    )


def test_fingerprint_accepts_dicts_and_strips_merge_fields():
    as_record = [_rec(0.5, "app.rx", node=7)]
    as_dicts = [
        {
            "time": 0.5,
            "category": "app.rx",
            "node": 7,
            "shard": 3,
            "uid": 42,
            "type": "trace",
        }
    ]
    assert merged_fingerprint(as_record) == merged_fingerprint(as_dicts)
    assert set(MERGE_FIELDS) == {"shard", "uid", "type"}


def test_fingerprint_handles_mixed_field_types():
    # Sorting the multiset must not compare floats against strings.
    records = [
        _rec(0.1, "app.rx", node=1, kind="data"),
        _rec(0.1, "app.rx", node="gw", kind=4),
    ]
    fp = merged_fingerprint(records)
    assert fp == merged_fingerprint(list(reversed(records)))
