"""Run forensics: manifests, deterministic replay, first-divergence diffs."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.obs.forensics import (
    MANIFEST_SCHEMA,
    ForensicsError,
    ReplayError,
    RunManifest,
    content_hash,
    diff_records,
    load_manifest,
    manifest_for_shard_result,
    manifest_path,
    render_diff,
    render_replay_report,
    replay_manifest,
    write_manifest,
)
from repro.obs.report import main as obs_main
from repro.shard.engine import run_serial
from repro.shard.spec import ShardPlan, ShardScenarioSpec, WorkloadSpec

HORIZON = 6.0


def world(seed: int = 42) -> ShardScenarioSpec:
    return ShardScenarioSpec(
        seed=seed,
        kind="uniform",
        n_nodes=10,
        spacing_m=110.0,
        workload=WorkloadSpec(rate_hz=1.5),
    )


@pytest.fixture(scope="module")
def reference():
    """One checkpointed serial run shared by the read-only tests."""
    return run_serial(world(), HORIZON, checkpoint_interval_s=2.0)


@pytest.fixture(scope="module")
def manifest(reference):
    return manifest_for_shard_result(
        world(), ShardPlan(n_shards=1), HORIZON, reference
    )


class TestContentHash:
    def test_stable_across_equal_specs(self):
        assert content_hash(world()) == content_hash(world())

    def test_sensitive_to_any_field(self):
        assert content_hash(world(42)) != content_hash(world(43))
        assert content_hash(world()) != content_hash(
            dataclasses.replace(world(), n_nodes=11)
        )

    def test_plain_values_hash_too(self):
        assert content_hash({"a": 1}) == content_hash({"a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestManifest:
    def test_carries_provenance(self, manifest, reference):
        assert manifest.schema == MANIFEST_SCHEMA
        assert manifest.root_seed == 42
        assert manifest.fingerprint == reference.fingerprint()
        assert manifest.replayable
        assert set(manifest.content_hashes) == {"scenario_spec", "shard_plan"}
        assert [row["name"] for row in manifest.rng_streams]
        assert all(row["draws"] is not None for row in manifest.rng_streams)
        assert len(manifest.checkpoints) == len(reference.rng_checkpoints)
        assert all(cp["prefix_fingerprint"] for cp in manifest.checkpoints)

    def test_write_load_round_trip(self, manifest, tmp_path):
        path = write_manifest(manifest, str(tmp_path / "run.manifest.json"))
        loaded = load_manifest(path)
        assert loaded.as_dict() == manifest.as_dict()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ForensicsError, match="not found"):
            load_manifest(str(tmp_path / "absent.json"))

    def test_load_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ForensicsError, match="not a run-manifest"):
            load_manifest(str(path))

    def test_manifest_path_convention(self):
        assert manifest_path("a/b.ring") == "a/b.ring.manifest.json"


class TestReplay:
    def test_unmodified_manifest_reproduces_exactly(self, manifest):
        report = replay_manifest(manifest)
        assert report["match"]
        assert report["replayed_fingerprint"] == manifest.fingerprint
        assert report["first_divergent_checkpoint"] is None
        assert all(row["match"] for row in report["checkpoints"])
        assert "REPLAY OK" in render_replay_report(report)

    def test_from_time_windows_the_checkpoints(self, manifest):
        report = replay_manifest(manifest, from_time=4.0)
        assert report["match"]
        assert all(row["time"] >= 4.0 for row in report["checkpoints"])
        assert len(report["checkpoints"]) < len(manifest.checkpoints)

    def test_tampered_fingerprint_diverges(self, manifest):
        forged = RunManifest.from_dict(
            {**manifest.as_dict(), "fingerprint": "0" * 32}
        )
        report = replay_manifest(forged)
        assert not report["match"]
        assert "REPLAY DIVERGED" in render_replay_report(report)

    def test_tampered_checkpoint_names_first_divergence(self, manifest):
        payload = manifest.as_dict()
        payload["checkpoints"] = [dict(cp) for cp in payload["checkpoints"]]
        payload["checkpoints"][1]["draws"] = {"net": 10**9}
        report = replay_manifest(RunManifest.from_dict(payload))
        assert not report["match"]
        assert report["first_divergent_checkpoint"] == pytest.approx(
            payload["checkpoints"][1]["time"]
        )

    def test_provenance_only_manifest_refuses(self):
        with pytest.raises(ReplayError, match="provenance-only"):
            replay_manifest(RunManifest(root_seed=1, fingerprint="ab"))

    def test_unknown_scenario_kind_refuses(self, manifest):
        payload = manifest.as_dict()
        payload["scenario"] = {**payload["scenario"], "kind": "teleporter"}
        with pytest.raises(ReplayError, match="teleporter"):
            replay_manifest(RunManifest.from_dict(payload))


class TestCheckpointNeutrality:
    def test_checkpoints_do_not_perturb_the_world(self):
        plain = run_serial(world(7), HORIZON)
        checked = run_serial(world(7), HORIZON, checkpoint_interval_s=1.0)
        assert checked.rng_checkpoints  # they actually fired
        assert plain.fingerprint() == checked.fingerprint()


class TestDiff:
    def test_identical_streams(self, reference):
        result = diff_records(reference.records, reference.records)
        assert result["identical"]
        assert result["first_divergence"] is None
        assert "IDENTICAL" in render_diff(result)

    def test_seed_perturbation_locates_first_divergence(self, reference):
        other = run_serial(world(43), HORIZON)
        result = diff_records(
            reference.records, other.records, context=3,
            label_a="s42", label_b="s43",
        )
        assert not result["identical"]
        first = result["first_divergence"]
        assert first["time"] >= 0.0 and first["category"]
        assert first["first_in"] in ("s42", "s43")
        assert first["context_a"] and first["context_b"]
        # The named divergence really is the earliest: everything before
        # index i matched pairwise, so both contexts agree up to it.
        i = first["index"]
        assert first["context_a"][: min(3, i)] == first["context_b"][: min(3, i)]
        text = render_diff(result)
        assert "DIVERGED at canonical record" in text

    def test_missing_suffix_is_a_divergence(self, reference):
        truncated = reference.records[: len(reference.records) // 2]
        result = diff_records(reference.records, truncated)
        assert not result["identical"]

    def test_eviction_warnings_surface(self, reference):
        noisy = list(reference.records) + [
            {"type": "meta", "event": "ring_evicted", "time": 1.0},
            {"type": "metric", "name": "trace.evicted", "value": 12.0},
        ]
        result = diff_records(reference.records, noisy, label_b="lossy")
        # Meta records are not trace records: streams still identical...
        assert result["identical"]
        # ...but the capture-quality warnings name the lossy side.
        assert any("lossy" in w and "evicted" in w for w in result["warnings"])


class TestCli:
    @pytest.fixture()
    def stamped_ring(self, tmp_path, monkeypatch):
        """Run with a ring export so the kernel stamps a manifest."""
        ring_dir = tmp_path / "rings"
        monkeypatch.setenv("REPRO_OBS_RING_DIR", str(ring_dir))
        run_serial(world(), HORIZON, checkpoint_interval_s=2.0)
        monkeypatch.delenv("REPRO_OBS_RING_DIR")
        (ring,) = [
            str(ring_dir / name)
            for name in sorted(os.listdir(ring_dir))
            if name.endswith(".ring")
        ]
        assert os.path.exists(manifest_path(ring))
        return ring

    def test_replay_of_ring_stamped_manifest_exits_zero(
        self, stamped_ring, capsys
    ):
        assert obs_main(["replay", manifest_path(stamped_ring)]) == 0
        assert "REPLAY OK" in capsys.readouterr().out

    def test_replay_exit_codes(self, manifest, tmp_path, capsys):
        forged = RunManifest.from_dict(
            {**manifest.as_dict(), "fingerprint": "f" * 32}
        )
        path = write_manifest(forged, str(tmp_path / "forged.manifest.json"))
        assert obs_main(["replay", path]) == 1
        assert obs_main(["replay", str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()

    def test_diff_cli_exit_codes_and_json(
        self, stamped_ring, tmp_path, monkeypatch, capsys
    ):
        other_dir = tmp_path / "other"
        monkeypatch.setenv("REPRO_OBS_RING_DIR", str(other_dir))
        run_serial(world(43), HORIZON)
        monkeypatch.delenv("REPRO_OBS_RING_DIR")
        out = str(tmp_path / "diff.json")
        assert (
            obs_main(["diff", stamped_ring, str(other_dir), "--json", out]) == 1
        )
        report = json.load(open(out))
        assert report["first_divergence"] is not None
        assert obs_main(["diff", stamped_ring, stamped_ring]) == 0
        assert obs_main(["diff", stamped_ring, str(tmp_path / "nope")]) == 2
        capsys.readouterr()
