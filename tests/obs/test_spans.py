"""Tests for hierarchical spans: nesting, scoping, durations, trace emission."""

import pytest

from repro.sim import Simulator


class TestSpanBasics:
    def test_context_manager_closes(self):
        sim = Simulator()
        with sim.span("phase") as span:
            assert span.open
        assert not span.open
        assert sim.spans.finished == [span]

    def test_nesting_parent_depth_path(self):
        sim = Simulator()
        with sim.span("outer") as outer:
            with sim.span("inner") as inner:
                assert inner.parent is outer
                assert inner.depth == 1
                assert inner.path == "outer;inner"
        assert outer.depth == 0
        assert outer.path == "outer"

    def test_attributes_carried(self):
        sim = Simulator()
        with sim.span("synthesis", composer="greedy", n_assets=100) as span:
            pass
        assert span.attrs == {"composer": "greedy", "n_assets": 100}

    def test_virtual_duration_tracks_sim_clock(self):
        sim = Simulator()
        span = sim.span("run")
        sim.call_in(4.5, span.close)
        sim.run()
        assert span.virtual_s == pytest.approx(4.5)

    def test_wall_duration_positive_and_monotone(self):
        sim = Simulator()
        with sim.span("w") as span:
            acc = sum(range(1000))
        assert acc >= 0
        assert span.wall_s >= 0.0
        assert span.wall_end >= span.wall_start

    def test_current_and_depth(self):
        sim = Simulator()
        assert sim.spans.current() is None
        assert sim.spans.depth() == 0
        with sim.span("a") as a:
            assert sim.spans.current() is a
            with sim.span("b") as b:
                assert sim.spans.current() is b
                assert sim.spans.depth() == 2
        assert sim.spans.depth() == 0

    def test_double_close_is_idempotent(self):
        sim = Simulator()
        span = sim.span("once")
        span.close()
        span.close()
        assert sim.spans.finished.count(span) == 1

    def test_summary_aggregates_by_path(self):
        sim = Simulator()
        for _ in range(3):
            with sim.span("load"):
                pass
        summary = sim.spans.summary()
        assert summary["load"]["count"] == 3


class TestSpanInterleaving:
    """Two processes holding overlapping spans must not corrupt each
    other's stacks — the generator interleave case per-scope stacks exist
    for."""

    def test_process_interleaved_spans_stay_scoped(self):
        sim = Simulator()

        def worker(name, start_delay):
            yield sim.timeout(start_delay)
            outer = sim.spans.span("work", scope=name)
            yield sim.timeout(1.0)
            inner = sim.spans.span("inner", scope=name)
            yield sim.timeout(1.0)
            inner.close()
            yield sim.timeout(1.0)
            outer.close()

        sim.spawn(worker("A", 0.0), name="A")
        sim.spawn(worker("B", 0.5), name="B")  # overlaps A the whole way
        sim.run()

        finished = [(s.path, s.scope, s.virtual_s) for s in sim.spans.finished]
        assert ("work;inner", "A", pytest.approx(1.0)) in [
            (p, sc, v) for p, sc, v in finished
        ]
        by_scope = {}
        for span in sim.spans.finished:
            by_scope.setdefault(span.scope, []).append(span)
        for scope in ("A", "B"):
            paths = sorted(s.path for s in by_scope[scope])
            assert paths == ["work", "work;inner"]
            outer = next(s for s in by_scope[scope] if s.path == "work")
            inner = next(s for s in by_scope[scope] if s.path == "work;inner")
            # Nesting survived the interleave: inner's parent is its own
            # scope's outer, not the other process's span.
            assert inner.parent is outer
            assert outer.virtual_s == pytest.approx(3.0)
            assert inner.virtual_s == pytest.approx(1.0)
        # Both scope stacks drained completely.
        assert sim.spans.depth("A") == 0
        assert sim.spans.depth("B") == 0

    def test_out_of_order_close_removes_by_identity(self):
        sim = Simulator()
        a = sim.spans.span("a")
        b = sim.spans.span("b")
        a.close()  # misnested: outer closed while inner still open
        assert sim.spans.current() is b
        b.close()
        assert sim.spans.depth() == 0
        assert {s.name for s in sim.spans.finished} == {"a", "b"}


class TestSpanTraceEmission:
    def test_closed_span_emits_trace_record(self):
        sim = Simulator()
        with sim.span("phase", k=1):
            pass
        records = sim.trace.filter("obs.span")
        assert len(records) == 1
        rec = records[0]
        assert rec.get("name") == "phase"
        assert rec.get("path") == "phase"
        assert rec.get("k") == 1

    def test_trace_record_has_no_wall_clock(self):
        # Wall time is nondeterministic; it must stay out of the in-memory
        # trace or span-instrumented runs lose stable fingerprints.
        sim = Simulator()
        with sim.span("phase"):
            pass
        rec = sim.trace.filter("obs.span")[0]
        assert rec.get("wall_s") is None
        assert rec.get("virtual_s") is not None

    def test_fingerprint_stable_across_span_instrumented_runs(self):
        def run():
            sim = Simulator(seed=9)

            def proc():
                with sim.span("step", scope="p"):
                    yield sim.timeout(2.0)

            sim.spawn(proc(), name="p")
            sim.run()
            return sim.trace.fingerprint()

        assert run() == run()

    def test_emit_trace_off_keeps_trace_clean(self):
        sim = Simulator()
        sim.spans.emit_trace = False
        with sim.span("quiet"):
            pass
        assert sim.trace.filter("obs.span") == []
        assert len(sim.spans.finished) == 1
