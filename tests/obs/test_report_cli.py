"""CLI behaviour of ``python -m repro.obs`` (report + trace subcommands).

The failure modes matter as much as the happy path: a missing or empty
export must produce a clear message on stderr and exit code 2, never a
traceback.
"""

import json

from repro.obs.report import main as obs_main


def _write_ndjson(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


def trace_records():
    return [
        {"type": "trace", "time": 0.0, "category": "pkt.send", "tid": 1,
         "uid": 1, "src": 1, "dst": 2, "kind": "data", "size_bits": 64,
         "flow": None, "rmsg": None},
        {"type": "trace", "time": 0.1, "category": "pkt.enqueue", "tid": 1,
         "span": 5, "parent": 0, "hop": 0, "src": 1, "dst": 2,
         "backoff_s": 0.01, "airtime_s": 0.02, "prop_s": 0.0,
         "extra_s": 0.0, "uid": 1, "kind": "data"},
        {"type": "trace", "time": 0.13, "category": "pkt.rx", "tid": 1,
         "span": 5, "src": 1, "dst": 2, "hop": 1},
        {"type": "trace", "time": 0.13, "category": "pkt.deliver", "tid": 1,
         "span": 5, "node": 2, "uid": 1, "hops": 1, "latency_s": 0.13},
    ]


class TestGracefulErrors:
    def test_report_missing_path_exits_2(self, tmp_path, capsys):
        rc = obs_main(["report", str(tmp_path / "nope.ndjson")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not found" in err

    def test_trace_missing_path_exits_2(self, tmp_path, capsys):
        rc = obs_main(["trace", str(tmp_path / "nope.ndjson")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "exports"
        empty.mkdir()
        rc = obs_main(["trace", str(empty)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no *.ndjson or *.ring exports" in err

    def test_export_without_pkt_records_exits_2(self, tmp_path, capsys):
        path = tmp_path / "plain.ndjson"
        _write_ndjson(path, [
            {"type": "trace", "time": 0.0, "category": "node.up", "node": 1},
        ])
        rc = obs_main(["trace", str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "REPRO_OBS_TRACE" in err  # points at the likely fix

    def test_empty_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        rc = obs_main(["report", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestTraceSubcommand:
    def test_renders_and_writes_artifacts(self, tmp_path, capsys):
        export = tmp_path / "run.ndjson"
        _write_ndjson(export, trace_records())
        digest_path = tmp_path / "digest.json"
        chrome_path = tmp_path / "chrome.json"
        rc = obs_main([
            "trace", str(export),
            "--json", str(digest_path),
            "--chrome", str(chrome_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out

        digest = json.loads(digest_path.read_text())
        assert digest["n_delivered"] == 1
        assert digest["critical_path"]["chain"], "critical path is nonempty"

        chrome = json.loads(chrome_path.read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_reads_directory_of_exports(self, tmp_path, capsys):
        exports = tmp_path / "exports"
        exports.mkdir()
        recs = trace_records()
        _write_ndjson(exports / "task-1-1.ndjson", recs[:2])
        _write_ndjson(exports / "task-1-2.ndjson", recs[2:])
        rc = obs_main(["trace", str(exports)])
        assert rc == 0
        assert "critical path" in capsys.readouterr().out


class TestReportSchemaAndRings:
    def test_report_json_carries_schema_version(self, tmp_path):
        export = tmp_path / "run.ndjson"
        _write_ndjson(export, trace_records())
        out_json = tmp_path / "report.json"
        rc = obs_main(["report", str(export), "--json", str(out_json)])
        assert rc == 0
        report = json.loads(out_json.read_text())
        assert report["schema"] == "obs-report/2"
        assert report["skipped_lines"] == 0

    def test_report_reads_mixed_ndjson_and_ring_directory(self, tmp_path):
        from repro.obs.telemetry import BinaryTraceRing

        exports = tmp_path / "exports"
        exports.mkdir()
        _write_ndjson(exports / "shard0-task-1-1.ndjson", trace_records()[:2])
        ring = BinaryTraceRing()
        for rec in trace_records()[2:]:
            fields = sorted(
                (k, v) for k, v in rec.items()
                if k not in ("type", "time", "category")
            )
            ring.append(rec["time"], rec["category"], fields)
        ring.dump(
            str(exports / "shard1-task-1-2.ring"),
            aux_records=[{"type": "metric", "name": "net.tx",
                          "kind": "counter", "value": 5.0}],
        )
        out_json = tmp_path / "report.json"
        rc = obs_main(["report", str(exports), "--json", str(out_json)])
        assert rc == 0
        report = json.loads(out_json.read_text())
        # All four trace records from both formats, plus the aux metric.
        assert sum(report["trace_counts"].values()) == 4
        assert report["metrics"]["net.tx"]["value"] == 5.0

    def test_trace_analyzer_reads_ring_only_directory(self, tmp_path, capsys):
        from repro.obs.telemetry import BinaryTraceRing

        exports = tmp_path / "exports"
        exports.mkdir()
        ring = BinaryTraceRing()
        for rec in trace_records():
            fields = sorted(
                (k, v) for k, v in rec.items()
                if k not in ("type", "time", "category")
            )
            ring.append(rec["time"], rec["category"], fields)
        ring.dump(str(exports / "task.ring"))
        rc = obs_main(["trace", str(exports)])
        assert rc == 0
        assert "critical path" in capsys.readouterr().out


class TestLiveSubcommand:
    def _export_with_metrics(self, path):
        _write_ndjson(path, [
            {"type": "metric", "name": "route.flooding.tx",
             "kind": "counter", "value": 10.0},
            {"type": "metric", "name": "route.flooding.delivered",
             "kind": "counter", "value": 9.0},
            {"type": "metric", "name": "service.breaker.greedy.state",
             "kind": "gauge", "value": 0.0},
            {"type": "metric", "name": "shard.lag_events",
             "kind": "gauge", "value": 3.0},
            {"type": "meta", "event": "export", "sim_now": 10.0,
             "events_processed": 1000, "events_per_sec": 5000.0},
        ])

    def test_live_single_snapshot_ok(self, tmp_path, capsys):
        export = tmp_path / "run.ndjson"
        self._export_with_metrics(export)
        rc = obs_main([
            "live", str(export), "--count", "1",
            "--slo", "kernel.events_per_sec>=1000",
            "--slo", "shard.lag_events<=5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events/sec=5000.0" in out
        assert "flooding: delivery_ratio=0.900" in out
        assert "greedy=closed" in out
        assert "lag_events=3" in out

    def test_live_exits_1_on_slo_breach(self, tmp_path, capsys):
        export = tmp_path / "run.ndjson"
        self._export_with_metrics(export)
        out_json = tmp_path / "live.json"
        rc = obs_main([
            "live", str(export), "--count", "1",
            "--slo", "routers.flooding.delivery_ratio>=0.95",
            "--json", str(out_json),
        ])
        assert rc == 1
        assert "SLO BREACH" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["slo_breaches"]
        assert payload["snapshot"]["kernel"]["events_per_sec"] == 5000.0

    def test_live_missing_export_exits_2(self, tmp_path, capsys):
        rc = obs_main(["live", str(tmp_path / "nope"), "--count", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_live_rejects_malformed_slo(self, tmp_path, capsys):
        export = tmp_path / "run.ndjson"
        self._export_with_metrics(export)
        rc = obs_main(["live", str(export), "--count", "1",
                       "--slo", "events_per_sec==fast"])
        assert rc == 2
        assert "bad SLO" in capsys.readouterr().err
