"""Tests for the MetricsRegistry and the net/faults instrumentation feeding it."""

import math

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim import Simulator
from repro.faults import FaultInjector
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter
from repro.net.transport import MessageService
from repro.util.geometry import Point


class TestInstruments:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.as_dict() == {"kind": "counter", "name": "c", "value": 3.5}

    def test_gauge(self):
        g = Gauge("g")
        g.set(4.0)
        g.add(-1.0)
        assert g.value == 3.0

    def test_histogram_summary(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.004, 0.2):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4.0
        assert s["mean"] == pytest.approx(0.05175)
        assert s["min"] == 0.001
        assert s["max"] == 0.2
        assert 0.0 < s["p50"] <= s["p95"] <= 0.25

    def test_histogram_empty_is_nan(self):
        s = Histogram("h").summary()
        assert math.isnan(s["mean"])
        assert math.isnan(s["p50"])

    def test_histogram_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(50.0)
        assert h.counts[-1] == 1
        assert h.quantile(1.0) == 50.0

    def test_histogram_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_registry_caches_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.names() == ["h", "x"]

    def test_as_records_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        reg.histogram("c").observe(0.01)
        records = reg.as_records()
        assert [r["name"] for r in records] == ["a", "b", "c"]
        assert all(r["type"] == "metric" for r in records)
        kinds = {r["name"]: r["kind"] for r in records}
        assert kinds == {"a": "counter", "b": "gauge", "c": "histogram"}


def _line_network(n=6, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    for i in range(1, n + 1):
        net.create_node(i, Point(i * 75.0, 0.0))
    return sim, net


class TestNetInstrumentation:
    def test_tx_rx_counters_track_traffic(self):
        sim, net = _line_network()
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        service = MessageService(router)
        sim.call_in(1.0, lambda: service.send(1, 6))
        sim.run(until=60.0)
        reg = sim.registry
        assert reg.counter("net.tx").value > 0
        assert reg.counter("net.rx").value > 0
        # Registry tx increments lockstep with the legacy attempt counter.
        assert reg.counter("net.tx").value == sim.metrics.counter(
            "net.tx_attempts"
        )

    def test_mac_backoff_histogram_observed(self):
        sim, net = _line_network()
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        service = MessageService(router)
        sim.call_in(1.0, lambda: service.send(1, 6))
        sim.run(until=60.0)
        h = sim.registry.histogram("net.mac_backoff_s")
        assert h.count > 0

    def test_per_router_control_overhead_counted(self):
        sim, net = _line_network()
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        service = MessageService(router)
        sim.call_in(1.0, lambda: service.send(1, 6))
        sim.run(until=60.0)
        snap = sim.registry.snapshot()
        control = [n for n in snap if n.startswith("route.") and "control" in n]
        # AODV floods RREQs: control packets and bits must both register.
        assert any(n.endswith("control_tx") for n in control)
        assert any(n.endswith("control_bits") for n in control)
        tx_name = next(n for n in control if n.endswith("control_tx"))
        assert snap[tx_name]["value"] > 0


class TestFaultInstrumentation:
    def test_injections_and_recoveries_counted(self):
        sim, net = _line_network()
        injector = FaultInjector(net)
        injector.gremlin(drop_p=0.05, start_s=1.0, duration_s=10.0)
        sim.run(until=30.0)
        reg = sim.registry
        assert reg.counter("faults.injections").value >= 1
        assert reg.counter("faults.recoveries").value >= 1
        per_name = [
            n for n in reg.names()
            if n.startswith("faults.") and n.endswith(".injections")
            and n != "faults.injections"
        ]
        assert per_name  # per-fault-name counter exists alongside the total

    def test_churn_counts_crashes_and_restarts(self):
        sim, net = _line_network()
        injector = FaultInjector(net)
        injector.node_churn(mtbf_s=20.0, mean_downtime_s=5.0, start_s=0.0)
        sim.run(until=200.0)
        reg = sim.registry
        assert reg.counter("faults.crashes").value > 0
        assert reg.counter("faults.restarts").value > 0
        # Registry agrees with the legacy MetricRecorder counters.
        assert reg.counter("faults.crashes").value == sim.metrics.counter(
            "faults.crashes"
        )
