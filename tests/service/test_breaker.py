"""CircuitBreaker state machine under a fake clock (no real sleeping)."""

import pytest

from repro.errors import ConfigurationError
from repro.service import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


def make_breaker(clock, **kwargs):
    defaults = dict(
        window=10, failure_threshold=0.5, min_calls=4, open_s=1.0,
        half_open_probes=2,
    )
    defaults.update(kwargs)
    return CircuitBreaker("composer", clock=clock, **defaults)


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_too_few_calls_never_open(self, clock):
        breaker = make_breaker(clock, min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_windowed_failure_rate(self, clock):
        breaker = make_breaker(clock)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # 2/4 = 0.5 >= threshold
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_old_outcomes_slide_out_of_window(self, clock):
        breaker = make_breaker(clock, window=4)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # A fresh breaker with the same window but successes drowning the
        # failures never opens.
        healthy = make_breaker(clock, window=4)
        healthy.record_failure()
        for _ in range(4):
            healthy.record_success()
        healthy.record_failure()  # window is [s, s, s, f] -> rate 0.25
        assert healthy.state is BreakerState.CLOSED


class TestOpenAndRecovery:
    def open_breaker(self, clock, **kwargs):
        breaker = make_breaker(clock, **kwargs)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_retry_in_counts_down(self, clock):
        breaker = self.open_breaker(clock)
        assert breaker.retry_in_s() == pytest.approx(1.0)
        clock.advance(0.6)
        assert breaker.retry_in_s() == pytest.approx(0.4)

    def test_half_open_after_cooldown(self, clock):
        breaker = self.open_breaker(clock)
        clock.advance(1.01)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_bounds_probes(self, clock):
        breaker = self.open_breaker(clock)
        clock.advance(1.01)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # only 2 probes at a time

    def test_probe_successes_reclose(self, clock):
        breaker = self.open_breaker(clock)
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate() == 0.0  # window cleared on close

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = self.open_breaker(clock)
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_in_s() == pytest.approx(1.0)

    def test_transition_log_names_full_cycle(self, clock):
        breaker = self.open_breaker(clock)
        clock.advance(1.01)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_success()
        states = [(old, new) for _t, old, new in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_transition_callback_fires(self, clock):
        seen = []
        breaker = CircuitBreaker(
            "b", clock=clock, window=4, min_calls=2, failure_threshold=0.5,
            open_s=1.0,
            on_transition=lambda name, old, new: seen.append((name, new)),
        )
        breaker.record_failure()
        breaker.record_failure()
        assert seen == [("b", BreakerState.OPEN)]


class TestValidation:
    def test_bad_parameters_raise(self, clock):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", window=0, clock=clock)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", failure_threshold=0.0, clock=clock)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", open_s=0.0, clock=clock)
