"""Snapshot isolation: epochs are immutable views over a churning world."""


from repro.service import SnapshotHub


class TestEpochIsolation:
    def test_snapshot_survives_node_kill(self, small_world):
        w = small_world
        snap = w.hub.publish()
        victim = w.inventory.all()[0]
        assert snap.by_id(victim.id).alive
        w.network.fail_node(victim.node_id)
        # The live asset is down; the captured epoch still says alive.
        assert not victim.alive
        assert snap.by_id(victim.id).alive
        assert victim.node_id in snap.topology.graph

    def test_snapshot_survives_battery_drain(self, small_world):
        w = small_world
        asset = w.inventory.all()[0]
        snap = w.hub.publish()
        frozen = snap.by_id(asset.id).battery.fraction_remaining
        asset.battery.remaining_j = 0.0
        assert snap.by_id(asset.id).battery.fraction_remaining == frozen

    def test_pool_excludes_dead_assets_at_publish(self, small_world):
        w = small_world
        victim = w.inventory.all()[3]
        w.network.fail_node(victim.node_id)
        snap = w.hub.publish()
        assert snap.by_id(victim.id) is None
        assert snap.size == len(w.inventory.all()) - 1


class TestHub:
    def test_epochs_are_monotonic(self, small_world):
        hub = small_world.hub
        first = hub.publish()
        second = hub.publish()
        assert second.epoch == first.epoch + 1
        assert hub.epoch == second.epoch

    def test_current_is_stable_without_churn(self, small_world):
        hub = small_world.hub
        a = hub.current()
        b = hub.current()
        assert a is b
        assert hub.publishes == 1

    def test_churn_triggers_lazy_republish(self, small_world):
        w = small_world
        before = w.hub.current()
        victim = w.inventory.all()[0]
        w.network.fail_node(victim.node_id)
        after = w.hub.current()  # min_refresh_s=0 -> republish immediately
        assert after.epoch == before.epoch + 1
        assert after.by_id(victim.id) is None
        assert before.by_id(victim.id) is not None

    def test_refresh_is_rate_limited(self, small_world):
        w = small_world
        clock = FakeClock()
        hub = SnapshotHub(
            w.inventory, min_refresh_s=10.0, clock=clock
        )
        first = hub.current()
        w.network.fail_node(w.inventory.all()[0].node_id)
        # Dirty, but not enough wall time elapsed: same epoch served.
        assert hub.current() is first
        clock.advance(11.0)
        assert hub.current().epoch == first.epoch + 1

    def test_mark_dirty_forces_republish(self, small_world):
        hub = small_world.hub
        first = hub.current()
        hub.mark_dirty()
        assert hub.current().epoch == first.epoch + 1


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt
