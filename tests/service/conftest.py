"""Shared fixtures for the synthesis-service suite.

``small_world`` builds a compact live world — a grid of ground sensors
plus a few compute-heavy nodes around a 400x400 m area — dense enough
that the real :class:`GreedyComposer` produces connected composites, and
small enough that a live compose takes milliseconds.
"""

import pytest

from repro.core.mission import MissionGoal, MissionType
from repro.net.channel import Channel
from repro.net.node import Network
from repro.service import SnapshotHub, SynthesisQuery
from repro.sim import Simulator
from repro.things.asset import AssetInventory
from repro.things.capabilities import SensingModality, make_profile
from repro.util.geometry import Point, Region


class SmallWorld:
    def __init__(self, seed: int = 7, side: int = 6, spacing: float = 80.0):
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed)
        )
        self.inventory = AssetInventory(self.network)
        sensor = make_profile("ground_sensor", sensing_range_m=120.0)
        ugv = make_profile("ugv")
        for i in range(side):
            for j in range(side):
                profile = ugv if (i + j) % 5 == 0 else sensor
                self.inventory.create(
                    profile, Point(i * spacing, j * spacing), with_battery=True
                )
        self.region = Region(0.0, 0.0, (side - 1) * spacing, (side - 1) * spacing)
        self.hub = SnapshotHub(self.inventory, min_refresh_s=0.0)

    def goal(self, *, frac: float = 0.5, index: int = 0) -> MissionGoal:
        """A small surveillance goal; ``index`` varies the area for
        distinct cache keys."""
        span = self.region.x_max * frac
        x0 = min(index * 20.0, self.region.x_max - span)
        return MissionGoal(
            MissionType.SURVEIL,
            Region(x0, 0.0, x0 + span, span),
            min_coverage=0.5,
            modalities=frozenset(
                {SensingModality.SEISMIC, SensingModality.ACOUSTIC}
            ),
        )

    def query(self, **kwargs) -> SynthesisQuery:
        kwargs.setdefault("goal", self.goal())
        return SynthesisQuery(**kwargs)


@pytest.fixture
def small_world():
    return SmallWorld()
