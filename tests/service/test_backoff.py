"""BackoffPolicy: envelope, cap, jitter bounds, determinism under seed."""

import numpy as np
import pytest

from repro.util.backoff import BackoffPolicy


class TestEnvelope:
    def test_exponential_growth_without_rng(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, max_s=100.0, jitter=0.5)
        assert policy.schedule(4) == [0.1, 0.2, 0.4, 0.8]

    def test_cap_is_hard(self):
        policy = BackoffPolicy(base_s=1.0, factor=10.0, max_s=3.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for attempt in range(1, 10):
            assert policy.delay_s(attempt, rng) <= 3.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_s(0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)


class TestJitter:
    def test_jitter_stays_inside_band(self):
        policy = BackoffPolicy(base_s=1.0, factor=1.0, max_s=10.0, jitter=0.4)
        rng = np.random.default_rng(42)
        draws = [policy.delay_s(1, rng) for _ in range(200)]
        assert all(0.6 <= d <= 1.0 for d in draws)
        # The band is actually exercised, not collapsed to one value.
        assert max(draws) - min(draws) > 0.2

    def test_zero_jitter_is_deterministic(self):
        policy = BackoffPolicy(base_s=0.5, factor=3.0, max_s=10.0, jitter=0.0)
        rng = np.random.default_rng(1)
        assert policy.delay_s(2, rng) == pytest.approx(1.5)


class TestDeterminismUnderSeed:
    def test_same_seed_same_schedule(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, max_s=5.0, jitter=0.5)
        a = [policy.delay_for(k, seed=99, key="task-a") for k in range(1, 6)]
        b = [policy.delay_for(k, seed=99, key="task-a") for k in range(1, 6)]
        assert a == b

    def test_key_and_seed_decorrelate(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, max_s=5.0, jitter=0.5)
        a = policy.delay_for(1, seed=99, key="task-a")
        b = policy.delay_for(1, seed=99, key="task-b")
        c = policy.delay_for(1, seed=100, key="task-a")
        assert a != b
        assert a != c

    def test_call_order_does_not_matter(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, max_s=5.0, jitter=0.5)
        forward = [policy.delay_for(k, seed=7, key="t") for k in (1, 2, 3)]
        backward = [policy.delay_for(k, seed=7, key="t") for k in (3, 2, 1)]
        assert forward == backward[::-1]
