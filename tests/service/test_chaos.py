"""Chaos suite: the resilience stack under injected faults and live churn.

These are the ISSUE's SLO assertions: under slow/failing backends, worker
stalls, and inventory churn mid-query, every query still reaches a typed
terminal outcome within its budget, nothing hangs, degraded answers are
flagged with staleness metadata, and the breaker provably opens *and*
re-closes once the backend heals.
"""

import asyncio

from repro.core.synthesis.composer import GreedyComposer
from repro.service import OutcomeStatus, SynthesisService
from repro.service.chaos import (
    ChaosBackend,
    ChaosConfig,
    ChaosError,
    InventoryChurner,
    check_slos,
    run_query_load,
)
from repro.util.backoff import BackoffPolicy


def run(coro):
    return asyncio.run(coro)


def chaos_service(world, chaos: ChaosBackend, **kwargs) -> SynthesisService:
    kwargs.setdefault("backoff", BackoffPolicy(base_s=0.001, max_s=0.01))
    kwargs.setdefault("max_retries", 1)
    kwargs.setdefault("breaker_min_calls", 4)
    kwargs.setdefault("breaker_window", 8)
    kwargs.setdefault("breaker_open_s", 0.1)
    return SynthesisService(world.hub, backends={"greedy": chaos}, **kwargs)


class TestChaosBackend:
    def test_seeded_fault_schedule_is_replayable(self, small_world):
        cfg = ChaosConfig(error_prob=0.5, seed=3)

        def fault_pattern():
            backend = ChaosBackend(GreedyComposer(), cfg)
            pattern = []
            for _ in range(20):
                try:
                    backend.compose(None, [], None)  # error path never composes
                except ChaosError:
                    pattern.append("error")
                except Exception:
                    pattern.append("through")  # reached the real composer
            return pattern

        assert fault_pattern() == fault_pattern()

    def test_fault_counters_track_injections(self, small_world):
        backend = ChaosBackend(
            GreedyComposer(), ChaosConfig(error_prob=1.0, seed=1)
        )
        for _ in range(5):
            try:
                backend.compose(None, [], None)
            except ChaosError:
                pass
        assert backend.calls == 5
        assert backend.faults["error"] == 5


class TestErrorChaos:
    def test_flaky_backend_all_terminal(self, small_world):
        backend = ChaosBackend(
            GreedyComposer(),
            ChaosConfig(error_prob=0.3, slow_prob=0.2, slow_s=0.01, seed=11),
        )

        async def scenario():
            svc = chaos_service(small_world, backend)
            async with svc:
                queries = [
                    small_world.query(
                        goal=small_world.goal(index=i % 6), deadline_s=1.0
                    )
                    for i in range(60)
                ]
                outcomes = await run_query_load(
                    svc, queries, concurrency=16, hang_timeout_s=20.0
                )
                return outcomes, check_slos(outcomes, svc)

        outcomes, report = run(scenario())
        assert report.ok, report.describe()
        assert len(outcomes) == 60
        answered = [o for o in outcomes if o.ok]
        assert answered, "chaos run produced no answers at all"

    def test_stalled_workers_do_not_hang_queries(self, small_world):
        backend = ChaosBackend(
            GreedyComposer(),
            ChaosConfig(stall_prob=0.4, stall_s=1.0, seed=5),
        )

        async def scenario():
            svc = chaos_service(
                small_world, backend, max_concurrent=4, deadline_grace_s=0.5
            )
            async with svc:
                queries = [
                    small_world.query(
                        goal=small_world.goal(index=i % 4), deadline_s=0.4
                    )
                    for i in range(24)
                ]
                outcomes = await run_query_load(
                    svc, queries, concurrency=8, hang_timeout_s=20.0
                )
                return check_slos(outcomes, svc)

        report = run(scenario())
        assert report.ok, report.describe()


class TestChurnChaos:
    def test_inventory_churn_mid_query(self, small_world):
        backend = ChaosBackend(
            GreedyComposer(),
            ChaosConfig(slow_prob=0.5, slow_s=0.03, seed=9),
        )

        async def scenario():
            svc = chaos_service(small_world, backend)
            churner = InventoryChurner(
                small_world.hub,
                kill_fraction=0.1,
                downtime_ticks=2,
                interval_s=0.02,
                seed=4,
            )
            async with svc:
                churn_task = churner.start(duration_s=5.0)
                queries = [
                    small_world.query(
                        goal=small_world.goal(index=i % 6), deadline_s=1.0
                    )
                    for i in range(48)
                ]
                outcomes = await run_query_load(
                    svc, queries, concurrency=12, hang_timeout_s=25.0
                )
                await churner.stop()
                await asyncio.gather(churn_task, return_exceptions=True)
                return outcomes, churner, check_slos(outcomes, svc)

        outcomes, churner, report = run(scenario())
        assert report.ok, report.describe()
        assert churner.kills > 0, "churner never killed a node"
        # Churn healed at the end: the final epoch has the full population.
        assert small_world.hub.current().size == len(small_world.inventory.all())
        # Epochs advanced underneath the queries while they ran.
        epochs = {o.epoch for o in outcomes if o.epoch is not None}
        assert len(epochs) > 1, "no query ever saw a different epoch"


class TestBreakerCycleUnderChaos:
    def test_sick_then_healed_backend_cycles_breaker(self, small_world):
        backend = ChaosBackend(
            GreedyComposer(), ChaosConfig(error_prob=1.0, seed=2)
        )

        async def scenario():
            svc = chaos_service(small_world, backend, max_retries=0)
            async with svc:
                # Phase 1: the backend is fully sick — drive the breaker open.
                sick = [
                    small_world.query(
                        goal=small_world.goal(index=i % 6),
                        deadline_s=0.5,
                        max_stale_s=None,
                    )
                    for i in range(12)
                ]
                outcomes = list(
                    await run_query_load(svc, sick, concurrency=4)
                )
                assert svc.breaker_for("greedy").snapshot()["state"] == "open"
                # Phase 2: heal the backend, wait out the cooldown, and let
                # probe traffic re-close the breaker.
                backend.config = ChaosConfig()
                await asyncio.sleep(0.12)
                healed = [
                    small_world.query(
                        goal=small_world.goal(index=6 + i), deadline_s=1.0
                    )
                    for i in range(6)
                ]
                outcomes += await run_query_load(svc, healed, concurrency=2)
                return outcomes, check_slos(
                    outcomes, svc, require_breaker_cycle=True
                )

        outcomes, report = run(scenario())
        assert report.ok, report.describe()
        assert report.breaker_opened and report.breaker_reclosed
        assert any(o.status is OutcomeStatus.OK for o in outcomes[-6:])
