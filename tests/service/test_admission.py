"""Bulkhead semantics: bounded concurrency, bounded waiting, typed shed."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service import Bulkhead, QueryRejected, RejectReason


def run(coro):
    return asyncio.run(coro)


class TestBulkhead:
    def test_concurrency_is_bounded(self):
        async def scenario():
            bh = Bulkhead(max_concurrent=2, max_waiting=10)
            await bh.acquire()
            await bh.acquire()
            assert bh.held == 2
            waiter = asyncio.ensure_future(bh.acquire())
            await asyncio.sleep(0.01)
            assert not waiter.done()
            assert bh.waiting == 1
            bh.release()
            await waiter
            assert bh.held == 2

        run(scenario())

    def test_waiting_room_sheds_with_reason(self):
        async def scenario():
            bh = Bulkhead(max_concurrent=1, max_waiting=1)
            await bh.acquire()
            waiter = asyncio.ensure_future(bh.acquire())
            await asyncio.sleep(0.01)
            with pytest.raises(QueryRejected) as err:
                await bh.acquire()
            assert err.value.reason is RejectReason.QUEUE_FULL
            assert bh.shed_count == 1
            bh.release()
            await waiter

        run(scenario())

    def test_zero_waiting_room_sheds_immediately(self):
        async def scenario():
            bh = Bulkhead(max_concurrent=1, max_waiting=0)
            await bh.acquire()
            with pytest.raises(QueryRejected) as err:
                await bh.acquire()
            assert err.value.reason is RejectReason.QUEUE_FULL

        run(scenario())

    def test_timeout_rejects_as_deadline(self):
        async def scenario():
            bh = Bulkhead(max_concurrent=1, max_waiting=4)
            await bh.acquire()
            with pytest.raises(QueryRejected) as err:
                await bh.acquire(timeout_s=0.02)
            assert err.value.reason is RejectReason.DEADLINE
            assert bh.waiting == 0  # the waiter cleaned up after itself

        run(scenario())

    def test_snapshot_reports_pressure(self):
        async def scenario():
            bh = Bulkhead(max_concurrent=2, max_waiting=3)
            await bh.acquire()
            snap = bh.snapshot()
            assert snap["held"] == 1
            assert snap["max_concurrent"] == 2
            assert snap["shed"] == 0

        run(scenario())

    def test_invalid_sizing_raises(self):
        with pytest.raises(ConfigurationError):
            Bulkhead(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            Bulkhead(max_concurrent=1, max_waiting=-1)
