"""SynthesisService end-to-end: deadlines, retries, breaker, degradation.

Every test drives the real asyncio service over the ``small_world``
fixture; faulty backends are plain objects with a ``compose`` method so
the failures exercise the production retry/breaker/degraded machinery.
"""

import asyncio
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.core.synthesis.composer import GreedyComposer
from repro.service import (
    OutcomeStatus,
    SynthesisService,
)
from repro.util.backoff import BackoffPolicy


def run(coro):
    return asyncio.run(coro)


def make_service(world, **kwargs):
    kwargs.setdefault("backoff", BackoffPolicy(base_s=0.001, max_s=0.01))
    return SynthesisService(world.hub, **kwargs)


class FailingBackend:
    """Fails the first ``fail_first`` calls, then delegates to greedy."""

    def __init__(self, fail_first: int = 10**9):
        self.fail_first = fail_first
        self.calls = 0
        self.inner = GreedyComposer()

    def compose(self, requirements, candidates, topology):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError("backend down")
        return self.inner.compose(requirements, candidates, topology)


class SlowBackend:
    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.inner = GreedyComposer()

    def compose(self, requirements, candidates, topology):
        time.sleep(self.delay_s)
        return self.inner.compose(requirements, candidates, topology)


class TestHappyPath:
    def test_live_answer_then_fresh_cache_hit(self, small_world):
        async def scenario():
            async with make_service(small_world) as svc:
                first = await svc.submit(small_world.query())
                second = await svc.submit(small_world.query())
            return first, second

        first, second = run(scenario())
        assert first.status is OutcomeStatus.OK
        assert not first.cached
        assert first.answer["members"] >= 1
        assert first.answer["coverage"] >= 0.5
        assert second.status is OutcomeStatus.OK
        assert second.cached
        assert second.answer == first.answer

    def test_fresh_cache_is_per_epoch(self, small_world):
        async def scenario():
            async with make_service(small_world) as svc:
                first = await svc.submit(small_world.query())
                small_world.hub.publish()  # world moved on
                second = await svc.submit(small_world.query())
            return first, second

        first, second = run(scenario())
        assert not first.cached
        assert not second.cached  # recomposed at the new epoch
        assert second.epoch == first.epoch + 1

    def test_concurrent_queries_all_terminal(self, small_world):
        async def scenario():
            async with make_service(small_world) as svc:
                queries = [
                    small_world.query(goal=small_world.goal(index=i % 4))
                    for i in range(32)
                ]
                return await asyncio.gather(*(svc.submit(q) for q in queries))

        outcomes = run(scenario())
        assert len(outcomes) == 32
        assert all(o.status is OutcomeStatus.OK for o in outcomes)


class TestRejection:
    def test_unknown_composer_rejected(self, small_world):
        async def scenario():
            async with make_service(small_world) as svc:
                return await svc.submit(small_world.query(composer="quantum"))

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.REJECTED
        assert outcome.reason == "no_backend"

    def test_submit_before_start_rejected(self, small_world):
        async def scenario():
            svc = make_service(small_world)
            return await svc.submit(small_world.query())

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.REJECTED
        assert outcome.reason == "shutdown"

    def test_overload_sheds_typed(self, small_world):
        async def scenario():
            svc = make_service(
                small_world,
                backends={"greedy": SlowBackend(0.3)},
                max_concurrent=1,
                max_waiting=0,
                max_retries=0,
            )
            async with svc:
                slow = asyncio.ensure_future(
                    svc.submit(small_world.query(deadline_s=2.0))
                )
                await asyncio.sleep(0.05)  # let it occupy the only slot
                shed = await svc.submit(
                    small_world.query(
                        goal=small_world.goal(index=1), max_stale_s=None
                    )
                )
                first = await slow
            return first, shed

        first, shed = run(scenario())
        assert first.status is OutcomeStatus.OK
        assert shed.status is OutcomeStatus.REJECTED
        assert shed.reason == "queue_full"


class TestFailureAndDegradation:
    def test_all_attempts_fail_then_failed(self, small_world):
        backend = FailingBackend()

        async def scenario():
            svc = make_service(
                small_world, backends={"greedy": backend}, max_retries=2
            )
            async with svc:
                return await svc.submit(small_world.query(max_stale_s=None))

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.attempts == 3
        assert "backend down" in outcome.reason
        assert backend.calls == 3

    def test_transient_failure_retried_to_success(self, small_world):
        backend = FailingBackend(fail_first=1)

        async def scenario():
            svc = make_service(
                small_world, backends={"greedy": backend}, max_retries=2
            )
            async with svc:
                return await svc.submit(small_world.query())

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.OK
        assert outcome.attempts == 2

    def test_degraded_serves_stale_with_metadata(self, small_world):
        backend = FailingBackend(fail_first=0)

        async def scenario():
            svc = make_service(
                small_world, backends={"greedy": backend}, max_retries=0
            )
            async with svc:
                primed = await svc.submit(small_world.query())
                backend.fail_first = 10**9  # backend dies
                small_world.hub.publish()   # and the world moves on
                degraded = await svc.submit(small_world.query())
            return primed, degraded

        primed, degraded = run(scenario())
        assert primed.status is OutcomeStatus.OK
        assert degraded.status is OutcomeStatus.DEGRADED
        assert degraded.degraded
        assert degraded.answer == primed.answer
        assert degraded.stale_age_s is not None and degraded.stale_age_s >= 0.0
        assert degraded.epochs_behind is not None and degraded.epochs_behind >= 1
        assert "backend down" in degraded.reason

    def test_max_stale_none_disables_degraded(self, small_world):
        backend = FailingBackend(fail_first=0)

        async def scenario():
            svc = make_service(
                small_world, backends={"greedy": backend}, max_retries=0
            )
            async with svc:
                await svc.submit(small_world.query())
                backend.fail_first = 10**9
                small_world.hub.publish()
                return await svc.submit(small_world.query(max_stale_s=None))

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.FAILED

    def test_slow_backend_bounded_by_deadline(self, small_world):
        async def scenario():
            svc = make_service(
                small_world,
                backends={"greedy": SlowBackend(5.0)},
                max_retries=0,
                deadline_grace_s=0.5,
            )
            async with svc:
                t0 = time.monotonic()
                outcome = await svc.submit(
                    small_world.query(deadline_s=0.2, max_stale_s=None)
                )
                elapsed = time.monotonic() - t0
            return outcome, elapsed

        outcome, elapsed = run(scenario())
        assert outcome.status is OutcomeStatus.FAILED
        assert "exceeded" in outcome.reason
        assert elapsed < 1.5  # deadline + grace, not the 5 s backend stall


class TestBreaker:
    def test_breaker_opens_then_recovers(self, small_world):
        backend = FailingBackend()

        async def scenario():
            svc = make_service(
                small_world,
                backends={"greedy": backend},
                max_retries=0,
                breaker_min_calls=3,
                breaker_window=6,
                breaker_open_s=0.05,
            )
            async with svc:
                for i in range(4):
                    await svc.submit(
                        small_world.query(
                            goal=small_world.goal(index=i), max_stale_s=None
                        )
                    )
                breaker = svc.breaker_for("greedy")
                assert breaker.snapshot()["state"] == "open"
                # While open, the live path is not even attempted.
                calls_before = backend.calls
                blocked = await svc.submit(
                    small_world.query(max_stale_s=None)
                )
                assert blocked.status is OutcomeStatus.REJECTED
                assert blocked.reason == "breaker_open"
                assert backend.calls == calls_before
                # Backend heals; after the cooldown, probes re-close it.
                backend.fail_first = 0
                await asyncio.sleep(0.06)
                # Two successful probes (distinct goals so neither is a
                # fresh-cache hit) walk half_open back to closed.
                for i in (5, 6):
                    recovered = await svc.submit(
                        small_world.query(goal=small_world.goal(index=i))
                    )
                    assert recovered.status is OutcomeStatus.OK
                states = [new for _t, _old, new in breaker.transitions]
                assert "open" in states
                assert states[-1] == "closed"
            return True

        assert run(scenario())

    def test_open_breaker_falls_back_to_stale(self, small_world):
        backend = FailingBackend(fail_first=0)

        async def scenario():
            svc = make_service(
                small_world,
                backends={"greedy": backend},
                max_retries=0,
                breaker_min_calls=2,
                breaker_window=4,
                breaker_open_s=30.0,
            )
            async with svc:
                await svc.submit(small_world.query())
                backend.fail_first = 10**9
                small_world.hub.publish()
                for _ in range(3):
                    await svc.submit(small_world.query())
                small_world.hub.publish()
                return await svc.submit(small_world.query())

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.reason == "breaker_open"


class TestDiskCache:
    def test_write_through_survives_restart(self, small_world, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        async def scenario():
            async with make_service(small_world, cache=cache) as svc:
                return await svc.submit(small_world.query())

        primed = run(scenario())
        assert primed.status is OutcomeStatus.OK

        # A cold service instance with a dead backend: the only source of
        # answers is the on-disk cache from the previous "process".
        backend = FailingBackend()

        async def cold_scenario():
            svc = make_service(
                small_world,
                cache=ResultCache(tmp_path / "cache"),
                backends={"greedy": backend},
                max_retries=0,
            )
            async with svc:
                return await svc.submit(small_world.query())

        outcome = run(cold_scenario())
        assert outcome.status is OutcomeStatus.DEGRADED
        assert outcome.answer["members"] == primed.answer["members"]
        assert outcome.stale_age_s is not None


class TestStats:
    def test_stats_reports_counters_and_breakers(self, small_world):
        async def scenario():
            async with make_service(small_world) as svc:
                await svc.submit(small_world.query())
                await svc.submit(small_world.query(composer="quantum"))
                return svc.stats()

        stats = run(scenario())
        assert stats["counters"]["service.queries"] == 2
        assert stats["counters"]["service.ok"] == 1
        assert stats["counters"]["service.rejected"] == 1
        assert stats["breakers"]["greedy"]["state"] == "closed"
        assert stats["bulkhead"]["held"] == 0

    @pytest.mark.parametrize("composer", ["greedy", "annealing"])
    def test_default_backends_answer(self, small_world, composer):
        async def scenario():
            async with make_service(small_world) as svc:
                return await svc.submit(
                    small_world.query(composer=composer, deadline_s=5.0)
                )

        outcome = run(scenario())
        assert outcome.status is OutcomeStatus.OK
        assert outcome.answer["satisfied"]
