"""The service's face on the unified metrics plane.

Breaker state rides a gauge (0 closed / 1 half-open / 2 open) so
``python -m repro.obs live`` can show it without poking service
internals, and degraded serves feed a stale-age histogram for the
staleness SLO.
"""

import asyncio

from repro.service import SynthesisService
from repro.util.backoff import BackoffPolicy

from .test_service import FailingBackend


def run(coro):
    return asyncio.run(coro)


def make_service(world, **kwargs):
    kwargs.setdefault("backoff", BackoffPolicy(base_s=0.001, max_s=0.01))
    return SynthesisService(world.hub, **kwargs)


def test_breaker_state_gauge_published_at_construction(small_world):
    svc = make_service(small_world)
    state = svc.metrics.state()
    assert state["service.breaker.greedy.state"] == {
        "kind": "gauge",
        "value": 0.0,
    }


def test_breaker_state_gauge_tracks_transitions(small_world):
    backend = FailingBackend(fail_first=0)

    async def scenario():
        svc = make_service(
            small_world,
            backends={"greedy": backend},
            max_retries=0,
            breaker_min_calls=2,
            breaker_window=4,
            breaker_open_s=30.0,
        )
        async with svc:
            await svc.submit(small_world.query())  # primes the stale cache
            backend.fail_first = 10**9
            small_world.hub.publish()
            for _ in range(3):
                await svc.submit(small_world.query())
        return svc

    svc = run(scenario())
    state = svc.metrics.state()
    assert state["service.breaker.greedy.state"]["value"] == 2.0  # open
    # The snapshot a live monitor reads: breaker surfaced as "open".
    from repro.obs.export import live_snapshot

    assert live_snapshot(state)["breakers"] == {"greedy": "open"}


def test_degraded_serves_observe_stale_age_histogram(small_world):
    backend = FailingBackend(fail_first=0)

    async def scenario():
        svc = make_service(
            small_world, backends={"greedy": backend}, max_retries=0
        )
        async with svc:
            await svc.submit(small_world.query())
            backend.fail_first = 10**9
            small_world.hub.publish()
            degraded = await svc.submit(small_world.query())
        return svc, degraded

    svc, degraded = run(scenario())
    assert degraded.degraded
    hist = svc.metrics.state()["service.stale_age_s"]
    assert hist["kind"] == "histogram"
    assert hist["count"] == 1
    assert hist["max"] >= 0.0
