"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ScenarioBuilder, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def small_scenario(sim):
    """A compact, well-connected urban scenario for integration tests."""
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=4, block_size_m=80.0, density=0.3)
        .population(n_blue=30, n_red=3, n_gray=8)
        .mobility(mobile_fraction=0.3)
        .targets(3)
        .events(12)
        .jammers(1)
        .build()
    )
    return scenario
