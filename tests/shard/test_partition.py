"""Deterministic grid partitioner: balance, edge cases, cross-process stability."""

from __future__ import annotations

import math
import subprocess
import sys

import pytest

from repro.net.node import Network
from repro.net.topology import (
    GridPartition,
    min_cross_shard_distance_m,
    partition_network,
)
from repro.sim.kernel import Simulator
from repro.util.geometry import Point


def _grid_world(n_side: int = 6, spacing: float = 50.0) -> Network:
    sim = Simulator(seed=3)
    net = Network(sim)
    nid = 0
    for i in range(n_side):
        for j in range(n_side):
            net.create_node(nid, Point(i * spacing, j * spacing))
            nid += 1
    return net


def test_partition_covers_every_node_balanced():
    net = _grid_world()
    part = partition_network(net, 4, cell_size_m=50.0, seed=7)
    assert set(part.assignments) == set(net.nodes)
    assert set(part.assignments.values()) <= set(range(4))
    counts = part.counts()
    assert sum(counts) == 36
    # Balanced to within one cell's population (6 nodes per column here).
    assert max(counts) - min(counts) <= 6


def test_partition_single_shard_owns_everything():
    net = _grid_world(n_side=3)
    part = partition_network(net, 1)
    assert part.counts() == [9]
    assert min_cross_shard_distance_m(net, part) == math.inf


def test_partition_empty_network():
    sim = Simulator(seed=0)
    net = Network(sim)
    part = partition_network(net, 4, cell_size_m=10.0)
    assert part.assignments == {}
    assert part.cells == {}
    assert part.counts() == [0, 0, 0, 0]


def test_partition_isolated_node_is_a_singleton_cell():
    sim = Simulator(seed=0)
    net = Network(sim)
    net.create_node(0, Point(0.0, 0.0))
    net.create_node(1, Point(10.0, 0.0))
    # Far-off isolated node: its own cell, still assigned to some shard.
    net.create_node(2, Point(5000.0, 5000.0))
    part = partition_network(net, 2, cell_size_m=50.0, seed=1)
    assert set(part.assignments) == {0, 1, 2}
    assert all(0 <= s < 2 for s in part.assignments.values())
    # Two occupied cells, one of them the isolated singleton.
    assert len(part.cells) == 2


def test_partition_border_node_uses_floor_convention():
    sim = Simulator(seed=0)
    net = Network(sim)
    # x = 100.0 with cell size 100 sits exactly on the border between
    # cells 0 and 1; floor(100/100) == 1, so it belongs to cell (1, 0).
    net.create_node(0, Point(99.9, 0.0))
    net.create_node(1, Point(100.0, 0.0))
    part = partition_network(net, 2, cell_size_m=100.0, seed=0)
    assert set(part.cells) == {(0, 0), (1, 0)}
    assert part.shard_of(0) != part.shard_of(1)


def test_partition_rejects_bad_args():
    net = _grid_world(n_side=2)
    with pytest.raises(ValueError):
        partition_network(net, 0)
    with pytest.raises(ValueError):
        partition_network(net, 2, cell_size_m=0.0)
    with pytest.raises(ValueError):
        partition_network(net, 2, cell_size_m=math.inf)


def test_partition_seed_changes_sweep_axis_but_stays_total():
    net = _grid_world()
    a = partition_network(net, 3, cell_size_m=50.0, seed=0)
    b = partition_network(net, 3, cell_size_m=50.0, seed=1)
    assert sum(a.counts()) == sum(b.counts()) == 36
    # Same seed, same result; partition is a pure function of its inputs.
    a2 = partition_network(net, 3, cell_size_m=50.0, seed=0)
    assert a.assignments == a2.assignments
    assert a.cells == a2.cells


def test_min_cross_shard_distance_bounded_by_cell_size():
    net = _grid_world(spacing=50.0)
    part = partition_network(net, 4, cell_size_m=50.0, seed=7)
    d = min_cross_shard_distance_m(net, part)
    assert 0.0 < d <= 50.0
    # Adjacent columns are 50 m apart, so the true minimum is exactly it.
    assert d == pytest.approx(50.0)


_SUBPROC_SNIPPET = """
import json, sys
from repro.net.node import Network
from repro.net.topology import partition_network
from repro.sim.kernel import Simulator
from repro.util.geometry import Point

sim = Simulator(seed=3)
net = Network(sim)
nid = 0
for i in range(6):
    for j in range(6):
        net.create_node(nid, Point(i * 50.0, j * 50.0))
        nid += 1
part = partition_network(net, 4, cell_size_m=50.0, seed=7)
print(json.dumps(sorted(part.assignments.items())))
"""


def test_partition_deterministic_across_processes():
    """The property conservative time sync depends on: every worker that
    rebuilds the world computes the identical assignment."""
    net = _grid_world()
    local = sorted(partition_network(net, 4, cell_size_m=50.0, seed=7).assignments.items())
    outs = [
        subprocess.run(
            [sys.executable, "-c", _SUBPROC_SNIPPET],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for _ in range(2)
    ]
    assert outs[0] == outs[1]
    import json

    assert json.loads(outs[0]) == [list(pair) for pair in local]


def test_grid_partition_repr_mentions_counts():
    part = GridPartition(
        n_shards=2, cell_size_m=10.0, seed=0, assignments={0: 0, 1: 1}, cells={}
    )
    assert "counts=[1, 1]" in repr(part)
