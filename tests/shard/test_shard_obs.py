"""Shard workers on the unified telemetry plane.

Two contracts:

* **Metrics parity** — per-shard registries merged by the coordinator
  (counters summed, ``faults.*`` max-merged) equal the serial registry,
  the metrics analogue of the trace-fingerprint gate.
* **Export collision safety** — fork-mode workers sharing one
  ``REPRO_OBS_NDJSON_DIR`` land ``shard<k>-``-prefixed files: forked
  siblings inherit the parent's pid-seq counter state, so the pid-seq
  name alone is not unique (the PR8 regression).
"""

from __future__ import annotations

import os

from repro.shard import (
    ShardPlan,
    ShardScenarioSpec,
    ShardedSimulator,
    WorkloadSpec,
    run_serial,
)

SPEC = ShardScenarioSpec(
    seed=5,
    blocks=3,
    n_blue=20,
    bitrate_cap_bps=5e4,
    router="flooding",
    mobile_fraction=0.25,
    workload=WorkloadSpec(kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2),
)
PLAN = ShardPlan(n_shards=4, cell_size_m=60.0)
UNTIL = 4.0


def _canon(metrics, *, drop=("shard.lag_events",)):
    """Comparable view: coordinator-only gauges out, float sums rounded
    to the fingerprint tolerance (per-shard partials sum in a different
    order than serial, which legally moves the last ulp)."""

    def canon(v):
        if isinstance(v, float):
            return round(v, 9)
        if isinstance(v, list):
            return [canon(x) for x in v]
        if isinstance(v, dict):
            return {k: canon(x) for k, x in v.items()}
        return v

    return {k: canon(v) for k, v in metrics.items() if k not in drop}


def test_merged_metrics_equal_serial_inline():
    serial = run_serial(SPEC, UNTIL)
    sharded = ShardedSimulator(SPEC, PLAN, mode="inline").run(UNTIL)
    assert serial.metrics, "scenario produced no metrics"
    assert _canon(serial.metrics) == _canon(sharded.metrics)
    # Serial is one shard: lag is identically zero.  Sharded lag is the
    # max-min spread of per-shard event counts — present and >= 0.
    assert serial.metrics["shard.lag_events"]["value"] == 0.0
    assert sharded.metrics["shard.lag_events"]["value"] >= 0.0


def test_merged_metrics_invariant_to_the_cut():
    base = ShardedSimulator(SPEC, PLAN, mode="inline").run(UNTIL)
    recut = ShardedSimulator(
        SPEC,
        ShardPlan(n_shards=2, cell_size_m=70.0, partition_seed=9),
        mode="inline",
    ).run(UNTIL)
    assert _canon(base.metrics) == _canon(recut.metrics)


def test_fork_workers_do_not_collide_in_shared_export_dir(tmp_path, monkeypatch):
    export_dir = tmp_path / "obs"
    export_dir.mkdir()
    monkeypatch.setenv("REPRO_OBS_NDJSON_DIR", str(export_dir))
    sharded = ShardedSimulator(
        SPEC, ShardPlan(n_shards=2, cell_size_m=60.0), mode="fork"
    ).run(UNTIL)
    assert sharded.n_shards == 2
    all_names = sorted(os.listdir(export_dir))
    names = [n for n in all_names if n.endswith(".ndjson")]
    # One export per shard, each namespaced by its shard index, and each
    # stamped with a provenance manifest alongside.
    shard_files = {
        k: [n for n in names if n.startswith(f"shard{k}-")] for k in (0, 1)
    }
    assert len(shard_files[0]) == 1 and len(shard_files[1]) == 1
    assert set(names) == {shard_files[0][0], shard_files[1][0]}
    assert set(all_names) == set(names) | {f"{n}.manifest.json" for n in names}
    # Every file is non-empty valid NDJSON (no interleaved/clobbered writes).
    from repro.obs.sinks import read_ndjson

    for name in names:
        records, skipped = read_ndjson(str(export_dir / name))
        assert records and skipped == 0


def test_fork_merged_metrics_match_serial(tmp_path, monkeypatch):
    # The real-pipes path: states cross the process boundary and merge.
    serial = run_serial(SPEC, UNTIL)  # before setenv: no ring for serial
    monkeypatch.setenv("REPRO_OBS_RING_DIR", str(tmp_path / "rings"))
    sharded = ShardedSimulator(
        SPEC, ShardPlan(n_shards=2, cell_size_m=60.0), mode="fork"
    ).run(UNTIL)
    assert _canon(serial.metrics) == _canon(sharded.metrics)
    # Each worker also dumped its binary ring, shard-prefixed.
    rings = sorted(
        n for n in os.listdir(tmp_path / "rings") if n.endswith(".ring")
    )
    assert [n.split("-")[0] for n in rings] == ["shard0", "shard1"]
