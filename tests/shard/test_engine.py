"""Coordinator mechanics: validation, handoffs, lifecycle pipes, kill-retry."""

from __future__ import annotations

import math

import pytest

from repro.shard import (
    ChurnSpec,
    FaultPlanSpec,
    ShardConfigError,
    ShardPlan,
    ShardRunResult,
    ShardScenarioSpec,
    ShardedSimulator,
    WorkloadSpec,
    run_serial,
)

_FLOOD = ShardScenarioSpec(
    seed=5,
    blocks=3,
    n_blue=20,
    bitrate_cap_bps=5e4,
    router="flooding",
    workload=WorkloadSpec(kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2),
)


class TestValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ShardConfigError, match="mode"):
            ShardedSimulator(_FLOOD, mode="threads")

    def test_rejects_shard_count_conflict(self):
        with pytest.raises(ShardConfigError, match="n_shards"):
            ShardedSimulator(_FLOOD, ShardPlan(n_shards=4), n_shards=2)

    def test_rejects_nonpositive_horizon(self):
        engine = ShardedSimulator(_FLOOD, n_shards=2, mode="inline")
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(ShardConfigError, match="until"):
                engine.run(bad)

    def test_rejects_window_beyond_lookahead(self):
        plan = ShardPlan(n_shards=2, cell_size_m=60.0, window_s=10.0)
        with pytest.raises(ShardConfigError, match="lookahead"):
            ShardedSimulator(_FLOOD, plan, mode="inline").run(1.0)

    def test_rejects_chaos_in_inline_mode(self):
        spec = ShardScenarioSpec(
            seed=1, chaos_crash=(0, 1.0, "/tmp/never-used-sentinel")
        )
        with pytest.raises(ShardConfigError, match="chaos"):
            ShardedSimulator(spec, n_shards=2, mode="inline")

    def test_rejects_unsafe_router(self):
        spec = ShardScenarioSpec(seed=1, router="gossip")
        with pytest.raises(ShardConfigError, match="shard-safe"):
            ShardedSimulator(spec, n_shards=2, mode="inline")

    def test_window_count_cap(self):
        plan = ShardPlan(n_shards=2, cell_size_m=60.0, window_s=1e-9)
        with pytest.raises(ShardConfigError, match="windows"):
            ShardedSimulator(_FLOOD, plan, mode="inline").run(10.0)


class TestResultSurface:
    def test_single_shard_plan_runs_serial(self):
        result = ShardedSimulator(_FLOOD, n_shards=1).run(1.0)
        assert result.mode == "serial"
        assert result.n_shards == 1
        assert result.records

    def test_events_per_sec_guard(self):
        result = ShardRunResult(until=1.0, n_shards=1, mode="serial")
        result.events_processed = 100
        result.wall_elapsed_s = 0.0
        assert result.events_per_sec == 0.0
        result.wall_elapsed_s = math.inf
        assert result.events_per_sec == 0.0
        result.wall_elapsed_s = 0.5
        assert result.events_per_sec == 200.0


class TestBarrierAlgebra:
    def test_every_shard_contributes_records(self):
        plan = ShardPlan(n_shards=4, cell_size_m=60.0)
        result = ShardedSimulator(_FLOOD, plan, mode="inline").run(3.0)
        assert result.n_windows > 1
        shards_seen = {r["shard"] for r in result.records}
        assert shards_seen == {0, 1, 2, 3}
        owned_counts = [p["owned"] for p in result.per_shard]
        assert sum(owned_counts) == 20
        assert all(c > 0 for c in owned_counts)

    def test_explicit_window_matches_default(self):
        default = ShardedSimulator(
            _FLOOD, ShardPlan(n_shards=2, cell_size_m=60.0), mode="inline"
        ).run(2.0)
        # A different (smaller) window is still conservative: same trace.
        small = ShardedSimulator(
            _FLOOD,
            ShardPlan(n_shards=2, cell_size_m=60.0, window_s=default.window_s / 3),
            mode="inline",
        ).run(2.0)
        assert small.n_windows > default.n_windows
        assert small.fingerprint() == default.fingerprint()


class TestLifecycleOverPipes:
    SPEC = ShardScenarioSpec(
        seed=5,
        blocks=3,
        n_blue=20,
        bitrate_cap_bps=5e4,
        router="flooding",
        workload=WorkloadSpec(kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2),
        lifecycle=((1.0, 3, False), (2.2, 3, True)),
    )

    def test_lifecycle_events_reach_workers_at_the_right_window(self):
        serial = run_serial(self.SPEC, 3.0)
        sharded = ShardedSimulator(
            self.SPEC, ShardPlan(n_shards=2, cell_size_m=60.0), mode="fork"
        ).run(3.0)
        assert sharded.fingerprint() == serial.fingerprint()
        # The injected outage is visible: it changed the world vs no-lifecycle.
        baseline = run_serial(_FLOOD, 3.0)
        assert serial.fingerprint() != baseline.fingerprint()

    def test_beyond_horizon_lifecycle_is_dropped(self):
        spec = ShardScenarioSpec(
            seed=5,
            blocks=3,
            n_blue=20,
            bitrate_cap_bps=5e4,
            router="flooding",
            workload=WorkloadSpec(
                kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2
            ),
            lifecycle=((50.0, 3, False),),
        )
        sharded = ShardedSimulator(
            spec, ShardPlan(n_shards=2, cell_size_m=60.0), mode="inline"
        ).run(2.0)
        assert sharded.fingerprint() == run_serial(_FLOOD, 2.0).fingerprint()


class TestKillRetry:
    def test_chaos_crash_kills_one_attempt_then_retry_succeeds(self, tmp_path):
        sentinel = tmp_path / "crashed.once"
        spec = ShardScenarioSpec(
            seed=5,
            blocks=3,
            n_blue=20,
            bitrate_cap_bps=5e4,
            router="flooding",
            workload=WorkloadSpec(
                kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2
            ),
            chaos_crash=(1, 1.5, str(sentinel)),
        )
        engine = ShardedSimulator(
            spec,
            ShardPlan(n_shards=2, cell_size_m=60.0),
            mode="fork",
            barrier_timeout_s=60.0,
        )
        result = engine.run(3.0)
        assert result.retries == 1
        assert sentinel.exists()
        # chaos targets shard 1; the serial reference (shard 0) never arms
        # it, and the retried attempt is bit-identical to an unharmed run.
        assert result.fingerprint() == run_serial(spec, 3.0).fingerprint()

    def test_exhausted_retries_raise(self, tmp_path):
        from repro.shard import ShardWorkerError

        spec = ShardScenarioSpec(
            seed=5,
            blocks=3,
            n_blue=20,
            bitrate_cap_bps=5e4,
            router="flooding",
            workload=WorkloadSpec(
                kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2
            ),
            # No sentinel is ever written to a fresh path per attempt —
            # point at a directory so open() fails and the crash repeats.
            chaos_crash=(0, 1.5, str(tmp_path / "missing" / "dir" / "s")),
        )
        engine = ShardedSimulator(
            spec,
            ShardPlan(n_shards=2, cell_size_m=60.0),
            mode="fork",
            barrier_timeout_s=60.0,
            max_retries=1,
        )
        with pytest.raises(ShardWorkerError):
            engine.run(3.0)


class TestFaultReplication:
    def test_replicated_fault_counters_merge_by_max(self):
        spec = ShardScenarioSpec(
            seed=13,
            blocks=3,
            n_blue=18,
            bitrate_cap_bps=5e4,
            router="flooding",
            workload=WorkloadSpec(kind="beacons", rate_hz=1.0, sender_stride=3),
            faults=FaultPlanSpec(
                churn=ChurnSpec(start_s=0.5, mtbf_s=4.0, mean_downtime_s=1.5)
            ),
        )
        serial = run_serial(spec, 4.0)
        sharded = ShardedSimulator(
            spec, ShardPlan(n_shards=4, cell_size_m=60.0), mode="inline"
        ).run(4.0)
        fault_keys = [k for k in serial.counters if k.startswith("faults.")]
        assert fault_keys, "churn should have produced fault counters"
        for key in fault_keys:
            # Replicated in every shard: merged by max, not 4x-summed.
            assert sharded.counters[key] == serial.counters[key]
