"""Keyed hop RNG: draw-order independence is the whole point."""

from __future__ import annotations

import math

import pytest

from repro.shard.rng import KeyedHopRng


def test_same_key_same_draws_regardless_of_history():
    a = KeyedHopRng(42)
    b = KeyedHopRng(42)
    # a burns through unrelated keys first; b goes straight there.
    a.rekey("hop", 1, 0)
    a.random()
    a.random()
    a.rekey("rx", 5, 3, 7)
    b.rekey("rx", 5, 3, 7)
    assert a.random() == b.random()
    assert a.random() == b.random()


def test_different_keys_decorrelate():
    rng = KeyedHopRng(42)
    rng.rekey("hop", 1, 0)
    x = rng.random()
    rng.rekey("hop", 1, 1)
    y = rng.random()
    rng.rekey("hop", 2, 0)
    z = rng.random()
    assert len({x, y, z}) == 3


def test_uniform_range_and_exponential_positive():
    rng = KeyedHopRng(7)
    rng.rekey("test")
    draws = [rng.random() for _ in range(200)]
    assert all(0.0 <= u < 1.0 for u in draws)
    assert 0.2 < sum(draws) / len(draws) < 0.8
    rng.rekey("exp")
    exps = [rng.exponential(2.0) for _ in range(100)]
    assert all(e >= 0.0 and math.isfinite(e) for e in exps)


def test_seed_changes_stream():
    a = KeyedHopRng(1)
    b = KeyedHopRng(2)
    a.rekey("hop", 1, 0)
    b.rekey("hop", 1, 0)
    assert a.random() != b.random()


def test_unkeyed_generator_surface_is_rejected():
    rng = KeyedHopRng(0)
    with pytest.raises(AttributeError, match="shard"):
        rng.normal(0.0, 1.0)
