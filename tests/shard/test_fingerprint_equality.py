"""The correctness gate: serial == sharded merged-trace fingerprint.

Four pinned scenarios cover two routers (flooding, aodv), mobility, and
both replicated fault processes; each must fingerprint identically when
run serially and when cut into four shards.  Any divergence means a
partition-coupled read leaked into the hot path — the one bug class the
sharded engine exists to exclude.
"""

from __future__ import annotations

import pytest

from repro.shard import (
    ChurnSpec,
    FaultPlanSpec,
    LinkFlapSpec,
    ShardPlan,
    ShardScenarioSpec,
    ShardedSimulator,
    WorkloadSpec,
    run_serial,
)

# Pinned worlds: low bitrate cap keeps the conservative window wide (the
# tests stay fast) without changing any ordering property under test.
S1_FLOOD_MOBILE = ShardScenarioSpec(
    seed=5,
    blocks=3,
    n_blue=20,
    bitrate_cap_bps=5e4,
    router="flooding",
    mobile_fraction=0.25,
    workload=WorkloadSpec(kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2),
)
S2_AODV_UNICAST = ShardScenarioSpec(
    seed=11,
    blocks=3,
    n_blue=18,
    bitrate_cap_bps=5e4,
    router="aodv",
    workload=WorkloadSpec(
        kind="unicast", rate_hz=0.5, size_bits=4096, sender_stride=4
    ),
)
S3_FLOOD_CHURN = ShardScenarioSpec(
    seed=13,
    blocks=3,
    n_blue=18,
    bitrate_cap_bps=5e4,
    router="flooding",
    workload=WorkloadSpec(kind="beacons", rate_hz=1.0, sender_stride=3),
    faults=FaultPlanSpec(
        churn=ChurnSpec(start_s=0.5, mtbf_s=4.0, mean_downtime_s=1.5)
    ),
)
S4_AODV_LINKFLAP = ShardScenarioSpec(
    seed=17,
    blocks=3,
    n_blue=18,
    bitrate_cap_bps=5e4,
    router="aodv",
    workload=WorkloadSpec(
        kind="unicast", rate_hz=0.5, size_bits=4096, sender_stride=4
    ),
    faults=FaultPlanSpec(
        link_flap=LinkFlapSpec(
            start_s=0.5, n_links=3, mtbf_s=3.0, mean_downtime_s=1.0
        )
    ),
)

SCENARIOS = [
    pytest.param(S1_FLOOD_MOBILE, 4.0, id="flooding-beacons-mobility"),
    pytest.param(S2_AODV_UNICAST, 6.0, id="aodv-unicast"),
    pytest.param(S3_FLOOD_CHURN, 4.0, id="flooding-beacons-churn"),
    pytest.param(S4_AODV_LINKFLAP, 6.0, id="aodv-unicast-linkflap"),
]

PLAN = ShardPlan(n_shards=4, cell_size_m=60.0)


@pytest.mark.parametrize("spec,until", SCENARIOS)
def test_serial_equals_four_shards_inline(spec, until):
    serial = run_serial(spec, until)
    sharded = ShardedSimulator(spec, PLAN, mode="inline").run(until)
    assert serial.records, "pinned scenario produced an empty trace"
    assert len(serial.records) == len(sharded.records)
    assert serial.fingerprint() == sharded.fingerprint()
    # The rx stream alone must agree too (category-filtered comparison).
    assert serial.fingerprint(["app.rx"]) == sharded.fingerprint(["app.rx"])


def test_serial_equals_two_shards_fork():
    """One real-pipes run: the pickled-handoff path, not just inline."""
    until = 4.0
    serial = run_serial(S1_FLOOD_MOBILE, until)
    sharded = ShardedSimulator(
        S1_FLOOD_MOBILE,
        ShardPlan(n_shards=2, cell_size_m=60.0),
        mode="fork",
    ).run(until)
    assert serial.fingerprint() == sharded.fingerprint()
    assert sharded.n_shards == 2
    assert sharded.retries == 0


def test_partition_seed_does_not_change_the_model():
    """Different cuts, same physics: fingerprints agree across partitions."""
    until = 4.0
    base = ShardedSimulator(
        S3_FLOOD_CHURN, ShardPlan(n_shards=4, cell_size_m=60.0), mode="inline"
    ).run(until)
    recut = ShardedSimulator(
        S3_FLOOD_CHURN,
        ShardPlan(n_shards=3, cell_size_m=70.0, partition_seed=9),
        mode="inline",
    ).run(until)
    assert base.fingerprint() == recut.fingerprint()


def test_different_seeds_diverge():
    """Anti-vacuity: the fingerprint actually discriminates worlds."""
    until = 3.0
    a = run_serial(S1_FLOOD_MOBILE, until)
    b = run_serial(
        ShardScenarioSpec(
            seed=6,
            blocks=3,
            n_blue=20,
            bitrate_cap_bps=5e4,
            router="flooding",
            mobile_fraction=0.25,
            workload=WorkloadSpec(
                kind="beacons", rate_hz=1.0, ttl=4, sender_stride=2
            ),
        ),
        until,
    )
    assert a.fingerprint() != b.fingerprint()
