"""run_verified: serial-vs-sharded parity gate with forensic dumps."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

import repro.shard.engine as eng
from repro.obs.forensics import load_manifest
from repro.shard.engine import ShardDivergenceError, ShardedSimulator, run_serial
from repro.shard.spec import ShardPlan, ShardScenarioSpec, WorkloadSpec

HORIZON = 5.0


def world(seed: int = 11) -> ShardScenarioSpec:
    return ShardScenarioSpec(
        seed=seed,
        kind="uniform",
        n_nodes=12,
        spacing_m=110.0,
        workload=WorkloadSpec(rate_hz=1.5),
    )


def test_run_verified_returns_sharded_result_on_agreement():
    sim = ShardedSimulator(world(), ShardPlan(n_shards=2), mode="inline")
    result = sim.run_verified(HORIZON)
    assert result.fingerprint() == run_serial(world(), HORIZON).fingerprint()


def test_run_verified_dumps_and_names_first_divergence(tmp_path, monkeypatch):
    """Force a divergence by making the serial reference run a sibling
    world (seed+1): the coordinator must dump both streams and name the
    first divergent event with its owning shard."""
    real_run_serial = eng.run_serial

    def perturbed_run_serial(spec, until, **kwargs):
        return real_run_serial(
            dataclasses.replace(spec, seed=spec.seed + 1), until, **kwargs
        )

    monkeypatch.setattr(eng, "run_serial", perturbed_run_serial)
    sim = ShardedSimulator(world(), ShardPlan(n_shards=2), mode="inline")
    report_dir = str(tmp_path / "divergence")
    with pytest.raises(ShardDivergenceError) as excinfo:
        sim.run_verified(HORIZON, report_dir=report_dir)

    message = str(excinfo.value)
    assert "diverged from serial reference" in message
    assert "(shard " in message
    assert report_dir in message

    report = excinfo.value.report
    assert report["schema"] == "divergence-report/1"
    assert report["n_shards"] == 2
    first = report["diff"]["first_divergence"]
    assert first is not None and first["category"]
    assert first["owning_shard"] in (0, 1)

    # The bundle is self-contained: both streams, both manifests, report.
    names = sorted(os.listdir(report_dir))
    assert names == [
        "divergence.json",
        "serial.ndjson",
        "serial.ndjson.manifest.json",
        "sharded.ndjson",
        "sharded.ndjson.manifest.json",
    ]
    on_disk = json.load(open(os.path.join(report_dir, "divergence.json")))
    assert on_disk["diff"]["first_divergence"]["time"] == first["time"]
    # The serial manifest replays (1-shard worlds embed their scenario);
    # the sharded one is provenance-only but must still load.
    serial_manifest = load_manifest(
        os.path.join(report_dir, "serial.ndjson.manifest.json")
    )
    assert serial_manifest.replayable
    sharded_manifest = load_manifest(
        os.path.join(report_dir, "sharded.ndjson.manifest.json")
    )
    assert sharded_manifest.root_seed == 11
    # Exported NDJSON really holds the trace streams.
    with open(os.path.join(report_dir, "serial.ndjson")) as fh:
        first_line = json.loads(fh.readline())
    assert first_line["type"] == "trace"
