"""CalendarQueue ordering equivalence vs a reference binary heap.

The calendar queue replaced ``heapq`` as the kernel's event store (PR 10);
its one job is to reproduce heap order *exactly* — time, then priority,
then insertion sequence — under every workload shape: duplicate
timestamps, pushes into the bucket currently being drained, adaptive
resizes, and interleaved push/pop.  The property test below drives both
structures with the same randomized operation stream and demands identical
pop sequences.  Simulator-level tests cover the semantics the queue swap
must not disturb: cancellation, re-scheduling, and the fast lane.
"""

from __future__ import annotations

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.calendar import CalendarQueue

# ---------------------------------------------------------------- reference


def _drain(queue: CalendarQueue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


# A pool of times with heavy duplication pressure: ties are where stable
# ordering bugs hide.
_times = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5, 2.5, 100.0]),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
)
_entries = st.lists(
    st.tuples(_times, st.integers(min_value=-2, max_value=2)),
    max_size=200,
)


@given(_entries)
@settings(max_examples=200, deadline=None)
def test_push_all_pop_all_matches_heapq(pairs):
    queue = CalendarQueue()
    heap = []
    for seq, (t, prio) in enumerate(pairs):
        entry = (t, prio, seq, f"payload-{seq}")
        queue.push(entry)
        heapq.heappush(heap, entry)
    popped = _drain(queue)
    assert popped == [heapq.heappop(heap) for _ in range(len(heap))]
    assert len(queue) == 0 and not queue


@given(_entries, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=200, deadline=None)
def test_interleaved_push_pop_matches_heapq(pairs, seed):
    """Random interleaving, with later pushes targeting already-popped times.

    Pops advance the queue's bucket cursor; subsequent pushes may land in
    the current (partially drained) bucket or even an earlier slot.  The
    monotone-time kernel never does the latter, but the queue contract is
    plain heap order, so we test it anyway.
    """
    rng = random.Random(seed)
    queue = CalendarQueue()
    heap = []
    seq = 0
    pending = list(pairs)
    popped, expected = [], []
    while pending or heap:
        if pending and (not heap or rng.random() < 0.6):
            t, prio = pending.pop()
            entry = (t, prio, seq, seq)
            seq += 1
            queue.push(entry)
            heapq.heappush(heap, entry)
        else:
            popped.append(queue.pop())
            expected.append(heapq.heappop(heap))
    assert popped == expected
    assert queue.pop() is None


def test_duplicate_timestamps_preserve_insertion_order():
    queue = CalendarQueue()
    for seq in range(50):
        queue.push((1.0, 0, seq, seq))
    assert [entry[3] for entry in _drain(queue)] == list(range(50))


def test_priority_breaks_time_ties():
    queue = CalendarQueue()
    queue.push((1.0, 1, 0, "late"))
    queue.push((1.0, -1, 1, "early"))
    queue.push((1.0, 0, 2, "mid"))
    assert [entry[3] for entry in _drain(queue)] == ["early", "mid", "late"]


def test_peek_time_and_len_through_resize():
    queue = CalendarQueue(width=1.0)
    # Thousands of entries over a huge span force at least one width resize.
    entries = [(float(i) * 37.0, 0, i, i) for i in range(2000)]
    random.Random(7).shuffle(entries)
    for entry in entries:
        queue.push(entry)
    assert len(queue) == 2000
    assert queue.peek_time() == 0.0
    assert sorted(queue) == sorted(entries)
    assert _drain(queue) == sorted(entries)


def test_push_into_drained_bucket_after_peek():
    queue = CalendarQueue(width=10.0)
    queue.push((5.0, 0, 0, "a"))
    queue.push((6.0, 0, 1, "b"))
    assert queue.peek_time() == 5.0  # loads+sorts the slot-0 bucket
    queue.push((5.5, 0, 2, "between"))
    queue.push((0.5, 0, 3, "before"))
    assert [e[3] for e in _drain(queue)] == ["before", "a", "between", "b"]


# ------------------------------------------------------- Simulator semantics


def test_simulator_cancellation_and_reschedule():
    sim = Simulator(seed=1)
    fired = []
    victim = sim.call_at(2.0, lambda: fired.append("victim"))
    sim.call_at(1.0, lambda: fired.append("first"))
    sim.call_at(1.0, victim.cancel)  # cancel while queued
    sim.call_at(3.0, lambda: fired.append("last"))
    sim.run()
    assert fired == ["first", "last"]
    # A cancelled event is invisible to queue_length but still queued
    # internally until its timestamp passes.
    ghost = sim.call_at(10.0, lambda: fired.append("ghost"))
    ghost.cancel()
    assert sim.queue_length == 0
    sim.run()
    assert fired == ["first", "last"]


def test_simulator_fast_lane_counts_and_orders_with_events():
    sim = Simulator(seed=2)
    order = []
    sim.call_at(1.0, lambda: order.append("event@1"))
    sim.call_in_fast(0.5, lambda: order.append("fast@0.5"))
    sim.call_in_fast(1.0, lambda: order.append("fast@1"))  # after event@1: FIFO tie
    sim.call_at(2.0, lambda: order.append("event@2"))
    sim.run()
    assert order == ["fast@0.5", "event@1", "fast@1", "event@2"]
    assert sim.events_fast == 2
    # Fast-lane firings are a subset of the total processed count, so
    # events_per_sec and run telemetry see them.
    assert sim.events_processed == 4
