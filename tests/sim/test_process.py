"""Tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, Simulator, Timeout, Waiting


class TestProcessBasics:
    def test_timeout_resumes_at_right_time(self):
        sim = Simulator()
        times = []

        def proc(sim):
            yield sim.timeout(2.0)
            times.append(sim.now)
            yield Timeout(3.0)
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert times == [2.0, 5.0]

    def test_result_and_done_event(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 42

        p = sim.spawn(proc())
        sim.run()
        assert p.done
        assert p.result == 42
        assert p.done_event.value == 42

    def test_wait_on_another_process(self):
        sim = Simulator()
        order = []

        def worker():
            yield Timeout(5.0)
            order.append("worker")
            return "payload"

        def boss(sim, w):
            value = yield w
            order.append(f"boss:{value}")

        w = sim.spawn(worker())
        sim.spawn(boss(sim, w))
        sim.run()
        assert order == ["worker", "boss:payload"]

    def test_wait_on_event_value(self):
        sim = Simulator()
        got = []
        ev = sim.event()

        def proc():
            value = yield ev
            got.append(value)

        sim.spawn(proc())
        sim.call_in(2.0, lambda: ev.succeed("hello"))
        sim.run()
        assert got == ["hello"]

    def test_yield_bad_object_raises(self):
        sim = Simulator()

        def proc():
            yield 123

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestAllOf:
    def test_waits_for_all(self):
        sim = Simulator()
        got = []

        def proc(sim):
            values = yield AllOf([sim.timeout(1.0, "a"), sim.timeout(4.0, "b")])
            got.append((sim.now, values))

        sim.spawn(proc(sim))
        sim.run()
        assert got == [(4.0, ["a", "b"])]

    def test_all_already_fired(self):
        sim = Simulator()
        got = []
        e1, e2 = sim.event(), sim.event()
        e1.succeed(1)
        e2.succeed(2)

        def proc():
            values = yield AllOf([e1, e2])
            got.append(values)

        sim.spawn(proc())
        sim.run()
        assert got == [[1, 2]]


class TestParking:
    def test_interrupt_resumes_parked(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield Waiting()
            got.append(value)

        p = sim.spawn(proc())
        sim.call_in(3.0, lambda: p.interrupt("wake"))
        sim.run()
        assert got == ["wake"]
        assert p.done

    def test_interrupt_unparked_raises(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        p = sim.spawn(proc())
        sim.run(until=1.0)
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupt_done_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = sim.spawn(proc())
        sim.run()
        p.interrupt()  # no exception
        assert p.done
