"""Tests for metric recording and tracing."""

import math

import pytest

from repro.sim import Simulator
from repro.sim.metrics import TimeSeries


class TestTimeSeries:
    def test_window(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            ts.add(t, v)
        assert ts.window(1, 3) == [2, 3]

    def test_window_duplicate_timestamps(self):
        # Samples sharing a timestamp: all land on one side of the bound.
        ts = TimeSeries("x")
        for t, v in [(0, 1), (1, 2), (1, 3), (1, 4), (2, 5)]:
            ts.add(t, v)
        # All duplicates at t=1 belong to the window starting at 1 ...
        assert ts.window(1, 2) == [2, 3, 4]
        # ... and none to the half-open window ending at 1 ...
        assert ts.window(0, 1) == [1]
        # ... unless the closed-interval variant is requested.
        assert ts.window(0, 1, include_end=True) == [1, 2, 3, 4]

    def test_window_tiles_without_double_counting(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)]:
            ts.add(t, v)
        tiled = ts.window(0, 1) + ts.window(1, 2) + ts.window(2, 3)
        assert tiled == [1, 2, 3, 4]

    def test_window_empty_cases(self):
        ts = TimeSeries("x")
        assert ts.window(0, 10) == []  # no samples at all
        ts.add(5.0, 1.0)
        assert ts.window(0, 5) == []       # half-open excludes the sample
        assert ts.window(6, 10) == []      # fully after the bound
        assert ts.window(3, 3) == []       # zero-width
        assert ts.window(9, 2) == []       # inverted window is empty
        assert ts.window(9, 2, include_end=True) == []

    def test_window_include_end_at_horizon(self):
        # The motivating case: final samples landing exactly on the run
        # horizon must be countable without shifting the end bound.
        ts = TimeSeries("x")
        for t, v in [(99.0, 1), (100.0, 2), (100.0, 3)]:
            ts.add(t, v)
        assert ts.window(0.0, 100.0) == [1]
        assert ts.window(0.0, 100.0, include_end=True) == [1, 2, 3]

    def test_time_average_sample_and_hold(self):
        ts = TimeSeries("x")
        ts.add(0.0, 0.0)
        ts.add(5.0, 10.0)
        # 0 for 5s, then 10 until horizon 10s -> (0*5 + 10*5)/10 = 5
        assert ts.time_average(horizon=10.0) == pytest.approx(5.0)

    def test_time_average_single_sample(self):
        ts = TimeSeries("x")
        ts.add(1.0, 7.0)
        assert ts.time_average() == 7.0

    def test_time_average_empty_nan(self):
        assert math.isnan(TimeSeries("x").time_average())

    def test_last(self):
        ts = TimeSeries("x")
        assert ts.last() is None
        ts.add(0, 3)
        assert ts.last() == 3


class TestMetricRecorder:
    def test_sample_timestamps_with_sim_clock(self):
        sim = Simulator()
        sim.call_in(4.0, lambda: sim.metrics.sample("q", 1.5))
        sim.run()
        series = sim.metrics.series("q")
        assert series.times == [4.0]
        assert series.values == [1.5]

    def test_counters(self):
        sim = Simulator()
        sim.metrics.incr("hits")
        sim.metrics.incr("hits", 2)
        assert sim.metrics.counter("hits") == 3
        assert sim.metrics.counter("misses") == 0

    def test_snapshot_includes_both(self):
        sim = Simulator()
        sim.metrics.sample("s", 1.0)
        sim.metrics.incr("c")
        snap = sim.metrics.snapshot()
        assert "s" in snap
        assert "counter:c" in snap


class TestTraceLog:
    def test_emit_and_filter(self):
        sim = Simulator()
        sim.call_in(1.0, lambda: sim.trace.emit("evt", kind="a", node=1))
        sim.call_in(2.0, lambda: sim.trace.emit("evt", kind="b", node=2))
        sim.run()
        assert sim.trace.count("evt") == 2
        only_a = sim.trace.filter("evt", kind="a")
        assert len(only_a) == 1
        assert only_a[0].get("node") == 1

    def test_disabled_records_nothing(self):
        sim = Simulator()
        sim.trace.enabled = False
        sim.trace.emit("evt")
        assert len(sim.trace) == 0

    def test_max_records_cap(self):
        sim = Simulator()
        sim.trace.max_records = 3
        for _ in range(10):
            sim.trace.emit("evt")
        assert len(sim.trace) == 3

    def test_overflow_is_counted_not_silent(self):
        sim = Simulator()
        sim.trace.max_records = 3
        for _ in range(10):
            sim.trace.emit("evt")
        assert sim.trace.dropped == 7

    def test_listeners_see_records_past_the_cap(self):
        sim = Simulator()
        sim.trace.max_records = 2
        seen = []
        sim.trace.subscribe(seen.append)
        for i in range(5):
            sim.trace.emit("evt", i=i)
        assert [r.get("i") for r in seen] == [0, 1, 2, 3, 4]

    def test_subscriber_sees_records(self):
        sim = Simulator()
        seen = []
        sim.trace.subscribe(seen.append)
        sim.trace.emit("evt", x=1)
        assert len(seen) == 1
        assert seen[0].get("x") == 1

    def test_fingerprint_stable_for_identical_runs(self):
        def run():
            sim = Simulator(seed=5)
            for i in range(20):
                sim.call_in(0.5 * i + 0.1, lambda i=i: sim.trace.emit("t", i=i))
            sim.run()
            return sim.trace.fingerprint()

        assert run() == run()

    def test_record_as_dict(self):
        sim = Simulator()
        sim.trace.emit("cat", a=1, b="x")
        d = sim.trace.records[0].as_dict()
        assert d["category"] == "cat"
        assert d["a"] == 1
        assert d["b"] == "x"
