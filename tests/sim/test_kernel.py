"""Tests for the DES kernel: scheduling, ordering, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_call_in_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.call_in(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_call_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.call_in(1.0, lambda: sim.call_at(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.call_in(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0)

    def test_fifo_order_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_in(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        ev_low = sim.schedule(1.0, priority=5)
        ev_high = sim.schedule(1.0, priority=-5)
        ev_low.add_callback(lambda e: order.append("low"))
        ev_high.add_callback(lambda e: order.append("high"))
        sim.run()
        assert order == ["high", "low"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.call_in(1.0, lambda: seen.append("a"))
        sim.call_in(10.0, lambda: seen.append("b"))
        sim.run(until=5.0)
        assert seen == ["a"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_resume_after_until(self):
        sim = Simulator()
        seen = []
        sim.call_in(10.0, lambda: seen.append(sim.now))
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert seen == [10.0]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        ev = sim.schedule(1.0)
        ev.add_callback(lambda e: seen.append(1))
        ev.cancel()
        sim.run()
        assert seen == []

    def test_event_budget_guard(self):
        sim = Simulator()

        def rearm():
            sim.call_in(0.1, rearm)

        sim.call_in(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestEvery:
    def test_periodic_until_horizon(self):
        sim = Simulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=9.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.every(5.0, lambda: ticks.append(sim.now), start_delay=1.0)
        sim.run(until=12.0)
        assert ticks == [1.0, 6.0, 11.0]

    def test_until_bound(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=3.5)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestEvents:
    def test_succeed_fires_immediately(self):
        sim = Simulator()
        ev = sim.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed("v")
        assert got == ["v"]
        assert ev.fired

    def test_callback_after_fired_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [7]

    def test_cannot_schedule_fired_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, ev)

    def test_cancel_then_succeed_noop(self):
        sim = Simulator()
        ev = sim.event()
        ev.cancel()
        ev.succeed(1)
        assert not ev.fired


class TestDeterminism:
    def _run(self, seed):
        sim = Simulator(seed=seed)
        trail = []
        rng = sim.rng.get("test")

        def tick():
            trail.append((round(sim.now, 6), float(rng.random())))
            sim.call_in(float(rng.exponential(1.0)), tick)

        sim.call_in(0.5, tick)
        sim.run(until=50.0)
        return trail

    def test_same_seed_identical(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_differs(self):
        assert self._run(11) != self._run(12)
