"""events_per_sec stays finite under degenerate wall clocks."""

from __future__ import annotations

import json
import math

from repro.obs.report import summarize_run
from repro.sim.kernel import Simulator


def test_zero_wall_elapsed_rate_is_zero():
    sim = Simulator(seed=1)
    assert sim.wall_elapsed == 0.0
    assert sim.events_per_sec == 0.0


def test_near_zero_wall_elapsed_rate_is_zero():
    sim = Simulator(seed=1)
    sim.events_processed = 10_000
    sim.wall_elapsed = 1e-12  # coarse timer rounded an instant run to ~0
    assert sim.events_per_sec == 0.0


def test_nonfinite_wall_elapsed_rate_is_zero():
    sim = Simulator(seed=1)
    sim.events_processed = 5
    for bad in (math.inf, math.nan):
        sim.wall_elapsed = bad
        assert sim.events_per_sec == 0.0


def test_normal_rate_unchanged():
    sim = Simulator(seed=1)
    sim.events_processed = 500
    sim.wall_elapsed = 0.25
    assert sim.events_per_sec == 2000.0


class _ListSink:
    def __init__(self):
        self.rows = []

    def write(self, record):
        self.rows.append(record)

    def flush(self):
        pass

    def close(self):
        pass


def test_export_obs_emits_json_serializable_rate():
    sim = Simulator(seed=1)
    sink = sim.trace.add_sink(_ListSink())
    sim.events_processed = 42
    sim.wall_elapsed = 0.0
    sim.export_obs()
    meta = [r for r in sink.rows if r.get("type") == "meta"]
    assert meta, "export_obs should emit a meta record"
    # Strict JSON (allow_nan=False) must accept the exported numbers.
    payload = json.dumps(meta[-1], allow_nan=False)
    assert '"events_per_sec": 0.0' in payload


def test_export_obs_meta_counts_fast_lane_events():
    """Fast-lane firings must be visible to telemetry: counted in
    events_processed (hence events_per_sec) and broken out as events_fast
    in the exported meta record."""
    sim = Simulator(seed=1)
    sink = sim.trace.add_sink(_ListSink())
    for i in range(5):
        sim.call_in_fast(0.1 * (i + 1), lambda: None)
    sim.call_at(1.0, lambda: None)
    sim.run()
    assert sim.events_fast == 5
    assert sim.events_processed == 6
    sim.export_obs()
    meta = [r for r in sink.rows if r.get("type") == "meta"][-1]
    assert meta["events_fast"] == 5
    assert meta["events_processed"] == 6


def test_summarize_run_scrubs_nonfinite_meta_floats():
    records = [
        {
            "type": "meta",
            "event": "export",
            "events_per_sec": math.inf,
            "wall_elapsed_s": math.nan,
            "events_processed": 3,
        }
    ]
    summary = summarize_run(records)
    event = summary["meta_events"][0]
    assert event["events_per_sec"] is None
    assert event["wall_elapsed_s"] is None
    assert event["events_processed"] == 3
    json.dumps(summary, allow_nan=False)
