"""Tests for assets, inventory, actuators, compute, humans, energy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.sim import Simulator
from repro.things.actuators import ActuationRequest, Actuator, SafetyInterlock
from repro.things.asset import Affiliation, AssetInventory
from repro.things.capabilities import ActuationType, SensingModality, make_profile
from repro.things.compute import ComputeElement, ComputeTask
from repro.things.energy import Battery
from repro.things.humans import HumanSource
from repro.util.geometry import Point


@pytest.fixture
def world():
    sim = Simulator(seed=5)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=5))
    return sim, net, AssetInventory(net)


class TestAssetCreation:
    def test_create_binds_node(self, world):
        sim, net, inv = world
        asset = inv.create(make_profile("drone"), Point(10, 10))
        assert asset.node_id in net.nodes
        assert asset.position == Point(10, 10)
        assert asset.alive

    def test_battery_death_takes_node_down(self, world):
        sim, net, inv = world
        asset = inv.create(make_profile("occupancy_tag"), Point(0, 0))
        asset.battery.drain_radio(bits_tx=1e12, bits_rx=0)
        assert asset.battery.depleted
        assert not asset.node.up
        assert not asset.alive

    def test_sensor_attachment_respects_profile(self, world):
        sim, net, inv = world
        tag = inv.create(make_profile("occupancy_tag"), Point(0, 0))
        tag.add_sensor(SensingModality.OCCUPANCY)
        with pytest.raises(ConfigurationError):
            tag.add_sensor(SensingModality.RADAR)

    def test_default_sensors_cover_profile(self, world):
        sim, net, inv = world
        drone = inv.create(make_profile("drone"), Point(0, 0))
        sensors = drone.add_default_sensors()
        assert {s.modality for s in sensors} == set(drone.profile.sensing)

    def test_actuator_attachment_respects_profile(self, world):
        sim, net, inv = world
        charge = inv.create(make_profile("demolition_charge"), Point(0, 0))
        charge.add_actuator(ActuationType.DEMOLITION)
        with pytest.raises(ConfigurationError):
            charge.add_actuator(ActuationType.VEHICLE)

    def test_hostility(self, world):
        sim, net, inv = world
        blue = inv.create(make_profile("drone"), Point(0, 0), Affiliation.BLUE)
        red = inv.create(make_profile("drone"), Point(0, 0), Affiliation.RED)
        assert not blue.hostile
        assert red.hostile
        blue.captured = True
        assert blue.hostile

    def test_duty_cycle_bounds(self, world):
        sim, net, inv = world
        with pytest.raises(ConfigurationError):
            inv.create(make_profile("drone"), Point(0, 0), duty_cycle=0.0)

    def test_is_awake_statistics(self, world):
        sim, net, inv = world
        asset = inv.create(make_profile("smartphone"), Point(0, 0), duty_cycle=0.3)
        rng = np.random.default_rng(0)
        awake = sum(asset.is_awake(rng) for _ in range(2000))
        assert 0.25 < awake / 2000 < 0.35


class TestInventoryQueries:
    def test_select_by_modality(self, world):
        sim, net, inv = world
        inv.create(make_profile("camera_pole"), Point(0, 0))
        inv.create(make_profile("ground_sensor"), Point(0, 0))
        cams = inv.select(modality=SensingModality.CAMERA)
        assert len(cams) == 1
        assert cams[0].profile.device_class == "camera_pole"

    def test_select_by_compute(self, world):
        sim, net, inv = world
        inv.create(make_profile("occupancy_tag"), Point(0, 0))
        inv.create(make_profile("edge_cloud"), Point(0, 0))
        big = inv.select(min_compute_flops=1e12)
        assert [a.profile.device_class for a in big] == ["edge_cloud"]

    def test_select_alive_only(self, world):
        sim, net, inv = world
        a = inv.create(make_profile("drone"), Point(0, 0))
        net.fail_node(a.node_id)
        assert inv.select() == []
        assert len(inv.select(alive_only=False)) == 1

    def test_affiliation_counts(self, world):
        sim, net, inv = world
        inv.create(make_profile("drone"), Point(0, 0), Affiliation.BLUE)
        inv.create(make_profile("smartphone"), Point(0, 0), Affiliation.GRAY)
        inv.create(make_profile("smartphone"), Point(0, 0), Affiliation.RED)
        counts = inv.counts()
        assert counts == {"blue": 1, "red": 1, "gray": 1}

    def test_by_node_lookup(self, world):
        sim, net, inv = world
        a = inv.create(make_profile("drone"), Point(0, 0))
        assert inv.by_node(a.node_id) is a
        assert inv.by_node(9999) is None


class TestBattery:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            Battery(0.0)

    def test_drain_accounting(self):
        b = Battery(1.0, tx_j_per_bit=0.001, rx_j_per_bit=0.0005)
        b.drain_radio(bits_tx=100, bits_rx=100)
        assert b.consumed_j() == pytest.approx(0.15)

    def test_depletion_callback_fires_once(self):
        calls = []
        b = Battery(1.0, tx_j_per_bit=1.0, on_depleted=lambda: calls.append(1))
        b.drain_radio(10, 0)
        b.drain_radio(10, 0)
        assert calls == [1]
        assert b.remaining_j == 0.0

    def test_fraction_remaining(self):
        b = Battery(10.0, sense_j_per_sample=1.0)
        b.drain_sense(5)
        assert b.fraction_remaining == pytest.approx(0.5)

    def test_idle_drain(self):
        b = Battery(10.0, idle_w=1.0)
        b.drain_idle(4.0)
        assert b.remaining_j == pytest.approx(6.0)


class TestCompute:
    def test_fifo_completion_order(self):
        sim = Simulator()
        ce = ComputeElement(sim, 1, flops=100.0)
        done = []
        for i in range(3):
            ce.submit(ComputeTask(work_flops=100.0, on_done=lambda t, i=i: done.append(i)))
        sim.run(until=10.0)
        assert done == [0, 1, 2]

    def test_task_latency_includes_queueing(self):
        sim = Simulator()
        ce = ComputeElement(sim, 1, flops=100.0)
        tasks = [ComputeTask(work_flops=100.0) for _ in range(2)]
        for t in tasks:
            ce.submit(t)
        sim.run(until=10.0)
        assert tasks[0].latency_s == pytest.approx(1.0)
        assert tasks[1].latency_s == pytest.approx(2.0)

    def test_queue_saturation_rejects(self):
        sim = Simulator()
        ce = ComputeElement(sim, 1, flops=1.0, queue_capacity=2)
        accepted = [ce.submit(ComputeTask(work_flops=100.0)) for _ in range(5)]
        assert accepted.count(True) == 3  # 1 running + 2 queued
        assert ce.rejected == 2

    def test_utilization(self):
        sim = Simulator()
        ce = ComputeElement(sim, 1, flops=100.0)
        ce.submit(ComputeTask(work_flops=500.0))
        sim.run(until=10.0)
        assert ce.utilization(horizon_s=10.0) == pytest.approx(0.5)

    def test_invalid_flops(self):
        with pytest.raises(ConfigurationError):
            ComputeElement(Simulator(), 1, flops=0.0)


class TestHumanSource:
    def test_reliable_source_mostly_truthful(self):
        src = HumanSource(1, reliability=0.9, report_rate=1.0)
        rng = np.random.default_rng(0)
        claims = [src.report(1, True, rng) for _ in range(1000)]
        true_count = sum(1 for c in claims if c.value)
        assert 850 < true_count < 950

    def test_malicious_source_inverts(self):
        src = HumanSource(1, reliability=0.9, report_rate=1.0, malicious=True)
        rng = np.random.default_rng(0)
        claims = [src.report(1, True, rng) for _ in range(1000)]
        false_count = sum(1 for c in claims if not c.value)
        assert false_count > 850

    def test_report_rate_skips(self):
        src = HumanSource(1, report_rate=0.2)
        rng = np.random.default_rng(0)
        reported = sum(
            1 for _ in range(1000) if src.report(1, True, rng) is not None
        )
        assert 150 < reported < 250

    def test_report_all_batches(self):
        src = HumanSource(1, report_rate=1.0)
        rng = np.random.default_rng(0)
        claims = src.report_all({1: True, 2: False, 3: True}, rng)
        assert [c.event_id for c in claims] == [1, 2, 3]

    def test_invalid_reliability(self):
        with pytest.raises(ConfigurationError):
            HumanSource(1, reliability=1.5)


class TestActuators:
    def test_lethal_requires_human(self):
        act = Actuator(1, ActuationType.DEMOLITION)
        req = ActuationRequest(kind=ActuationType.DEMOLITION, human_decision=False)
        assert not act.fire(req)
        assert act.blocked
        ok = ActuationRequest(kind=ActuationType.DEMOLITION, human_decision=True)
        assert act.fire(ok)

    def test_nonlethal_no_human_needed(self):
        act = Actuator(1, ActuationType.ALARM)
        assert act.fire(ActuationRequest(kind=ActuationType.ALARM))

    def test_interlock_veto_blocks(self):
        interlock = SafetyInterlock()
        interlock.add_guard(
            "humans_present", lambda req: "humans in blast radius"
        )
        act = Actuator(1, ActuationType.DEMOLITION, interlock=interlock)
        req = ActuationRequest(kind=ActuationType.DEMOLITION, human_decision=True)
        assert not act.fire(req)
        assert interlock.vetoes

    def test_guard_order_first_veto_wins(self):
        interlock = SafetyInterlock()
        interlock.add_guard("first", lambda r: "no")
        interlock.add_guard("second", lambda r: "also no")
        veto = interlock.check(ActuationRequest(kind=ActuationType.ALARM))
        assert veto.startswith("first")

    def test_wrong_kind_raises(self):
        act = Actuator(1, ActuationType.ALARM)
        with pytest.raises(ConfigurationError):
            act.fire(ActuationRequest(kind=ActuationType.DOOR))
