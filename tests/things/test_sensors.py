"""Tests for sensor and environment models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.things.capabilities import SensingModality
from repro.things.sensors import Environment, Sensor
from repro.util.geometry import Point


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def cam(range_m=300.0, **kw):
    return Sensor(1, SensingModality.CAMERA, range_m, **kw)


class TestDetectionProbability:
    def test_zero_beyond_range(self):
        s = cam()
        assert s.detection_probability(Point(0, 0), Point(301, 0), Environment()) == 0

    def test_max_at_zero_distance(self):
        s = cam(p_detect_max=0.9)
        p = s.detection_probability(Point(0, 0), Point(0, 0), Environment())
        assert p == pytest.approx(0.9)

    def test_decays_with_distance(self):
        s = cam()
        env = Environment()
        ps = [
            s.detection_probability(Point(0, 0), Point(d, 0), env)
            for d in (0, 100, 200, 290)
        ]
        assert ps == sorted(ps, reverse=True)

    def test_disabled_sensor_detects_nothing(self):
        s = cam()
        s.enabled = False
        assert s.detection_probability(Point(0, 0), Point(10, 0), Environment()) == 0

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            Sensor(1, SensingModality.CAMERA, 0.0)

    def test_invalid_p_detect(self):
        with pytest.raises(ConfigurationError):
            Sensor(1, SensingModality.CAMERA, 10.0, p_detect_max=1.5)


class TestEnvironmentModulation:
    def test_smoke_blinds_camera_not_seismic(self):
        env = Environment(smoke=1.0)
        assert env.modality_factor(SensingModality.CAMERA) == 0.0
        assert env.modality_factor(SensingModality.SEISMIC) == 1.0

    def test_rf_interference_degrades_radar(self):
        env = Environment(rf_interference=1.0)
        assert env.modality_factor(SensingModality.RADAR) < 0.5

    def test_night_partially_degrades_camera(self):
        day = Environment().modality_factor(SensingModality.CAMERA)
        night = Environment(night=1.0).modality_factor(SensingModality.CAMERA)
        assert 0 < night < day

    def test_rain_damps_acoustic(self):
        env = Environment(rain=1.0)
        assert env.modality_factor(SensingModality.ACOUSTIC) < 1.0


class TestScan:
    def test_scan_detects_close_target(self, rng):
        s = cam(p_detect_max=1.0)
        detections = s.scan(
            Point(0, 0), {7: Point(10, 0)}, Environment(), rng, time=5.0
        )
        assert len(detections) == 1
        d = detections[0]
        assert d.target_id == 7
        assert d.time == 5.0
        assert d.modality is SensingModality.CAMERA

    def _errors(self, sensor, truth, rng, trials=400):
        """Collect position errors over detections (misses are skipped)."""
        errors = []
        for _ in range(trials):
            hits = sensor.scan(Point(0, 0), {1: truth}, Environment(), rng, 0)
            errors.extend(d.error_m(truth) for d in hits)
        return errors

    def test_measurement_noise_grows_with_distance(self, rng):
        s = cam(p_detect_max=1.0)
        near_err = self._errors(s, Point(20, 0), rng)
        far_err = self._errors(s, Point(250, 0), rng)
        assert len(near_err) > 50 and len(far_err) > 50
        assert np.mean(far_err) > np.mean(near_err)

    def test_lidar_more_precise_than_acoustic(self, rng):
        lidar = Sensor(1, SensingModality.LIDAR, 200.0, p_detect_max=1.0)
        acoustic = Sensor(1, SensingModality.ACOUSTIC, 200.0, p_detect_max=1.0)
        truth = Point(100, 0)
        l_err = self._errors(lidar, truth, rng)
        a_err = self._errors(acoustic, truth, rng)
        assert len(l_err) > 50 and len(a_err) > 50
        assert np.mean(l_err) < np.mean(a_err)

    def test_out_of_range_targets_skipped(self, rng):
        s = cam()
        assert s.scan(Point(0, 0), {1: Point(9999, 0)}, Environment(), rng, 0) == []

    def test_smoke_blocks_camera_scan(self, rng):
        s = cam(p_detect_max=1.0)
        out = s.scan(Point(0, 0), {1: Point(10, 0)}, Environment(smoke=1.0), rng, 0)
        assert out == []
