"""Tests for capability profiles and device classes."""

import pytest

from repro.things.capabilities import (
    DEVICE_CLASSES,
    ActuationType,
    SensingModality,
    make_profile,
)


class TestDeviceClasses:
    def test_all_classes_well_formed(self):
        for name, profile in DEVICE_CLASSES.items():
            assert profile.device_class == name
            assert profile.battery_j > 0
            assert profile.bandwidth_bps > 0

    def test_heterogeneity_spans_orders_of_magnitude(self):
        flops = [p.compute_flops for p in DEVICE_CLASSES.values() if p.compute_flops]
        assert max(flops) / min(flops) >= 1e6  # "many orders of magnitude"

    def test_sensing_span(self):
        tag = DEVICE_CLASSES["occupancy_tag"]
        drone = DEVICE_CLASSES["drone"]
        assert drone.sensing_range_m > 10 * tag.sensing_range_m

    def test_make_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            make_profile("tank")

    def test_make_profile_overrides(self):
        p = make_profile("drone", tx_power_dbm=30.0)
        assert p.tx_power_dbm == 30.0
        assert p.device_class == "drone"
        # Base class untouched (profiles are frozen/immutable).
        assert DEVICE_CLASSES["drone"].tx_power_dbm != 30.0

    def test_can_sense(self):
        p = make_profile("ground_sensor")
        assert p.can_sense(SensingModality.SEISMIC)
        assert not p.can_sense(SensingModality.CAMERA)

    def test_can_actuate(self):
        p = make_profile("demolition_charge")
        assert p.can_actuate(ActuationType.DEMOLITION)
        assert not p.can_actuate(ActuationType.VEHICLE)

    def test_disposable_flags(self):
        assert DEVICE_CLASSES["occupancy_tag"].disposable
        assert not DEVICE_CLASSES["edge_cloud"].disposable
