"""Campaign-scale integration: many subsystems, long horizon, live attacks.

One 30-minute (virtual) operation combining discovery, mission arbitration,
tracking, health monitoring, jamming, capture, and background attrition.
The assertions are *system-consistency* checks — the kind of invariants
that break when subsystems interact badly, not per-feature behavior
(covered by the unit suites).
"""

import pytest

from repro import ScenarioBuilder, Simulator
from repro.core.mission import MissionGoal, MissionType
from repro.core.services.arbiter import MissionArbiter, MissionState
from repro.core.services.health import HealthMonitorService
from repro.core.services.tracking import TrackingService
from repro.core.synthesis import DiscoveryService
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService
from repro.security.attacks import (
    AttritionProcess,
    JammingAttack,
    NodeCaptureAttack,
)
from repro.things.capabilities import SensingModality

HORIZON = 700.0


@pytest.fixture(scope="module")
def campaign():
    sim = Simulator(seed=2026)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=6, block_size_m=100.0, density=0.4)
        .population(n_blue=60, n_red=10, n_gray=18)
        .targets(5)
        .jammers(2)
        .build()
    )
    scenario.start()

    discovery = DiscoveryService(scenario, scenario.blue_node_ids()[:15])
    discovery.start()

    arbiter = MissionArbiter(scenario)
    surveil = arbiter.submit(
        MissionGoal(
            MissionType.SURVEIL,
            scenario.region,
            min_coverage=0.5,
            duration_s=HORIZON,
            modalities=frozenset(
                {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
                 SensingModality.CAMERA}
            ),
        )
    )

    router = FloodingRouter(scenario.network)
    router.attach_all(scenario.blue_node_ids())
    service = MessageService(router)

    sensors = [a for a in scenario.inventory.blue() if a.sensors][:14]
    sink = scenario.blue_node_ids()[0]
    tracking = TrackingService(scenario, sensors, sink, service)
    tracking.start()

    wearers = [
        a
        for a in scenario.inventory.blue()
        if a.profile.can_sense(SensingModality.PHYSIOLOGICAL)
    ][:6]
    health = None
    if len(wearers) >= 2:
        health = HealthMonitorService(scenario, wearers, sink, service)
        health.start()

    JammingAttack(scenario).schedule(start_s=200.0, duration_s=200.0)
    captured = [a.id for a in scenario.inventory.blue()[:4]]
    NodeCaptureAttack(scenario, captured).schedule(start_s=250.0)
    attrition = AttritionProcess(scenario, mtbf_s=2500.0)
    attrition.schedule(start_s=0.0)

    sim.run(until=HORIZON)
    return {
        "sim": sim,
        "scenario": scenario,
        "discovery": discovery,
        "arbiter": arbiter,
        "surveil": surveil,
        "tracking": tracking,
        "health": health,
        "attrition": attrition,
    }


class TestCampaign:
    def test_simulation_reached_horizon(self, campaign):
        assert campaign["sim"].now == HORIZON

    def test_mission_lifecycle_completed(self, campaign):
        assert campaign["surveil"].state in (
            MissionState.COMPLETED,
            MissionState.ACTIVE,  # completes exactly at the horizon
        )

    def test_discovery_stays_useful_under_attrition(self, campaign):
        # Recall is over *alive* assets, so attrition must not corrupt it.
        recall = campaign["discovery"].recall()
        assert 0.3 <= recall <= 1.0

    def test_attrition_killed_someone_but_not_everyone(self, campaign):
        rate = campaign["attrition"].loss_rate()
        assert 0.0 < rate < 0.9

    def test_tracking_survived_the_jamming_window(self, campaign):
        tracking = campaign["tracking"]
        assert tracking.tracks  # produced tracks
        assert tracking.reports_received > 0
        error = tracking.mean_track_error()
        assert error == error  # not NaN

    def test_health_monitor_consistent(self, campaign):
        health = campaign["health"]
        if health is None:
            pytest.skip("no wearables in draw")
        stats = health.detection_stats()
        # No casualties inflicted through the service API; any alerts must
        # come from silence (attrition victims), never negative counts.
        assert stats["casualties"] == 0.0
        assert stats["false_alarms"] >= 0.0

    def test_captured_assets_flagged_hostile(self, campaign):
        scenario = campaign["scenario"]
        captured = [a for a in scenario.inventory if a.captured]
        assert captured
        assert all(a.hostile for a in captured)

    def test_metrics_and_traces_recorded(self, campaign):
        sim = campaign["sim"]
        assert sim.metrics.counter("net.tx_attempts") > 100
        assert sim.trace.count("attack.launch") >= 2
        assert sim.metrics.has_series("discovery.recall")

    def test_no_dangling_allocations(self, campaign):
        arbiter = campaign["arbiter"]
        if campaign["surveil"].state is MissionState.COMPLETED:
            assert not arbiter.allocated_assets()
