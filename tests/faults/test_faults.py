"""Fault injection: churn, link flaps, partitions, schedule composition."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LinkFlapFault,
    NodeChurnFault,
    PartitionFault,
)
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import FloodingRouter
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def line_network(n, spacing=100.0, seed=1):
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


class TestNodeChurn:
    def test_churn_crashes_and_restarts(self):
        sim, net = line_network(10)
        fault = NodeChurnFault(net, mtbf_s=20.0, mean_downtime_s=5.0)
        fault.schedule(0.0, duration_s=300.0)
        sim.run(until=400.0)
        assert fault.crashes > 0
        assert fault.restarts > 0
        assert sim.trace.count("fault.crash") == fault.crashes
        # Ceasing the window restored everything it took down.
        assert all(node.up for node in net.nodes.values())

    def test_cease_restores_downed_nodes(self):
        sim, net = line_network(6)
        fault = NodeChurnFault(net, mtbf_s=5.0, mean_downtime_s=1e6)
        fault.schedule(0.0, duration_s=60.0)
        sim.run(until=59.0)
        assert any(not node.up for node in net.nodes.values())
        sim.run(until=70.0)
        assert all(node.up for node in net.nodes.values())

    def test_down_time_parameters_validated(self):
        sim, net = line_network(2)
        with pytest.raises(ConfigurationError):
            NodeChurnFault(net, mtbf_s=0.0)

    def test_churn_respects_target_set(self):
        sim, net = line_network(6)
        fault = NodeChurnFault(net, [1, 2], mtbf_s=2.0, mean_downtime_s=1e6)
        fault.schedule(0.0)
        sim.run(until=100.0)
        for node_id, node in net.nodes.items():
            if node_id not in (1, 2):
                assert node.up


class TestLinkFlap:
    def test_explicit_link_flaps_block_traffic(self):
        sim, net = line_network(3)
        fault = LinkFlapFault(net, [(1, 2)], mtbf_s=0.5, mean_downtime_s=1e6)
        fault.schedule(0.0)
        router = FloodingRouter(net)
        router.attach_all(range(1, 4))
        svc = MessageService(router)
        sim.run(until=30.0)  # let the flap fire first
        assert net.link_blocked(1, 2)
        receipt = svc.send(1, 3)
        sim.run(until=60.0)
        assert not receipt.delivered

    def test_heal_restores_link(self):
        sim, net = line_network(3)
        fault = LinkFlapFault(net, [(1, 2)], mtbf_s=1.0, mean_downtime_s=1e6)
        fault.schedule(0.0, duration_s=30.0)
        sim.run(until=60.0)
        assert not net.link_blocked(1, 2)
        assert fault.flaps >= 1

    def test_sampled_links_come_from_topology(self):
        sim, net = line_network(5)
        fault = LinkFlapFault(net, n_links=3, mtbf_s=10.0, mean_downtime_s=5.0)
        fault.schedule(0.0)
        sim.run(until=1.0)
        for a, b in fault._targets:
            assert b in net.neighbors(a, include_down=True) or a == b


class TestPartition:
    def test_partition_blocks_cross_groups_only(self):
        sim, net = line_network(4)
        fault = PartitionFault(net, [[1, 2], [3, 4]])
        fault.launch()
        assert net.link_blocked(2, 3)
        assert not net.link_blocked(1, 2)
        assert not net.link_blocked(3, 4)
        fault.cease()
        assert not net.link_blocked(2, 3)

    def test_partition_stops_delivery_then_heals(self):
        sim, net = line_network(4)
        PartitionFault(net, [[1, 2], [3, 4]]).schedule(0.0, duration_s=50.0)
        router = FloodingRouter(net)
        router.attach_all(range(1, 5))
        svc = MessageService(router)
        blocked = svc.send(1, 4)
        sim.run(until=40.0)
        assert not blocked.delivered
        sim.run(until=60.0)
        after = svc.send(1, 4)
        sim.run(until=120.0)
        assert after.delivered

    def test_spatial_split_covers_population(self):
        sim, net = line_network(6)
        fault = PartitionFault.split_spatial(net)
        assert sorted(fault.mapping) == sorted(net.nodes)
        assert set(fault.mapping.values()) == {0, 1}

    def test_single_group_rejected(self):
        sim, net = line_network(3)
        with pytest.raises(ConfigurationError):
            PartitionFault(net, [[1, 2, 3]])
        with pytest.raises(ConfigurationError):
            PartitionFault(net, [[1, 2], [2, 3]])  # overlapping groups


class TestScheduleAndInjector:
    def test_schedule_tracks_active_faults(self):
        sim, net = line_network(4)
        schedule = FaultSchedule(net)
        schedule.add(PartitionFault(net, [[1, 2], [3, 4]]), 10.0, duration_s=20.0)
        sim.run(until=15.0)
        assert schedule.active_faults() == ["partition"]
        sim.run(until=40.0)
        assert schedule.active_faults() == []

    def test_injector_facade_builds_chaos(self):
        sim, net = line_network(8)
        injector = FaultInjector(net)
        churn = injector.node_churn(mtbf_s=20.0, mean_downtime_s=5.0)
        injector.partition_spatial(start_s=30.0, duration_s=20.0)
        injector.gremlin(drop_p=0.5)
        sim.run(until=200.0)
        assert churn.crashes > 0
        assert len(injector.schedule.entries) == 3
        windows = injector.fault_windows()
        assert set(windows) == {"node_churn", "partition", "gremlin"}
        start, end = windows["partition"][0]
        assert (start, end) == (30.0, 50.0)

    def test_injector_recovery_metrics(self):
        sim, net = line_network(10)
        injector = FaultInjector(net)
        injector.node_churn(mtbf_s=20.0, mean_downtime_s=5.0)
        sim.run(until=300.0)
        assert injector.mttr() > 0.0
        availability = injector.availability()
        assert 0.0 < availability < 1.0
        timeline = injector.availability_timeline(dt_s=10.0)
        assert len(timeline) == 31
        assert all(0.0 <= frac <= 1.0 for _t, frac in timeline)
