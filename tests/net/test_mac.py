"""Tests for the contention MAC model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.mac import ContentionMac


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestContentionMac:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ContentionMac(slot_time_s=0.0)
        with pytest.raises(ConfigurationError):
            ContentionMac(collision_rho=1.0)

    def test_access_delay_positive(self, rng):
        mac = ContentionMac()
        for busy in (0, 1, 10, 100):
            assert mac.access_delay(busy, rng) >= 0.0

    def test_mean_delay_grows_with_contention(self, rng):
        mac = ContentionMac()
        idle = np.mean([mac.access_delay(0, rng) for _ in range(2000)])
        busy = np.mean([mac.access_delay(20, rng) for _ in range(2000)])
        assert busy > idle

    def test_idle_mean_matches_configuration(self, rng):
        mac = ContentionMac(slot_time_s=0.001, mean_backoff_slots=4.0)
        mean = np.mean([mac.access_delay(0, rng) for _ in range(5000)])
        assert mean == pytest.approx(0.004, rel=0.1)

    def test_collision_survival_decays_with_neighbors(self):
        mac = ContentionMac(collision_rho=0.05)
        survivals = [mac.collision_survival(k) for k in (0, 1, 5, 20)]
        assert survivals[0] == 1.0
        assert survivals == sorted(survivals, reverse=True)
        assert all(0.0 < s <= 1.0 for s in survivals)

    def test_negative_neighbors_clamped(self, rng):
        mac = ContentionMac()
        assert mac.collision_survival(-3) == 1.0
        assert mac.access_delay(-3, rng) >= 0.0

    def test_zero_rho_never_collides(self):
        mac = ContentionMac(collision_rho=0.0)
        assert mac.collision_survival(1000) == 1.0
