"""PacketPool recycling semantics and the slotted Packet surface."""

from __future__ import annotations

import pickle

import pytest

from repro.net.packet import Packet, PacketKind
from repro.net.pool import PacketPool


def _packet(**kw):
    defaults = dict(src=1, dst=9, payload=("m", 0), ttl=4, created_at=2.0)
    defaults.update(kw)
    return Packet(**defaults)


class TestPool:
    def test_clone_matches_plain_copy(self):
        pool = PacketPool()
        original = _packet(headers={"geo": {"detours": 1}})
        pooled = pool.clone_for_forwarding(original)
        assert pooled == original.copy_for_forwarding()
        assert pooled.ttl == original.ttl - 1
        assert pooled.path is not original.path
        # One-level-deep header copy: the dict value is its own object.
        assert pooled.headers["geo"] is not original.headers["geo"]

    def test_release_then_clone_reuses_the_shell(self):
        pool = PacketPool()
        dead = pool.clone_for_forwarding(_packet())
        pool.release(dead)
        assert len(pool) == 1 and pool.released == 1
        revived = pool.clone_for_forwarding(_packet(src=5, dst=6, payload="x"))
        assert revived is dead  # same shell, fully overwritten
        assert pool.reused == 1 and len(pool) == 0
        assert revived.src == 5 and revived.payload == "x" and revived.ttl == 3

    def test_release_drops_application_references(self):
        pool = PacketPool()
        clone = pool.clone_for_forwarding(_packet(payload={"big": "blob"}))
        clone.path.append(3)
        pool.release(clone)
        assert clone.payload is None
        assert clone.path == [] and clone.headers == {}

    def test_free_list_is_bounded(self):
        pool = PacketPool(max_free=2)
        for _ in range(5):
            pool.release(_packet())
        assert len(pool) == 2
        assert pool.released == 5


class TestSlottedPacket:
    def test_no_instance_dict(self):
        with pytest.raises(AttributeError):
            _packet().not_a_field = 1

    def test_unhashable_like_the_old_dataclass(self):
        with pytest.raises(TypeError):
            hash(_packet())
        with pytest.raises(TypeError):
            {_packet()}

    def test_kind_codes_are_dense_and_values_wire_stable(self):
        codes = sorted(k.code for k in PacketKind)
        assert codes == list(range(len(PacketKind)))
        assert PacketKind.DATA.value == "data"
        assert PacketKind("rreq") is PacketKind.RREQ

    def test_pickle_round_trip(self):
        # Shard handoffs pickle packets across process boundaries.
        original = _packet(path=[1, 2], headers={"k": 7})
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
