"""The ``Packet.copy_for_forwarding`` header-copy contract.

Headers are copied one container level deep: flat mutable containers
(dict/list/set) get their own copy per forwarding hop, everything else —
scalars, tuples, and anything nested deeper than one level — is shared.
The aliasing this rules out bit us once: a router mutating a dict header
on a forwarded copy was silently editing the copy the previous hop still
held in its retransmit queue.
"""

from repro.net.packet import Packet, PacketKind


def make_packet(**headers):
    return Packet(src=1, dst=9, kind=PacketKind.DATA, ttl=8,
                  path=[1], headers=headers)


class TestHeaderCopy:
    def test_flat_mutable_containers_are_copied(self):
        pkt = make_packet(seen={1}, route=[1, 2], meta={"detours": 0})
        fwd = pkt.copy_for_forwarding()
        fwd.headers["seen"].add(99)
        fwd.headers["route"].append(99)
        fwd.headers["meta"]["detours"] = 5
        assert pkt.headers["seen"] == {1}
        assert pkt.headers["route"] == [1, 2]
        assert pkt.headers["meta"] == {"detours": 0}

    def test_immutable_values_are_shared(self):
        ctx = (7, 3, 2)  # e.g. a trace-context tuple
        pkt = make_packet(trace=ctx, label="x", n=4)
        fwd = pkt.copy_for_forwarding()
        assert fwd.headers["trace"] is ctx
        assert fwd.headers == pkt.headers

    def test_nested_values_are_shared_read_only(self):
        # The documented limit of the contract: one level deep only.
        inner = [1]
        pkt = make_packet(nested={"inner": inner})
        fwd = pkt.copy_for_forwarding()
        assert fwd.headers["nested"] is not pkt.headers["nested"]
        assert fwd.headers["nested"]["inner"] is inner

    def test_path_and_ttl_per_copy(self):
        pkt = make_packet()
        fwd = pkt.copy_for_forwarding()
        fwd.path.append(2)
        assert pkt.path == [1]
        assert fwd.ttl == pkt.ttl - 1
        assert fwd.uid == pkt.uid  # same logical packet
        assert fwd.payload is pkt.payload

    def test_header_dict_itself_is_fresh(self):
        pkt = make_packet(a=1)
        fwd = pkt.copy_for_forwarding()
        fwd.headers["b"] = 2
        assert "b" not in pkt.headers
