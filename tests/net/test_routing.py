"""Tests for the routing protocol family.

Uses small deterministic line/grid topologies with a quiet channel so the
protocol logic (not channel randomness) is what is being verified.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import (
    AodvRouter,
    EpidemicRouter,
    FloodingRouter,
    GossipRouter,
    GreedyGeoRouter,
    SprayAndWaitRouter,
)
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def line_network(n, spacing=30.0, seed=1):
    """n nodes in a line; adjacent nodes are solidly in range."""
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


def run_unicast(router, sim, src, dst, until=30.0):
    svc = MessageService(router)
    receipt = svc.send(src, dst, payload="hello")
    sim.run(until=until)
    return receipt


class TestFlooding:
    def test_delivers_multi_hop(self):
        sim, net = line_network(6)
        router = FloodingRouter(net)
        router.attach_all(range(1, 7))
        receipt = run_unicast(router, sim, 1, 6)
        assert receipt.delivered
        assert receipt.hops >= 2

    def test_broadcast_reaches_everyone(self):
        sim, net = line_network(6)
        router = FloodingRouter(net)
        router.attach_all(range(1, 7))
        svc = MessageService(router)
        got = []
        for i in range(2, 7):
            svc.on_message(i, lambda p, i=i: got.append(i))
        svc.send(1, None, payload="all")
        sim.run(until=30.0)
        assert set(got) == {2, 3, 4, 5, 6}

    def test_duplicate_suppression(self):
        sim, net = line_network(4)
        router = FloodingRouter(net)
        router.attach_all(range(1, 5))
        svc = MessageService(router)
        hits = []
        svc.on_message(4, lambda p: hits.append(1))
        svc.send(1, 4)
        sim.run(until=30.0)
        assert len(hits) == 1

    def test_ttl_limits_reach(self):
        # 100 m spacing: only adjacent nodes are in range, so 1 -> 8 needs
        # 7 hops and a TTL of 2 cannot get there.
        sim, net = line_network(8, spacing=100.0)
        router = FloodingRouter(net)
        router.attach_all(range(1, 9))
        svc = MessageService(router)
        receipt = svc.send(1, 8, ttl=2)
        sim.run(until=30.0)
        assert not receipt.delivered


class TestGossip:
    def test_p1_equals_flooding_reach(self):
        sim, net = line_network(5)
        router = GossipRouter(net, forward_probability=1.0)
        router.attach_all(range(1, 6))
        receipt = run_unicast(router, sim, 1, 5)
        assert receipt.delivered

    def test_invalid_probability(self):
        sim, net = line_network(2)
        with pytest.raises(ConfigurationError):
            GossipRouter(net, forward_probability=0.0)

    def test_low_p_fewer_transmissions(self):
        def tx_count(p, seed):
            sim, net = line_network(12, seed=seed)
            router = GossipRouter(net, forward_probability=p)
            router.attach_all(range(1, 13))
            svc = MessageService(router)
            for _ in range(5):
                svc.send(1, None)
            sim.run(until=60.0)
            return sim.metrics.counter("net.tx_attempts")

        assert tx_count(0.3, 2) < tx_count(1.0, 2)


class TestGreedyGeo:
    def test_delivers_along_line(self):
        sim, net = line_network(6)
        router = GreedyGeoRouter(net)
        router.attach_all(range(1, 7))
        receipt = run_unicast(router, sim, 1, 6)
        assert receipt.delivered
        # Greedy on a line should take near-minimal hops.
        assert receipt.hops <= 6

    def test_unknown_destination_location(self):
        sim, net = line_network(3)
        router = GreedyGeoRouter(net, location_service=lambda nid: None)
        router.attach_all(range(1, 4))
        receipt = run_unicast(router, sim, 1, 3)
        assert not receipt.delivered
        assert sim.metrics.counter("route.geo.no_location") > 0

    def test_void_drop_counted(self):
        # Two clusters far apart: greedy cannot cross the gap.
        sim = Simulator(seed=1)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=1))
        net.create_node(1, Point(0, 0))
        net.create_node(2, Point(30, 0))
        net.create_node(3, Point(5000, 0))
        router = GreedyGeoRouter(net)
        router.attach_all([1, 2, 3])
        receipt = run_unicast(router, sim, 1, 3)
        assert not receipt.delivered


class TestAodv:
    def test_discovery_then_delivery(self):
        sim, net = line_network(6)
        router = AodvRouter(net)
        router.attach_all(range(1, 7))
        receipt = run_unicast(router, sim, 1, 6, until=60.0)
        assert receipt.delivered
        assert sim.metrics.counter("route.aodv.rreq") >= 1
        assert sim.metrics.counter("route.aodv.rrep") >= 1

    def test_route_reuse_skips_second_discovery(self):
        sim, net = line_network(5)
        router = AodvRouter(net)
        router.attach_all(range(1, 6))
        svc = MessageService(router)
        r1 = svc.send(1, 5)
        sim.run(until=30.0)
        rreq_after_first = sim.metrics.counter("route.aodv.rreq")
        r2 = svc.send(1, 5)
        sim.run(until=60.0)
        assert r1.delivered and r2.delivered
        assert sim.metrics.counter("route.aodv.rreq") == rreq_after_first

    def test_cached_route_faster_than_discovery(self):
        sim, net = line_network(5)
        router = AodvRouter(net)
        router.attach_all(range(1, 6))
        svc = MessageService(router)
        r1 = svc.send(1, 5)
        sim.run(until=30.0)
        r2 = svc.send(1, 5)
        sim.run(until=60.0)
        assert r2.latency_s < r1.latency_s

    def test_reroutes_after_node_failure(self):
        # Grid so an alternate path exists.
        sim = Simulator(seed=3)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=3))
        coords = {
            1: (0, 0), 2: (30, 0), 3: (60, 0),
            4: (0, 30), 5: (30, 30), 6: (60, 30),
        }
        for nid, (x, y) in coords.items():
            net.create_node(nid, Point(x, y))
        router = AodvRouter(net)
        router.attach_all(coords)
        svc = MessageService(router)
        r1 = svc.send(1, 3)
        sim.run(until=30.0)
        assert r1.delivered
        net.fail_node(2)
        r2 = svc.send(1, 3)
        sim.run(until=90.0)
        assert r2.delivered

    def test_unreachable_destination_fails_discovery(self):
        sim = Simulator(seed=1)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=1))
        net.create_node(1, Point(0, 0))
        net.create_node(2, Point(9000, 0))
        router = AodvRouter(net)
        router.attach_all([1, 2])
        receipt = run_unicast(router, sim, 1, 2, until=120.0)
        assert not receipt.delivered
        assert sim.metrics.counter("route.aodv.discovery_failed") >= 1


class TestDtn:
    def _partitioned(self, seed=5):
        """Two islands bridged only by a ferry node that moves between them."""
        sim = Simulator(seed=seed)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
        net.create_node(1, Point(0, 0))        # island A
        net.create_node(2, Point(5000, 0))     # island B
        net.create_node(3, Point(0, 20))       # ferry starts at A
        return sim, net

    def _ferry(self, sim, net, period=20.0):
        def shuttle():
            pos = net.node(3).position
            new_x = 5000.0 - pos.x + 20.0 if pos.x < 2500 else 20.0
            net.set_position(3, Point(new_x - 20.0, 20.0))

        sim.every(period, shuttle)

    def test_epidemic_crosses_partition(self):
        sim, net = self._partitioned()
        router = EpidemicRouter(net, contact_period_s=2.0)
        router.attach_all([1, 2, 3])
        self._ferry(sim, net)
        svc = MessageService(router)
        receipt = svc.send(1, 2)
        sim.run(until=300.0)
        assert receipt.delivered
        assert receipt.latency_s > 10.0  # had to wait for the ferry

    def test_spray_and_wait_crosses_partition(self):
        sim, net = self._partitioned()
        router = SprayAndWaitRouter(net, copies=4, contact_period_s=2.0)
        router.attach_all([1, 2, 3])
        self._ferry(sim, net)
        svc = MessageService(router)
        receipt = svc.send(1, 2)
        sim.run(until=300.0)
        assert receipt.delivered

    def test_spray_respects_copy_budget(self):
        sim, net = line_network(10)
        epidemic = EpidemicRouter(net, contact_period_s=2.0)
        epidemic.attach_all(range(1, 11))
        svc = MessageService(epidemic)
        svc.send(1, 10)
        sim.run(until=100.0)
        epidemic_tx = sim.metrics.counter("net.tx_attempts")

        sim2, net2 = line_network(10, seed=2)
        spray = SprayAndWaitRouter(net2, copies=2, contact_period_s=2.0)
        spray.attach_all(range(1, 11))
        svc2 = MessageService(spray)
        svc2.send(1, 10)
        sim2.run(until=100.0)
        spray_tx = sim2.metrics.counter("net.tx_attempts")
        assert spray_tx < epidemic_tx

    def test_bundle_expiry(self):
        sim, net = self._partitioned()
        router = EpidemicRouter(net, contact_period_s=2.0, bundle_lifetime_s=5.0)
        router.attach_all([1, 2, 3])
        svc = MessageService(router)
        receipt = svc.send(1, 2)
        sim.run(until=100.0)  # no ferry: bundle should expire, not deliver
        assert not receipt.delivered
        assert sim.metrics.counter("route.epidemic.expired") >= 1

    def test_invalid_copies(self):
        sim, net = line_network(2)
        with pytest.raises(ConfigurationError):
            SprayAndWaitRouter(net, copies=0)


class TestMessageService:
    def test_delivery_ratio_nan_when_no_sends(self):
        import math

        sim, net = line_network(2)
        router = FloodingRouter(net)
        router.attach_all([1, 2])
        svc = MessageService(router)
        assert math.isnan(svc.delivery_ratio())

    def test_transmissions_per_delivery(self):
        sim, net = line_network(3)
        router = FloodingRouter(net)
        router.attach_all([1, 2, 3])
        svc = MessageService(router)
        svc.send(1, 3)
        sim.run(until=30.0)
        assert svc.transmissions_per_delivery() >= 1.0


class TestSprayCopyAccounting:
    def test_failed_transfer_does_not_burn_copies(self):
        # Receiver far out of range: the contact sweep tries (the neighbor
        # table is stale by construction) but the radio transfer fails, so
        # the copy budget must stay intact.
        sim = Simulator(seed=9)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=9))
        net.create_node(1, Point(0, 0))
        net.create_node(2, Point(30, 0))
        router = SprayAndWaitRouter(net, copies=8, contact_period_s=2.0)
        router.attach_all([1, 2])
        svc = MessageService(router)
        svc.send(1, 99) if False else None
        # Destination 3 is unknown to the network; bundle just sits at 1
        # and sprays copies to 2 on contact.
        net.create_node(3, Point(9000, 0))
        router.attach(3)
        receipt = svc.send(1, 3)
        # Force the radio to fail by moving node 2 away after neighbor
        # discovery has run once (store sweep uses current neighbors, so
        # instead we verify conservation: total copies across custodians
        # never exceeds the initial budget).
        sim.run(until=60.0)
        total_copies = sum(
            b.copies
            for store in router._stores.values()
            for b in store.values()
        )
        assert total_copies <= 8

    def test_copies_conserved_on_quiet_channel(self):
        sim, net = line_network(6)
        router = SprayAndWaitRouter(net, copies=8, contact_period_s=2.0)
        router.attach_all(range(1, 7))
        svc = MessageService(router)
        receipt = svc.send(1, 99_999)  # unreachable destination id
        sim.run(until=40.0)
        total_copies = sum(
            b.copies
            for store in router._stores.values()
            for b in store.values()
        )
        # Binary spray conserves the total copy count across custodians.
        assert total_copies == 8


class TestMessageServiceMulticast:
    def test_multiple_handlers_on_one_node_all_fire(self):
        sim, net = line_network(3)
        router = FloodingRouter(net)
        router.attach_all(range(1, 4))
        svc = MessageService(router)
        got_a, got_b = [], []
        svc.on_message(3, lambda p: got_a.append(p.payload))
        svc.on_message(3, lambda p: got_b.append(p.payload))
        svc.send(1, 3, payload="both")
        sim.run(until=30.0)
        assert got_a == ["both"]
        assert got_b == ["both"]
