"""Cross-router regression: self-delivery and path accounting consistency.

Every router must agree on two accounting contracts, because experiment
metrics (hop counts, path tomography) compare protocols against each other:

* a self-addressed packet is delivered locally with ``hops == 0`` and
  ``path == [src]`` — historically GossipRouter broadcast it instead and
  the sender never saw its own message;
* a unicast across a quiet line network arrives with ``path`` listing every
  visited node in order (origin first, destination last) and ``hops ==
  len(path) - 1``.
"""

import pytest

from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import (
    AodvRouter,
    EpidemicRouter,
    FloodingRouter,
    GossipRouter,
    GreedyGeoRouter,
    SprayAndWaitRouter,
)
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point

ROUTERS = {
    "flooding": lambda net: FloodingRouter(net),
    "gossip": lambda net: GossipRouter(net, forward_probability=1.0),
    "geo": lambda net: GreedyGeoRouter(net),
    "aodv": lambda net: AodvRouter(net),
    "epidemic": lambda net: EpidemicRouter(net, contact_period_s=1.0),
    "spray": lambda net: SprayAndWaitRouter(net, copies=8, contact_period_s=1.0),
}


def line_network(n, seed=1, spacing=100.0):
    """Comm range at default tx power is ~147 m, so spacing 100 puts only
    adjacent nodes in radio range: the 4-node line has exactly one route."""
    sim = Simulator(seed=seed)
    net = Network(
        sim, Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    )
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


@pytest.mark.parametrize("name", sorted(ROUTERS))
class TestSelfDelivery:
    def test_self_addressed_packet_is_delivered_locally(self, name):
        sim, net = line_network(4)
        router = ROUTERS[name](net)
        router.attach_all(range(1, 5))
        svc = MessageService(router)
        got = []
        svc.on_message(2, got.append)
        receipt = svc.send(2, 2, payload="note to self")
        sim.run(until=30.0)
        assert receipt.delivered, f"{name}: self-send must deliver"
        assert len(got) == 1, f"{name}: exactly one local delivery"
        pkt = got[0]
        assert pkt.hops == 0, f"{name}: self-delivery takes zero hops"
        assert pkt.path == [2], f"{name}: path is just the origin"
        assert receipt.latency_s == 0.0


@pytest.mark.parametrize("name", sorted(ROUTERS))
class TestPathAccounting:
    def test_unicast_path_is_ordered_and_consistent(self, name):
        sim, net = line_network(4)
        router = ROUTERS[name](net)
        router.attach_all(range(1, 5))
        svc = MessageService(router)
        got = []
        svc.on_message(4, got.append)
        receipt = svc.send(1, 4, payload="hi")
        sim.run(until=120.0)
        assert receipt.delivered, f"{name}: line unicast must deliver"
        pkt = got[0]
        # Path starts at the origin, ends at the destination, never
        # repeats a node on a quiet line, and hops matches its length.
        assert pkt.path[0] == 1, f"{name}: path starts at origin"
        assert pkt.path[-1] == 4, f"{name}: path ends at destination"
        assert len(set(pkt.path)) == len(pkt.path), f"{name}: no revisits"
        assert pkt.hops == len(pkt.path) - 1
        # On a 4-node line the only loop-free route is 1-2-3-4.
        assert pkt.path == [1, 2, 3, 4], f"{name}: shortest line route"
