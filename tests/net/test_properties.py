"""Property-based tests for network-layer invariants."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channel import Channel, Jammer
from repro.net.node import Network
from repro.net.packet import Packet
from repro.net.topology import build_topology
from repro.sim import Simulator
from repro.util.geometry import Point

coords = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)
powers = st.floats(min_value=-10.0, max_value=33.0)


class TestChannelProperties:
    @given(powers, coords, coords, coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_delivery_probability_valid(self, power, x1, y1, x2, y2):
        channel = Channel(seed=1)
        p = channel.delivery_probability(power, Point(x1, y1), Point(x2, y2), 1, 2)
        assert 0.0 <= p <= 1.0

    @given(powers)
    @settings(max_examples=30, deadline=None)
    def test_comm_range_positive_and_monotone(self, power):
        channel = Channel(seed=1)
        r = channel.comm_range_m(power)
        assert r >= channel.reference_distance_m
        assert channel.comm_range_m(power + 3.0) >= r

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_shadowing_symmetric(self, a, b):
        channel = Channel(shadowing_sigma_db=6.0, seed=5)
        assert channel.shadowing_db(a, b) == channel.shadowing_db(b, a)

    @given(
        st.lists(
            st.tuples(coords, coords), min_size=1, max_size=6, unique=True
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_jammers_never_increase_delivery(self, jammer_positions):
        clean = Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=1)
        jammed = Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=1)
        for jx, jy in jammer_positions:
            jammed.add_jammer(Jammer(position=Point(jx, jy), power_dbm=30.0))
        tx, rx = Point(100, 100), Point(180, 100)
        assert jammed.delivery_probability(20.0, tx, rx) <= (
            clean.delivery_probability(20.0, tx, rx) + 1e-12
        )


class TestTopologyProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=800),
                st.floats(min_value=0, max_value=800),
            ),
            min_size=2,
            max_size=25,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_snapshot_consistency(self, positions):
        sim = Simulator(seed=3)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=3))
        for i, (x, y) in enumerate(positions, start=1):
            net.create_node(i, Point(x, y))
        topo = build_topology(net)
        # All nodes present; all edges valid and annotated.
        assert topo.node_count == len(positions)
        for a, b, data in topo.graph.edges(data=True):
            assert 0.0 < data["p"] <= 1.0
            assert data["etx"] == pytest.approx(1.0 / data["p"])
        # Components partition the node set.
        comps = topo.components()
        all_nodes = set()
        for comp in comps:
            assert not (comp & all_nodes)
            all_nodes |= comp
        assert all_nodes == set(topo.graph.nodes)

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_neighbor_symmetry_equal_power(self, n):
        sim = Simulator(seed=4)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=4))
        rng = np.random.default_rng(n)
        for i in range(1, n + 1):
            net.create_node(
                i, Point(float(rng.uniform(0, 500)), float(rng.uniform(0, 500)))
            )
        for i in range(1, n + 1):
            for j in net.neighbors(i):
                assert i in net.neighbors(j)


class TestPacketProperties:
    @given(st.integers(min_value=0, max_value=64), st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_forward_chain_ttl(self, ttl, hops):
        pkt = Packet(src=1, dst=2, ttl=ttl)
        current = pkt
        for _ in range(hops):
            current = current.copy_for_forwarding()
        assert current.ttl == ttl - hops
        assert current.uid == pkt.uid
