"""Reference scenarios used to pin the transmit-path trace fingerprints.

These scenarios were run against the pre-refactor ``Network.send`` /
``Network.broadcast`` implementation (the hand-inlined transmit path that
predates :mod:`repro.net.stack`) and their trace fingerprints recorded in
``test_stack_fingerprint.py``.  The refactored layered dispatcher must
reproduce those fingerprints bit-for-bit: every RNG draw, every scheduled
delay, and every trace record (packet tracing included) has to happen in
exactly the same order at exactly the same virtual time.

Only stable public APIs are used, so the scenarios themselves are valid on
both sides of the refactor.
"""

from __future__ import annotations

from repro.faults.gremlin import PacketGremlin
from repro.net.channel import Channel
from repro.net.mobility import MobilityManager, RandomWaypoint
from repro.net.node import Network
from repro.net.routing import (
    AodvRouter,
    EpidemicRouter,
    FloodingRouter,
    GossipRouter,
    GreedyGeoRouter,
    SprayAndWaitRouter,
)
from repro.net.transport import MessageService, ReliableMessageService
from repro.sim import Simulator
from repro.util.geometry import Point, Region

__all__ = ["FINGERPRINT_SCENARIOS"]


def _grid_network(sim: Simulator, n_side: int = 5, spacing: float = 60.0) -> Network:
    """A deterministic n_side x n_side grid with the default channel model."""
    channel = Channel(seed=sim.rng.seed)
    net = Network(sim, channel)
    node_id = 1
    for row in range(n_side):
        for col in range(n_side):
            net.create_node(node_id, Point(col * spacing, row * spacing))
            node_id += 1
    return net


def _traffic(sim, svc, node_ids, n_messages=24, start=1.0, gap=0.8):
    for i in range(n_messages):
        src = node_ids[(3 * i) % len(node_ids)]
        dst = node_ids[(7 * i + 5) % len(node_ids)]
        if dst == src:
            dst = node_ids[(dst + 1) % len(node_ids)]
        sim.call_at(
            start + i * gap,
            lambda s=src, d=dst, k=i: svc.send(s, d, payload=("m", k)),
        )


def _inject_faults(sim, net, node_ids):
    """Node churn, a link cut, and a packet gremlin — the full fault menu."""
    victim = node_ids[len(node_ids) // 2]
    sim.call_at(6.0, lambda: net.fail_node(victim))
    sim.call_at(14.0, lambda: net.restore_node(victim))
    a, b = node_ids[1], node_ids[2]
    sim.call_at(4.0, lambda: net.block_link(a, b))
    sim.call_at(16.0, lambda: net.unblock_link(a, b))
    gremlin = PacketGremlin(
        net,
        drop_p=0.05,
        duplicate_p=0.04,
        corrupt_p=0.03,
        delay_p=0.10,
        delay_mean_s=0.02,
    )
    sim.call_at(2.0, gremlin.launch)
    sim.call_at(18.0, gremlin.cease)


def scenario_flooding(seed: int = 11) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim)
    ids = sorted(net.nodes)
    router = FloodingRouter(net)
    router.attach_all(ids)
    svc = MessageService(router)
    _traffic(sim, svc, ids, n_messages=12, gap=1.3)
    # Broadcast traffic exercises the batched (fan-out) path.
    for i in range(4):
        sim.call_at(2.5 + i * 3.0, lambda s=ids[i], k=i: svc.send(s, None, payload=k))
    _inject_faults(sim, net, ids)
    sim.run(until=30.0)
    return sim.trace.fingerprint()


def scenario_gossip(seed: int = 12) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim)
    ids = sorted(net.nodes)
    router = GossipRouter(net, forward_probability=0.8)
    router.attach_all(ids)
    svc = MessageService(router)
    _traffic(sim, svc, ids, n_messages=16, gap=1.1)
    _inject_faults(sim, net, ids)
    sim.run(until=30.0)
    return sim.trace.fingerprint()


def scenario_geo(seed: int = 13) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim)
    ids = sorted(net.nodes)
    router = GreedyGeoRouter(net)
    router.attach_all(ids)
    svc = MessageService(router)
    _traffic(sim, svc, ids, n_messages=20, gap=0.9)
    _inject_faults(sim, net, ids)
    sim.run(until=30.0)
    return sim.trace.fingerprint()


def scenario_aodv_reliable(seed: int = 14) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim)
    ids = sorted(net.nodes)
    router = AodvRouter(net)
    router.attach_all(ids)
    svc = ReliableMessageService(router, base_rto_s=2.0, max_retries=3)
    _traffic(sim, svc, ids, n_messages=18, gap=1.0)
    _inject_faults(sim, net, ids)
    sim.run(until=40.0)
    return sim.trace.fingerprint()


def scenario_epidemic_mobile(seed: int = 15) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim, n_side=4, spacing=150.0)
    ids = sorted(net.nodes)
    router = EpidemicRouter(net, contact_period_s=2.0)
    router.attach_all(ids)
    mobility = MobilityManager(sim, net, update_period_s=1.0)
    region = Region(0.0, 0.0, 450.0, 450.0)
    for nid in ids:
        mobility.attach(nid, RandomWaypoint(net.node(nid).position, region,
                                            speed_range=(5.0, 15.0)))
    mobility.start()
    svc = MessageService(router)
    _traffic(sim, svc, ids, n_messages=10, gap=2.0)
    sim.run(until=40.0)
    return sim.trace.fingerprint()


def scenario_spray_wait_mobile(seed: int = 16) -> str:
    sim = Simulator(seed=seed)
    sim.enable_packet_tracing()
    net = _grid_network(sim, n_side=4, spacing=150.0)
    ids = sorted(net.nodes)
    router = SprayAndWaitRouter(net, copies=4, contact_period_s=2.0)
    router.attach_all(ids)
    mobility = MobilityManager(sim, net, update_period_s=1.0)
    region = Region(0.0, 0.0, 450.0, 450.0)
    for nid in ids:
        mobility.attach(nid, RandomWaypoint(net.node(nid).position, region,
                                            speed_range=(5.0, 15.0)))
    mobility.start()
    svc = MessageService(router)
    _traffic(sim, svc, ids, n_messages=10, gap=2.0)
    sim.run(until=40.0)
    return sim.trace.fingerprint()


#: name -> zero-arg callable returning the run's full trace fingerprint.
FINGERPRINT_SCENARIOS = {
    "flooding": scenario_flooding,
    "gossip": scenario_gossip,
    "geo": scenario_geo,
    "aodv_reliable": scenario_aodv_reliable,
    "epidemic_mobile": scenario_epidemic_mobile,
    "spray_wait_mobile": scenario_spray_wait_mobile,
}


if __name__ == "__main__":
    for name, fn in FINGERPRINT_SCENARIOS.items():
        print(f'    "{name}": "{fn()}",')
