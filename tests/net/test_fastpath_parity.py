"""Scalar path == vectorized path, bit for bit.

The fast path (numpy batch draws and verdict compares, gated by
:mod:`repro.net.fastpath`) is only allowed to change *speed*.  These tests
pin that contract end to end: the AODV + reliable-transport scenario —
node churn, a link cut, a packet gremlin, retransmission timers — must
produce the identical trace fingerprint whether ``REPRO_FAST_PATH`` is on
or off, and a forensics manifest stamped by a fast run must replay clean
under the scalar path (and vice versa).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.net import fastpath
from repro.net.channel import Channel
from repro.obs.forensics import manifest_path
from repro.obs.report import main as obs_main
from repro.shard.engine import run_serial
from repro.shard.spec import ShardScenarioSpec, WorkloadSpec
from tests.net.stack_scenarios import FINGERPRINT_SCENARIOS
from tests.net.test_stack_fingerprint import GOLDEN


@contextmanager
def fast_path(value):
    """Pin ``REPRO_FAST_PATH`` (``None`` = unset) and refresh the gate."""
    old = os.environ.get("REPRO_FAST_PATH")
    try:
        if value is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = value
        fastpath.refresh()
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = old
        fastpath.refresh()


# ----------------------------------------------------------------- the gate


def test_gate_env_kill_switch():
    for off in ("0", "false", "off"):
        with fast_path(off):
            assert not fastpath.fast_path_enabled()
            assert fastpath.numpy_or_none() is None
    with fast_path(None):
        # numpy is in the base image; unset means on.
        assert fastpath.fast_path_enabled()
    with fast_path("1"):
        assert fastpath.fast_path_enabled()


def test_gate_is_cached_until_refresh():
    with fast_path("1"):
        assert fastpath.fast_path_enabled()
        os.environ["REPRO_FAST_PATH"] = "0"
        # Stale until someone refreshes — the documented contract.
        assert fastpath.fast_path_enabled()
        fastpath.refresh()
        assert not fastpath.fast_path_enabled()


# ---------------------------------------------------- kernel-level identity


def test_delivery_verdicts_numpy_and_scalar_agree():
    channel = Channel(seed=5)
    import random

    rng = random.Random(99)
    probs = [rng.random() for _ in range(64)]
    draws = [rng.random() for _ in range(64)]
    for survival in (1.0, 0.85):
        with fast_path("1"):
            fast = channel.delivery_verdicts(probs, draws, survival=survival)
        with fast_path("0"):
            slow = channel.delivery_verdicts(probs, draws, survival=survival)
        assert fast == slow
        assert all(isinstance(v, bool) for v in slow)


# ------------------------------------------------- scenario-level identity


def test_aodv_churn_fingerprint_identical_across_paths():
    """The full AODV + churn + gremlin world, both arms, against GOLDEN.

    A fresh Network is built inside each arm (dispatchers snapshot the
    gate at construction), so this exercises the real batched broadcast
    and the real scalar fallback — not a mocked switch.
    """
    scenario = FINGERPRINT_SCENARIOS["aodv_reliable"]
    with fast_path("1"):
        fast = scenario()
    with fast_path("0"):
        scalar = scenario()
    assert fast == scalar
    assert fast == GOLDEN["aodv_reliable"]


def test_flooding_broadcast_fingerprint_identical_across_paths():
    """Broadcast fan-out is the batched slab-draw path; pin it separately."""
    scenario = FINGERPRINT_SCENARIOS["flooding"]
    with fast_path("1"):
        fast = scenario()
    with fast_path("0"):
        scalar = scenario()
    assert fast == scalar
    assert fast == GOLDEN["flooding"]


# ----------------------------------------------- forensics replay crosses


def _world(seed: int = 42) -> ShardScenarioSpec:
    return ShardScenarioSpec(
        seed=seed,
        kind="uniform",
        n_nodes=10,
        spacing_m=110.0,
        workload=WorkloadSpec(rate_hz=1.5),
    )


def test_fast_run_manifest_replays_clean_under_scalar_path(
    tmp_path, monkeypatch, capsys
):
    """A manifest stamped by a fast-path run replays exit-0 — even when the
    replaying process runs the scalar path (and the reverse).  This is the
    forensics-grade statement of scalar == vectorized."""
    ring_dir = tmp_path / "rings"
    monkeypatch.setenv("REPRO_OBS_RING_DIR", str(ring_dir))
    with fast_path("1"):
        run_serial(_world(), 6.0, checkpoint_interval_s=2.0)
    monkeypatch.delenv("REPRO_OBS_RING_DIR")
    (ring,) = [
        str(ring_dir / name)
        for name in sorted(os.listdir(ring_dir))
        if name.endswith(".ring")
    ]
    manifest = manifest_path(ring)
    with fast_path("0"):
        assert obs_main(["replay", manifest]) == 0
    with fast_path("1"):
        assert obs_main(["replay", manifest]) == 0
    out = capsys.readouterr().out
    assert out.count("REPLAY OK") == 2
