"""Tests for topology snapshots."""

import pytest

from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.topology import build_topology
from repro.sim import Simulator
from repro.util.geometry import Point


def make_net(positions, seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    for i, pos in enumerate(positions, start=1):
        net.create_node(i, Point(*pos))
    return sim, net


class TestBuildTopology:
    def test_line_is_connected(self):
        sim, net = make_net([(i * 30, 0) for i in range(5)])
        topo = build_topology(net)
        assert topo.is_connected()
        assert topo.node_count == 5

    def test_islands_disconnect(self):
        sim, net = make_net([(0, 0), (30, 0), (5000, 0), (5030, 0)])
        topo = build_topology(net)
        assert not topo.is_connected()
        comps = topo.components()
        assert sorted(len(c) for c in comps) == [2, 2]
        assert topo.giant_component_fraction() == pytest.approx(0.5)

    def test_down_nodes_excluded(self):
        # 100 m spacing: endpoints are out of direct range, so losing the
        # middle node disconnects the line.
        sim, net = make_net([(0, 0), (100, 0), (200, 0)])
        net.fail_node(2)
        topo = build_topology(net)
        assert topo.node_count == 2
        assert not topo.is_connected()

    def test_edges_have_p_and_etx(self):
        sim, net = make_net([(0, 0), (25, 0)])
        topo = build_topology(net)
        data = topo.graph.edges[1, 2]
        assert 0 < data["p"] <= 1
        assert data["etx"] == pytest.approx(1.0 / data["p"])

    def test_min_probability_filters_weak_links(self):
        sim, net = make_net([(0, 0), (30, 0)])
        strict = build_topology(net, min_delivery_probability=0.999999)
        assert strict.edge_count == 0

    def test_shortest_path_prefers_quality(self):
        sim, net = make_net([(0, 0), (30, 0), (60, 0)])
        topo = build_topology(net)
        path = topo.shortest_path(1, 3)
        assert path is not None
        assert path[0] == 1 and path[-1] == 3
        assert topo.path_etx(path) >= 1.0

    def test_shortest_path_none_when_disconnected(self):
        sim, net = make_net([(0, 0), (5000, 0)])
        topo = build_topology(net)
        assert topo.shortest_path(1, 2) is None

    def test_empty_network(self):
        sim = Simulator()
        net = Network(sim, Channel(seed=0))
        topo = build_topology(net)
        assert topo.node_count == 0
        assert not topo.is_connected()
        assert topo.giant_component_fraction() == 0.0

    def test_degree_stats(self):
        sim, net = make_net([(0, 0), (30, 0), (60, 0)])
        stats = build_topology(net).degree_stats()
        assert stats["max"] >= stats["mean"] >= stats["min"]
