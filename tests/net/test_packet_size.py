"""Bits-vs-bytes audit: ``Packet.size_bits`` is the single size authority.

The channel charges airtime, the energy hook charges bits, and the MAC's
backoff rides on top — all three must read the same quantity.  These tests
pin the contract: airtime x bitrate recovers exactly the bits the energy
hook was charged, and the byte view is derived (never stored separately).
"""

import pytest

from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.util.geometry import Point


class TestSizeProperties:
    def test_size_bytes_derived_from_bits(self):
        pkt = Packet(src=1, dst=2, size_bits=1024)
        assert pkt.size_bytes == 128.0
        pkt.size_bits = 12
        assert pkt.size_bytes == 1.5  # fractional bytes: bits stay canonical

    def test_airtime_scales_with_bits_and_bitrate(self):
        pkt = Packet(src=1, dst=2, size_bits=2048)
        assert pkt.airtime_s(1.0e6) == pytest.approx(2048e-6)
        assert pkt.airtime_s(2.0e6) == pytest.approx(1024e-6)
        double = Packet(src=1, dst=2, size_bits=4096)
        assert double.airtime_s(1.0e6) == pytest.approx(2 * pkt.airtime_s(1.0e6))

    def test_airtime_guards_zero_bitrate(self):
        pkt = Packet(src=1, dst=2, size_bits=100)
        assert pkt.airtime_s(0.0) == 100.0  # clamped to 1 bps, never div/0

    def test_forwarding_copy_preserves_size(self):
        pkt = Packet(src=1, dst=2, size_bits=777)
        assert pkt.copy_for_forwarding().size_bits == 777


class TestAirtimeEnergyAgreement:
    """One transmission: energy bits, airtime, and trace must agree."""

    def _run(self, size_bits, bitrate_bps=1.0e6):
        sim = Simulator(seed=9)
        net = Network(
            sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=9)
        )
        sender = net.create_node(1, Point(0, 0), bitrate_bps=bitrate_bps)
        net.create_node(2, Point(30, 0), bitrate_bps=bitrate_bps)
        charges = {}
        sender.energy_hook = lambda tx, rx: charges.__setitem__("tx", tx)
        pkt = Packet(src=1, dst=2, size_bits=size_bits)
        done = {}

        def on_result(ok):
            done["ok"] = ok
            done["at"] = sim.now

        sim.call_at(1.0, lambda: net.send(1, 2, pkt, on_result=on_result))
        sim.run(until=10.0)
        return charges["tx"], done["at"] - 1.0, pkt, sender

    @pytest.mark.parametrize("size_bits", [128, 1024, 65536])
    def test_energy_bits_equal_airtime_times_bitrate(self, size_bits):
        charged_bits, elapsed_s, pkt, node = self._run(size_bits)
        # The energy hook is charged exactly the packet's bits...
        assert charged_bits == size_bits
        # ...and the completion delay contains exactly that airtime
        # (elapsed = backoff + airtime + propagation; subtract airtime and
        # what remains must be non-negative and smaller than one airtime).
        airtime = pkt.airtime_s(node.bitrate_bps)
        assert charged_bits == pytest.approx(airtime * node.bitrate_bps)
        assert elapsed_s >= airtime

    def test_halving_bitrate_doubles_airtime_not_energy_bits(self):
        fast_bits, fast_elapsed, pkt_f, node_f = self._run(4096, bitrate_bps=2.0e6)
        slow_bits, slow_elapsed, pkt_s, node_s = self._run(4096, bitrate_bps=1.0e6)
        assert fast_bits == slow_bits == 4096  # energy charge is bits, not time
        assert pkt_s.airtime_s(node_s.bitrate_bps) == pytest.approx(
            2 * pkt_f.airtime_s(node_f.bitrate_bps)
        )
