"""Unit tests for the layered stack and the component registry."""

import pytest

from repro.errors import ConfigurationError
from repro.net import registry
from repro.net.channel import Channel
from repro.net.mac import ContentionMac, IdealMac
from repro.net.node import NetNode, Network
from repro.net.packet import Packet
from repro.net.registry import ComponentRegistry, StackSpec, compose
from repro.net.routing import (
    AodvRouter,
    EpidemicRouter,
    FloodingRouter,
    GossipRouter,
    GreedyGeoRouter,
    SprayAndWaitRouter,
)
from repro.net.stack import Layer, LayerBase, NetworkStack, RouterPort, TransportPort
from repro.net.transport import MessageService, ReliableMessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def _line_network(sim, n=4, spacing=60.0):
    net = Network(sim, Channel(seed=sim.rng.seed))
    for i in range(n):
        net.create_node(i + 1, Point(i * spacing, 0.0))
    return net


class TestLayerProtocol:
    def test_layerbase_satisfies_protocol(self):
        assert isinstance(LayerBase(), Layer)

    def test_mac_backends_satisfy_protocol(self):
        assert isinstance(ContentionMac(), Layer)
        assert isinstance(IdealMac(), Layer)

    def test_routers_satisfy_router_port(self):
        sim = Simulator(seed=1)
        net = _line_network(sim)
        for cls in (
            FloodingRouter,
            GossipRouter,
            GreedyGeoRouter,
            AodvRouter,
            EpidemicRouter,
            SprayAndWaitRouter,
        ):
            router = cls(net)
            assert isinstance(router, RouterPort), cls.__name__

    def test_transports_satisfy_transport_port(self):
        sim = Simulator(seed=1)
        net = _line_network(sim)
        router = FloodingRouter(net)
        router.attach_all(sorted(net.nodes))
        assert isinstance(MessageService(router), TransportPort)
        assert isinstance(ReliableMessageService(router), TransportPort)

    def test_router_slot_is_typed(self):
        node = NetNode(1, Point(0, 0))
        assert node.router is None  # RouterPort slot starts empty


class TestNetworkStack:
    def test_network_builds_stack(self):
        sim = Simulator(seed=2)
        net = _line_network(sim)
        stack = net.stack
        assert isinstance(stack, NetworkStack)
        # Mandatory pipeline, bottom-up: phy -> mac -> queue -> app.
        assert [layer.name for layer in stack.layers] == [
            "phy",
            "mac",
            "queue",
            "app",
        ]

    def test_slots_extend_pipeline(self):
        sim = Simulator(seed=2)
        net = _line_network(sim)
        router = FloodingRouter(net)
        router.attach_all(sorted(net.nodes))
        net.stack.set_router(router)
        svc = MessageService(router)
        net.stack.set_transport(svc)
        assert [layer.name for layer in net.stack.layers] == [
            "phy",
            "mac",
            "queue",
            "routing",
            "transport",
            "app",
        ]

    def test_every_layer_attached_once(self):
        sim = Simulator(seed=2)
        net = _line_network(sim)
        for layer in net.stack.layers:
            assert layer.ctx is net.stack.ctx

    def test_fault_state_lives_in_fault_layer(self):
        sim = Simulator(seed=2)
        net = _line_network(sim)
        net.block_link(1, 2)
        assert net.stack.faults.link_blocked(1, 2)
        assert net.link_blocked(2, 1)  # unordered, via delegation
        net.unblock_link(1, 2)
        assert not net.link_blocked(1, 2)

    def test_timer_propagates_to_router(self):
        sim = Simulator(seed=2)
        net = _line_network(sim)
        ticks = []

        class TickRouter(FloodingRouter):
            def on_timer(self, now):
                ticks.append(now)

        router = TickRouter(net)
        router.attach_all(sorted(net.nodes))
        net.stack.set_router(router)
        net.stack.on_timer(3.5)
        assert ticks == [3.5]

    def test_unicast_delivers_between_neighbors(self):
        sim = Simulator(seed=3)
        net = _line_network(sim)
        router = FloodingRouter(net)
        router.attach_all(sorted(net.nodes))
        svc = MessageService(router)
        receipt = svc.send(1, 2, payload="x")
        sim.run(until=10.0)
        assert receipt.delivered


class TestRegistry:
    def test_default_components_registered(self):
        assert registry.names("router") == [
            "aodv",
            "epidemic",
            "flooding",
            "geo",
            "gossip",
            "spray_wait",
        ]
        assert registry.names("mac") == ["csma", "ideal"]
        assert registry.names("channel") == ["log_distance"]
        assert registry.names("transport") == ["basic", "reliable"]
        assert registry.names("mobility") == [
            "group",
            "manhattan",
            "random_waypoint",
            "static",
        ]

    def test_create_router_by_name(self):
        sim = Simulator(seed=4)
        net = _line_network(sim)
        router = registry.create("router", "gossip", net, forward_probability=0.6)
        assert isinstance(router, GossipRouter)
        assert router.forward_probability == 0.6

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="flooding"):
            registry.create("router", "warp_drive")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            registry.create("antigravity", "x")

    def test_names_are_snake_case(self):
        reg = ComponentRegistry()
        with pytest.raises(ConfigurationError):
            reg.register("mac", "Fancy-MAC", IdealMac)

    def test_duplicate_name_rejected(self):
        reg = ComponentRegistry()
        reg.register("mac", "m", IdealMac)
        reg.register("mac", "m", IdealMac)  # same factory: idempotent
        with pytest.raises(ConfigurationError):
            reg.register("mac", "m", ContentionMac)


class TestStackSpec:
    def test_round_trips_through_config(self):
        spec = StackSpec(
            router="aodv",
            mac="ideal",
            transport="reliable",
            router_params={"max_discovery_retries": 2},
        )
        assert StackSpec.from_config(spec.as_config()) == spec

    def test_params_must_be_dicts(self):
        with pytest.raises(ConfigurationError):
            StackSpec(router="aodv", router_params=[1, 2])

    def test_compose_standalone(self):
        sim = Simulator(seed=5)
        spec = StackSpec(
            router="flooding", mac="ideal", channel="log_distance", transport="basic"
        )
        composed = compose(sim, spec)
        net = composed.network
        for i in range(3):
            net.create_node(i + 1, Point(i * 50.0, 0.0))
        composed.router.attach_all(sorted(net.nodes))
        assert isinstance(net.mac, IdealMac)
        assert composed.router.name == "flooding"
        assert net.stack.routing is not None
        assert net.stack.transport is not None

    def test_compose_attaches_before_transport(self):
        # Transports install handlers on already-attached nodes at
        # construction; compose(attach=...) must order that correctly.
        sim = Simulator(seed=6)
        net = _line_network(sim)
        spec = StackSpec(router="flooding", transport="basic")
        composed = compose(sim, spec, network=net, attach=sorted(net.nodes))
        receipt = composed.transport.send(1, 2, payload="y")
        sim.run(until=10.0)
        assert receipt.delivered

    def test_attach_all_after_compose_delivers(self):
        # The README flow: compose first, create nodes after, then attach
        # through the composition — which must install transport handlers
        # (attaching on the router alone would leave the transport deaf).
        sim = Simulator(seed=7)
        spec = StackSpec(
            router="flooding", mac="csma", channel="log_distance", transport="basic"
        )
        composed = compose(sim, spec)
        net = composed.network
        for i in range(4):
            net.create_node(i + 1, Point(i * 50.0, 0.0))
        composed.attach_all(sorted(net.nodes))
        receipt = composed.transport.send(1, 4, payload="hi")
        sim.run(until=20.0)
        assert receipt.delivered

    def test_swapping_mac_changes_behavior_not_topology(self):
        def run(mac_name):
            sim = Simulator(seed=7)
            sim.enable_packet_tracing()
            net = _line_network(sim)
            spec = StackSpec(router="flooding", transport="basic")
            composed = compose(sim, spec, network=net, attach=sorted(net.nodes))
            # Replace the MAC grant backend via the layer slot.
            net.stack.mac.mac = registry.create("mac", mac_name)
            composed.transport.send(1, 4, payload="z")
            sim.run(until=15.0)
            return sim.trace.fingerprint()

        assert run("csma") != run("ideal")  # ideal consumes no backoff draws


class TestPacketAirtime:
    def test_transmission_delay_uses_packet_airtime(self):
        sim = Simulator(seed=8)
        net = _line_network(sim)
        node = net.node(1)
        pkt = Packet(src=1, dst=2, size_bits=4096)
        assert net.transmission_delay_s(node, pkt) == pkt.airtime_s(node.bitrate_bps)
