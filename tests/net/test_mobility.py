"""Tests for mobility models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.channel import Channel
from repro.net.mobility import (
    GroupMobility,
    ManhattanGrid,
    MobilityManager,
    RandomWaypoint,
    StaticMobility,
)
from repro.net.node import Network
from repro.sim import Simulator
from repro.util.geometry import Point, Region

REGION = Region(0, 0, 1000, 1000)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestStatic:
    def test_never_moves(self, rng):
        m = StaticMobility(Point(5, 5))
        for _ in range(10):
            assert m.step(10.0, rng) == Point(5, 5)


class TestRandomWaypoint:
    def test_stays_in_region(self, rng):
        m = RandomWaypoint(Point(500, 500), REGION)
        for _ in range(200):
            assert REGION.contains(m.step(5.0, rng))

    def test_moves_over_time(self, rng):
        m = RandomWaypoint(Point(500, 500), REGION, pause_range=(0.0, 0.0))
        start = m.position
        m.step(60.0, rng)
        assert m.position.distance_to(start) > 0

    def test_speed_bounded(self, rng):
        m = RandomWaypoint(
            Point(500, 500), REGION, speed_range=(1.0, 2.0), pause_range=(0.0, 0.0)
        )
        prev = m.position
        for _ in range(100):
            new = m.step(1.0, rng)
            assert prev.distance_to(new) <= 2.0 + 1e-6
            prev = new

    def test_bad_speed_range(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(Point(0, 0), REGION, speed_range=(0.0, 1.0))


class TestManhattan:
    def test_stays_in_region(self, rng):
        m = ManhattanGrid(Point(500, 500), REGION, block_size=100.0)
        for _ in range(300):
            assert REGION.contains(m.step(3.0, rng))

    def test_stays_on_streets(self, rng):
        m = ManhattanGrid(Point(512, 487), REGION, block_size=100.0)
        for _ in range(200):
            p = m.step(2.0, rng)
            on_x = abs(p.x % 100.0) < 1e-6 or abs(p.x % 100.0 - 100.0) < 1e-6
            on_y = abs(p.y % 100.0) < 1e-6 or abs(p.y % 100.0 - 100.0) < 1e-6
            assert on_x or on_y

    def test_snap_puts_point_on_street(self):
        m = ManhattanGrid(Point(555, 543), REGION, block_size=100.0)
        p = m.position
        assert (
            abs(p.x % 100.0) < 1e-6
            or abs(p.y % 100.0) < 1e-6
            or abs(p.x % 100.0 - 100.0) < 1e-6
            or abs(p.y % 100.0 - 100.0) < 1e-6
        )

    def test_bad_block_size(self):
        with pytest.raises(ConfigurationError):
            ManhattanGrid(Point(0, 0), REGION, block_size=0.0)


class TestGroup:
    def test_members_follow_leader(self, rng):
        leader = RandomWaypoint(Point(500, 500), REGION, pause_range=(0, 0))
        member = GroupMobility(leader, offset=Point(10, 0), jitter_m=1.0)
        for _ in range(50):
            leader.step(5.0, rng)
            member.step(5.0, rng)
            dist = member.position.distance_to(leader.position)
            assert dist < 10 + 2 * 1.5  # offset + jitter slack

    def test_region_clamp(self, rng):
        leader = StaticMobility(Point(0, 0))
        member = GroupMobility(
            leader, offset=Point(-50, -50), jitter_m=0.0, region=REGION
        )
        member.step(1.0, rng)
        assert REGION.contains(member.position)


class TestSeededDeterminism:
    """Same seed -> identical trail; different seed -> different trail.

    Runs at the model level (no simulator), so regressions in a model's
    RNG draw pattern are caught even when manager scheduling masks them.
    """

    def _trail(self, make_model, seed, steps=60, dt=2.0):
        rng = np.random.default_rng(seed)
        model = make_model()
        out = []
        for _ in range(steps):
            p = model.step(dt, rng)
            out.append((p.x, p.y))
        return out

    def _assert_reproducible(self, make_model):
        assert self._trail(make_model, 11) == self._trail(make_model, 11)
        assert self._trail(make_model, 11) != self._trail(make_model, 12)

    def test_random_waypoint(self):
        self._assert_reproducible(
            lambda: RandomWaypoint(Point(500, 500), REGION, pause_range=(0, 0))
        )

    def test_manhattan(self):
        self._assert_reproducible(
            lambda: ManhattanGrid(Point(500, 500), REGION, block_size=100.0)
        )

    def test_group(self):
        def make():
            leader = RandomWaypoint(Point(500, 500), REGION, pause_range=(0, 0))
            return GroupMobility(leader, offset=Point(15, 0), jitter_m=2.0)

        # A follower's trail folds in the leader's draws plus its own
        # jitter, so seeding must pin the entire platoon's motion.
        def trail(seed):
            rng = np.random.default_rng(seed)
            member = make()
            out = []
            for _ in range(60):
                member.leader.step(2.0, rng)
                p = member.step(2.0, rng)
                out.append((p.x, p.y))
            return out

        assert trail(11) == trail(11)
        assert trail(11) != trail(12)

    def test_group_respects_region_bounds(self):
        rng = np.random.default_rng(13)
        leader = RandomWaypoint(Point(20, 20), REGION, pause_range=(0, 0))
        member = GroupMobility(
            leader, offset=Point(-80, -80), jitter_m=5.0, region=REGION
        )
        for _ in range(200):
            leader.step(3.0, rng)
            assert REGION.contains(member.step(3.0, rng))


class TestManager:
    def _build(self, seed=3):
        sim = Simulator(seed=seed)
        net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
        net.create_node(1, Point(100, 100))
        net.create_node(2, Point(200, 200))
        mgr = MobilityManager(sim, net, update_period_s=1.0)
        return sim, net, mgr

    def test_attach_requires_known_node(self):
        sim, net, mgr = self._build()
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            mgr.attach(99, StaticMobility(Point(0, 0)))

    def test_positions_update_over_time(self):
        sim, net, mgr = self._build()
        mgr.attach(1, RandomWaypoint(Point(100, 100), REGION, pause_range=(0, 0)))
        mgr.attach(2, StaticMobility(Point(200, 200)))
        mgr.start()
        sim.run(until=30.0)
        assert net.node(1).position != Point(100, 100)
        assert net.node(2).position == Point(200, 200)

    def test_down_nodes_not_moved(self):
        sim, net, mgr = self._build()
        mgr.attach(1, RandomWaypoint(Point(100, 100), REGION, pause_range=(0, 0)))
        mgr.start()
        net.fail_node(1)
        sim.run(until=10.0)
        assert net.node(1).position == Point(100, 100)

    def test_deterministic(self):
        def trail(seed):
            sim, net, mgr = self._build(seed)
            mgr.attach(1, RandomWaypoint(Point(100, 100), REGION))
            mgr.start()
            out = []
            sim.every(5.0, lambda: out.append((net.node(1).position.x, net.node(1).position.y)))
            sim.run(until=50.0)
            return out

        assert trail(4) == trail(4)
        assert trail(4) != trail(5)

    def test_start_idempotent(self):
        sim, net, mgr = self._build()
        mgr.attach(1, StaticMobility(Point(100, 100)))
        mgr.start()
        mgr.start()
        sim.run(until=5.0)  # would double-step if started twice
