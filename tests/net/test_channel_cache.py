"""Channel memo caches: correctness and jammer invalidation.

PR 10 memoized ``path_loss_db``, ``shadowing_db`` and ``comm_range_m`` and
gave the stack a pair-probability cache keyed on ``jam_signature()``.
Caching propagation math is only safe if every way jamming state can
change — roster edits through the channel API *and* in-place attribute
flips by attack scenarios — invalidates the dependent values.  These are
the regression tests for that contract.
"""

from __future__ import annotations

from repro.net.channel import Channel, Jammer
from repro.net.node import Network
from repro.net.stack import FastPathDispatcher
from repro.sim import Simulator
from repro.util.geometry import Point


def test_path_loss_memo_returns_identical_values():
    channel = Channel(seed=3)
    first = [channel.path_loss_db(d) for d in (1.0, 25.0, 25.0, 400.0)]
    again = [channel.path_loss_db(d) for d in (1.0, 25.0, 25.0, 400.0)]
    assert first == again
    fresh = Channel(seed=3)
    assert first == [fresh.path_loss_db(d) for d in (1.0, 25.0, 25.0, 400.0)]


def test_path_loss_cache_bounded():
    channel = Channel(seed=3)
    from repro.net import channel as channel_mod

    for i in range(channel_mod._PL_CACHE_MAX + 10):
        channel.path_loss_db(float(i))
    assert len(channel._pl_cache) <= channel_mod._PL_CACHE_MAX


def test_comm_range_cached_per_power_and_margin():
    channel = Channel(seed=3)
    r0 = channel.comm_range_m(20.0)
    r_margin = channel.comm_range_m(20.0, margin_db=6.0)
    assert r_margin < r0
    assert channel.comm_range_m(20.0) == r0  # cache hit, same value
    assert Channel(seed=3).comm_range_m(20.0) == r0  # matches uncached


def test_jammer_roster_edits_invalidate_caches():
    channel = Channel(seed=3)
    channel.path_loss_db(50.0)
    channel.comm_range_m(20.0)
    channel.shadowing_db(1, 2)
    sig0 = channel.jam_signature()
    channel.add_jammer(Jammer(Point(10.0, 10.0), power_dbm=30.0))
    assert channel.jam_signature() != sig0
    assert not channel._pl_cache and not channel._range_cache
    assert not channel._shadow_cache
    sig1 = channel.jam_signature()
    channel.clear_jammers()
    assert channel.jam_signature() != sig1


def test_in_place_jammer_toggle_changes_signature():
    """security/attacks.py flips ``active`` and retunes ``power_dbm``
    directly on the Jammer object; the signature must see both."""
    channel = Channel(seed=3)
    jammer = channel.add_jammer(Jammer(Point(0.0, 0.0), power_dbm=30.0))
    sig_on = channel.jam_signature()
    jammer.active = False
    sig_off = channel.jam_signature()
    assert sig_off != sig_on
    jammer.active = True
    assert channel.jam_signature() == sig_on
    jammer.power_dbm = 40.0
    assert channel.jam_signature() not in (sig_on, sig_off)


def test_pair_cache_recomputes_after_jammer_flip():
    """End to end: the stack's delivery-probability cache must drop stale
    pre-jamming values the moment a jammer activates in place."""
    sim = Simulator(seed=9)
    channel = Channel(seed=9)
    net = Network(sim, channel)
    a = net.create_node(1, Point(0.0, 0.0))
    b = net.create_node(2, Point(80.0, 0.0))
    dispatcher = net.stack.dispatcher
    assert isinstance(dispatcher, FastPathDispatcher)
    phy = dispatcher.phy

    clean = phy.delivery_probability(a, b)
    assert phy.delivery_probability(a, b) == clean  # served from cache

    jammer = channel.add_jammer(
        Jammer(Point(80.0, 0.0), power_dbm=30.0, active=False)
    )
    jammer.active = True  # in-place flip, bypassing add/clear
    jammed = phy.delivery_probability(a, b)
    assert jammed < clean

    jammer.active = False
    assert phy.delivery_probability(a, b) == clean


def test_pair_cache_recomputes_after_node_moves():
    sim = Simulator(seed=9)
    net = Network(sim, Channel(seed=9))
    a = net.create_node(1, Point(0.0, 0.0))
    b = net.create_node(2, Point(60.0, 0.0))
    phy = net.stack.dispatcher.phy
    near = phy.delivery_probability(a, b)
    net.set_position(2, Point(300.0, 0.0))
    far = phy.delivery_probability(a, b)
    assert far < near
