"""ReliableMessageService: ACKs, retransmission, give-up, dedup, fates."""

import pytest

from repro.errors import ConfigurationError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.packet import PacketKind
from repro.net.routing import FloodingRouter
from repro.net.transport import ReliableMessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def line_network(n, spacing=100.0, seed=1):
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


def reliable(net, **kwargs):
    router = FloodingRouter(net)
    router.attach_all(sorted(net.nodes))
    return ReliableMessageService(router, **kwargs)


class TestHappyPath:
    def test_delivery_is_acked(self):
        sim, net = line_network(3)
        svc = reliable(net)
        fate = svc.send(1, 3, payload="hello")
        sim.run(until=30.0)
        assert fate.state == "delivered"
        assert fate.delivered
        assert fate.attempts == 1
        assert fate.latency_s is not None and fate.latency_s > 0
        assert sim.metrics.counter("transport.reliable.ack_tx") >= 1

    def test_user_handler_called_once_with_payload(self):
        sim, net = line_network(3)
        svc = reliable(net)
        got = []
        svc.on_message(3, lambda p: got.append(p.payload))
        svc.send(1, 3, payload="situation-report")
        sim.run(until=30.0)
        assert got == ["situation-report"]

    def test_broadcast_refused(self):
        sim, net = line_network(2)
        svc = reliable(net)
        with pytest.raises(ConfigurationError):
            svc.send(1, None)


class TestRetransmission:
    def test_recovers_after_destination_downtime(self):
        # Destination is down when the message is sent; a later retry
        # lands after it restores.
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=2.0, max_retries=5)
        net.fail_node(3)
        sim.call_at(10.0, lambda: net.restore_node(3))
        fate = svc.send(1, 3)
        sim.run(until=120.0)
        assert fate.state == "delivered"
        assert fate.attempts > 1
        assert fate.retransmits >= 1
        assert sim.metrics.counter("transport.reliable.retransmit") >= 1

    def test_gives_up_after_bounded_retries(self):
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=1.0, max_retries=2)
        net.fail_node(3)  # never restored
        fate = svc.send(1, 3)
        sim.run(until=120.0)
        assert fate.state == "gave_up"
        assert fate.attempts == 3  # initial + 2 retries
        assert not fate.delivered
        assert sim.trace.count("transport.gave_up") == 1

    def test_backoff_grows_exponentially(self):
        sim, net = line_network(2)
        svc = reliable(net, base_rto_s=1.0, backoff=2.0, jitter_s=0.0, max_retries=3)
        net.fail_node(2)
        fate = svc.send(1, 2)
        sim.run(until=60.0)
        # Give-up fires after 1 + 2 + 4 + 8 = 15 s of backoff.
        assert fate.state == "gave_up"
        assert fate.gave_up_at == pytest.approx(15.0, abs=0.5)


class TestDuplicateSuppression:
    def test_retransmitted_copies_delivered_once(self):
        # Force a retransmission race: the first copy arrives but its ACK
        # is outrun by an aggressive RTO, so the source re-sends.  The
        # receiver must deliver to the application exactly once.
        sim, net = line_network(4)
        svc = reliable(net, base_rto_s=0.001, jitter_s=0.0, max_retries=4)
        got = []
        svc.on_message(4, lambda p: got.append(p.payload))
        fate = svc.send(1, 4, payload="once")
        sim.run(until=120.0)
        assert fate.delivered
        assert fate.attempts > 1
        assert got == ["once"]
        assert sim.metrics.counter("transport.reliable.dup_suppressed") >= 1


class TestFateAccounting:
    def test_fate_counts_partition_population(self):
        sim, net = line_network(4)
        svc = reliable(net, base_rto_s=1.0, max_retries=1)
        net.fail_node(4)
        svc.send(1, 2)
        svc.send(2, 3)
        svc.send(1, 4)  # unreachable: will give up
        sim.run(until=120.0)
        counts = svc.fate_counts()
        assert counts["delivered"] == 2
        assert counts["gave_up"] == 1
        assert counts["in_flight"] == 0
        assert sum(counts.values()) == len(svc.fates)

    def test_stats_nan_conventions(self):
        sim, net = line_network(2)
        svc = reliable(net)
        assert svc.delivery_ratio() != svc.delivery_ratio()  # NaN
        assert svc.retransmit_rate() != svc.retransmit_rate()
        assert svc.transmissions_per_delivery() != svc.transmissions_per_delivery()

    def test_goodput_counts_delivered_bits_once(self):
        sim, net = line_network(3)
        svc = reliable(net)
        svc.send(1, 3, size_bits=1000)
        svc.send(3, 1, size_bits=500)
        sim.run(until=50.0)
        assert svc.goodput_bps(50.0) == pytest.approx((1000 + 500) / 50.0)

    def test_retransmit_rate_bounded(self):
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=1.0, max_retries=2)
        net.fail_node(3)
        svc.send(1, 3)
        svc.send(1, 2)
        sim.run(until=60.0)
        rate = svc.retransmit_rate()
        assert 0.0 < rate < 1.0


class TestAckKind:
    def test_ack_packets_on_the_wire(self):
        sim, net = line_network(3)
        kinds = []
        net.add_sniffer(lambda p, f, t: kinds.append(p.kind))
        svc = reliable(net)
        svc.send(1, 3)
        sim.run(until=30.0)
        assert PacketKind.ACK in kinds
