"""Bit-identity regression guard for the layered-stack refactor.

The hashes below are full trace fingerprints (packet tracing enabled) of
the reference scenarios in ``stack_scenarios.py``, captured from the
pre-refactor inline ``Network.send`` / ``Network.broadcast`` transmit path.
The layered :class:`repro.net.stack.FastPathDispatcher` must reproduce them
bit-for-bit: identical RNG draw order, identical scheduled delays, identical
trace records at identical virtual times.

If one of these fails, the refactored transmit path changed *behavior*, not
just structure.  Do not re-pin the hashes without understanding exactly
which draw or delay moved.
"""

import pytest

from tests.net.stack_scenarios import FINGERPRINT_SCENARIOS

# Captured at the pre-refactor baseline; see module docstring.
GOLDEN = {
    "flooding": "8e3310f67e3e95e2ec338dfcc7b110ce",
    "gossip": "94ea35aeac9dc313106632563b59e082",
    "geo": "73edefe3121a38d64e0e1e5e86c27ab2",
    "aodv_reliable": "05dcccb869e8cb9d1517b5b510a1f855",
    "epidemic_mobile": "990a19776dd352aa76c6cab502646b2e",
    "spray_wait_mobile": "9d7d2133a7f7d0a0e4053b67858571d8",
}


def test_scenario_registry_matches_golden_set():
    assert set(FINGERPRINT_SCENARIOS) == set(GOLDEN)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fingerprint_bit_identical(name):
    assert FINGERPRINT_SCENARIOS[name]() == GOLDEN[name], (
        f"trace fingerprint for {name!r} diverged from the pre-refactor "
        "transmit path: the layered dispatcher changed behavior"
    )
