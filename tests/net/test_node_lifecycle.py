"""Crash-recovery lifecycle: a node that goes down and comes back must be
routable again, and routers must invalidate the state the crash made stale.
"""

import pytest

from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import (
    AodvRouter,
    EpidemicRouter,
    FloodingRouter,
    GossipRouter,
)
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def line_network(n, spacing=30.0, seed=1):
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


class TestNodeStateListeners:
    def test_listener_sees_transitions(self):
        sim, net = line_network(3)
        seen = []
        net.on_node_state(lambda nid, up: seen.append((nid, up)))
        net.fail_node(2)
        net.restore_node(2)
        assert seen == [(2, False), (2, True)]

    def test_fail_and_restore_are_idempotent(self):
        sim, net = line_network(2)
        seen = []
        net.on_node_state(lambda nid, up: seen.append((nid, up)))
        net.fail_node(2)
        net.fail_node(2)  # re-failing a dead node must not double-fire
        net.restore_node(2)
        net.restore_node(2)
        assert seen == [(2, False), (2, True)]
        assert net.sim.trace.count("net.node_down") == 1
        assert net.sim.trace.count("net.node_up") == 1


@pytest.mark.parametrize("router_cls", [FloodingRouter, GossipRouter, AodvRouter])
class TestFailRestoreRoundTrip:
    def test_restored_node_is_routable_again(self, router_cls):
        # 1 -- 2 -- 3: the middle relay dies, the far node is unreachable;
        # after restoration, traffic flows end-to-end again.
        sim, net = line_network(3, spacing=100.0)
        router = router_cls(net)
        router.attach_all(range(1, 4))
        svc = MessageService(router)

        net.fail_node(2)
        during = svc.send(1, 3)
        sim.run(until=30.0)
        assert not during.delivered

        net.restore_node(2)
        after = svc.send(1, 3)
        sim.run(until=90.0)
        assert after.delivered

    def test_restored_destination_receives(self, router_cls):
        sim, net = line_network(3, spacing=100.0)
        router = router_cls(net)
        router.attach_all(range(1, 4))
        svc = MessageService(router)

        net.fail_node(3)
        net.restore_node(3)
        receipt = svc.send(1, 3)
        sim.run(until=60.0)
        assert receipt.delivered


class TestAodvStateInvalidation:
    def test_routes_through_dead_node_are_purged(self):
        sim, net = line_network(4, spacing=100.0)
        router = AodvRouter(net)
        router.attach_all(range(1, 5))
        svc = MessageService(router)
        svc.send(1, 4)
        sim.run(until=30.0)
        # Discovery populated tables with routes through relays 2 and 3.
        assert any(
            entry.next_hop == 2
            for table in router._tables.values()
            for entry in table.values()
        )
        net.fail_node(2)
        for node_id, table in router._tables.items():
            for dst, entry in table.items():
                assert entry.next_hop != 2, (node_id, dst)
                assert dst != 2
        # The dead node's own RAM state is gone too.
        assert 2 not in router._tables
        assert 2 not in router._seen_rreq

    def test_rerouted_after_crash_and_restore(self):
        sim, net = line_network(5, spacing=100.0)
        router = AodvRouter(net)
        router.attach_all(range(1, 6))
        svc = MessageService(router)
        svc.send(1, 5)
        sim.run(until=30.0)
        net.fail_node(3)
        # Restore while route rediscovery is still retrying: the retry that
        # fires after the relay is back must find the path again.
        sim.call_at(33.0, lambda: net.restore_node(3))
        receipt = svc.send(1, 5)
        sim.run(until=120.0)
        assert receipt.delivered


class TestVolatileCacheLoss:
    def test_flooding_seen_cache_cleared_on_crash(self):
        sim, net = line_network(3)
        router = FloodingRouter(net)
        router.attach_all(range(1, 4))
        svc = MessageService(router)
        svc.send(1, 3)
        sim.run(until=30.0)
        assert router._seen.get(2)
        net.fail_node(2)
        assert 2 not in router._seen

    def test_dtn_store_lost_on_crash(self):
        sim, net = line_network(3, spacing=100.0)
        router = EpidemicRouter(net, contact_period_s=5.0)
        router.attach_all(range(1, 4))
        svc = MessageService(router)
        svc.send(1, 3)
        sim.run(until=12.0)  # a couple of sweeps: node 2 now carries a copy
        assert router._stores.get(2)
        net.fail_node(2)
        assert 2 not in router._stores
        assert sim.metrics.counter("route.epidemic.custody_lost") >= 1
