"""Tests for the wireless channel model."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.net.channel import Channel, Jammer
from repro.util.geometry import Point


def make_channel(**kw):
    defaults = dict(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=1)
    defaults.update(kw)
    return Channel(**defaults)


class TestPathLoss:
    def test_reference_loss_at_reference_distance(self):
        ch = make_channel()
        assert ch.path_loss_db(1.0) == pytest.approx(40.0)

    def test_monotone_in_distance(self):
        ch = make_channel()
        losses = [ch.path_loss_db(d) for d in (1, 10, 100, 1000)]
        assert losses == sorted(losses)

    def test_below_reference_clamped(self):
        ch = make_channel()
        assert ch.path_loss_db(0.001) == ch.path_loss_db(1.0)

    def test_exponent_scaling(self):
        ch2 = make_channel(path_loss_exponent=2.0)
        ch4 = make_channel(path_loss_exponent=4.0)
        # Per decade: 20 dB vs 40 dB.
        assert ch2.path_loss_db(10) - ch2.path_loss_db(1) == pytest.approx(20.0)
        assert ch4.path_loss_db(10) - ch4.path_loss_db(1) == pytest.approx(40.0)

    def test_bad_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(path_loss_exponent=0.0)


class TestShadowing:
    def test_symmetric_in_pair(self):
        ch = Channel(shadowing_sigma_db=6.0, seed=3)
        assert ch.shadowing_db(4, 9) == ch.shadowing_db(9, 4)

    def test_deterministic_per_seed(self):
        a = Channel(shadowing_sigma_db=6.0, seed=3).shadowing_db(1, 2)
        b = Channel(shadowing_sigma_db=6.0, seed=3).shadowing_db(1, 2)
        assert a == b

    def test_differs_across_links(self):
        ch = Channel(shadowing_sigma_db=6.0, seed=3)
        values = {ch.shadowing_db(1, k) for k in range(2, 12)}
        assert len(values) > 1

    def test_zero_sigma_is_zero(self):
        assert make_channel().shadowing_db(1, 2) == 0.0


class TestDelivery:
    def test_close_link_near_certain(self):
        ch = make_channel()
        p = ch.delivery_probability(20.0, Point(0, 0), Point(5, 0))
        assert p > 0.99

    def test_far_link_near_zero(self):
        ch = make_channel()
        p = ch.delivery_probability(20.0, Point(0, 0), Point(5000, 0))
        assert p < 0.01

    def test_monotone_decreasing_with_distance(self):
        ch = make_channel()
        ps = [
            ch.delivery_probability(20.0, Point(0, 0), Point(d, 0))
            for d in (10, 50, 100, 200, 400)
        ]
        assert ps == sorted(ps, reverse=True)

    @given(st.floats(min_value=1, max_value=5000))
    def test_probability_in_unit_interval(self, d):
        ch = make_channel()
        p = ch.delivery_probability(20.0, Point(0, 0), Point(d, 0))
        assert 0.0 <= p <= 1.0

    def test_comm_range_consistent_with_delivery(self):
        ch = make_channel()
        r = ch.comm_range_m(20.0)
        # At the range boundary, mean SINR equals threshold -> p = 0.5.
        p = ch.delivery_probability(20.0, Point(0, 0), Point(r, 0))
        assert p == pytest.approx(0.5, abs=0.05)

    def test_comm_range_grows_with_power(self):
        ch = make_channel()
        assert ch.comm_range_m(30.0) > ch.comm_range_m(10.0)


class TestJamming:
    def test_jammer_reduces_delivery(self):
        ch = make_channel()
        rx = Point(100, 0)
        p_clear = ch.delivery_probability(20.0, Point(0, 0), rx)
        ch.add_jammer(Jammer(position=Point(110, 0), power_dbm=30.0))
        p_jammed = ch.delivery_probability(20.0, Point(0, 0), rx)
        assert p_jammed < p_clear

    def test_inactive_jammer_no_effect(self):
        ch = make_channel()
        rx = Point(100, 0)
        p_clear = ch.delivery_probability(20.0, Point(0, 0), rx)
        ch.add_jammer(Jammer(position=Point(110, 0), power_dbm=30.0, active=False))
        assert ch.delivery_probability(20.0, Point(0, 0), rx) == pytest.approx(
            p_clear
        )

    def test_jammer_effect_decays_with_distance(self):
        ch = make_channel()
        rx = Point(100, 0)
        near = Jammer(position=Point(105, 0), power_dbm=30.0)
        assert near.interference_mw(ch, rx) > Jammer(
            position=Point(1000, 0), power_dbm=30.0
        ).interference_mw(ch, rx)

    def test_clear_jammers(self):
        ch = make_channel()
        ch.add_jammer(Jammer(position=Point(0, 0)))
        ch.clear_jammers()
        assert ch.jammers == []
