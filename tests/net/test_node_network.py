"""Tests for NetNode / Network: membership, neighbors, transmit path."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.packet import Packet, PacketKind
from repro.sim import Simulator
from repro.util.geometry import Point


def quiet_channel(seed=1):
    return Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)


def make_net(positions, seed=1, **node_kw):
    sim = Simulator(seed=seed)
    net = Network(sim, quiet_channel(seed))
    for i, pos in enumerate(positions, start=1):
        net.create_node(i, Point(*pos), **node_kw)
    return sim, net


class TestMembership:
    def test_duplicate_id_rejected(self):
        sim, net = make_net([(0, 0)])
        with pytest.raises(NetworkError):
            net.create_node(1, Point(1, 1))

    def test_unknown_node_raises(self):
        sim, net = make_net([(0, 0)])
        with pytest.raises(NetworkError):
            net.node(99)

    def test_fail_and_restore(self):
        sim, net = make_net([(0, 0), (10, 0)])
        net.fail_node(2)
        assert not net.node(2).up
        assert len(net.up_nodes()) == 1
        net.restore_node(2)
        assert net.node(2).up


class TestNeighbors:
    def test_close_nodes_are_neighbors(self):
        sim, net = make_net([(0, 0), (30, 0), (5000, 0)])
        assert net.neighbors(1) == [2]
        assert net.neighbors(3) == []

    def test_neighbors_exclude_down(self):
        sim, net = make_net([(0, 0), (30, 0)])
        net.fail_node(2)
        assert net.neighbors(1) == []
        assert net.neighbors(1, include_down=True) == [2]

    def test_position_update_changes_neighbors(self):
        sim, net = make_net([(0, 0), (5000, 0)])
        assert net.neighbors(1) == []
        net.set_position(2, Point(20, 0))
        assert net.neighbors(1) == [2]

    def test_neighbors_symmetric_for_equal_power(self):
        sim, net = make_net([(0, 0), (40, 0), (80, 0)])
        for a in (1, 2, 3):
            for b in net.neighbors(a):
                assert a in net.neighbors(b)

    def test_grid_handles_many_nodes(self):
        positions = [(x * 25.0, y * 25.0) for x in range(20) for y in range(20)]
        sim, net = make_net(positions)
        n = net.neighbors(1)
        assert len(n) > 0
        assert all(isinstance(i, int) for i in n)


class TestUnicast:
    def test_successful_delivery_invokes_handler(self):
        sim, net = make_net([(0, 0), (20, 0)])
        got = []
        net.node(2).on(PacketKind.DATA, lambda n, p, f: got.append((p.uid, f)))
        pkt = Packet(src=1, dst=2)
        results = []
        net.send(1, 2, pkt, on_result=results.append)
        sim.run(until=5.0)
        assert results == [True]
        assert got and got[0][1] == 1

    def test_down_sender_fails_immediately(self):
        sim, net = make_net([(0, 0), (20, 0)])
        net.fail_node(1)
        results = []
        net.send(1, 2, Packet(src=1, dst=2), on_result=results.append)
        sim.run(until=5.0)
        assert results == [False]

    def test_down_receiver_fails(self):
        sim, net = make_net([(0, 0), (20, 0)])
        net.fail_node(2)
        results = []
        net.send(1, 2, Packet(src=1, dst=2), on_result=results.append)
        sim.run(until=5.0)
        assert results == [False]

    def test_out_of_range_usually_fails(self):
        sim, net = make_net([(0, 0), (10000, 0)])
        results = []
        for _ in range(20):
            net.send(1, 2, Packet(src=1, dst=2), on_result=results.append)
        sim.run(until=60.0)
        assert results.count(False) == 20

    def test_delivery_has_positive_latency(self):
        sim, net = make_net([(0, 0), (20, 0)])
        times = []
        net.node(2).on(PacketKind.DATA, lambda n, p, f: times.append(sim.now))
        net.send(1, 2, Packet(src=1, dst=2))
        sim.run(until=5.0)
        assert times and times[0] > 0.0

    def test_energy_hook_charged(self):
        sim, net = make_net([(0, 0), (20, 0)])
        charges = []
        net.node(1).energy_hook = lambda tx, rx: charges.append((tx, rx))
        net.send(1, 2, Packet(src=1, dst=2, size_bits=512))
        sim.run(until=5.0)
        assert (512, 0.0) in charges

    def test_metrics_counters(self):
        sim, net = make_net([(0, 0), (20, 0)])
        net.send(1, 2, Packet(src=1, dst=2))
        sim.run(until=5.0)
        assert sim.metrics.counter("net.tx_attempts") == 1
        assert sim.metrics.counter("net.tx_success") == 1


class TestBroadcast:
    def test_broadcast_reaches_neighbors(self):
        sim, net = make_net([(0, 0), (20, 0), (0, 20), (5000, 5000)])
        got = []
        for i in (2, 3, 4):
            net.node(i).on(PacketKind.DATA, lambda n, p, f: got.append(n.id))
        count = net.broadcast(1, Packet(src=1, dst=None))
        sim.run(until=5.0)
        assert count == 2
        assert set(got) == {2, 3}

    def test_down_sender_broadcasts_nothing(self):
        sim, net = make_net([(0, 0), (20, 0)])
        net.fail_node(1)
        assert net.broadcast(1, Packet(src=1, dst=None)) == 0

    def test_sniffer_sees_deliveries(self):
        sim, net = make_net([(0, 0), (20, 0)])
        sniffed = []
        net.add_sniffer(lambda p, f, t: sniffed.append((p.uid, f, t)))
        pkt = Packet(src=1, dst=2)
        net.send(1, 2, pkt)
        sim.run(until=5.0)
        assert sniffed == [(pkt.uid, 1, 2)]


class TestPacket:
    def test_forwarding_copy_independent_path(self):
        pkt = Packet(src=1, dst=2, ttl=5)
        pkt.path.append(1)
        fwd = pkt.copy_for_forwarding()
        fwd.path.append(99)
        assert pkt.path == [1]
        assert fwd.ttl == 4
        assert fwd.uid == pkt.uid

    def test_hops(self):
        pkt = Packet(src=1, dst=2)
        assert pkt.hops == 0
        pkt.path.extend([1, 5, 2])
        assert pkt.hops == 2
