"""ReliableMessageService under node churn mid-flight.

The ARQ layer's job in an IoBT network is exactly this: a message is
issued, a node on its path (destination or relay) dies before delivery,
and comes back before the retry budget runs out — the message must still
land, exactly once, with honest fate accounting.
"""

from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import FloodingRouter
from repro.net.transport import ReliableMessageService
from repro.sim import Simulator
from repro.util.geometry import Point


def line_network(n, spacing=100.0, seed=1):
    sim = Simulator(seed=seed)
    channel = Channel(shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=seed)
    net = Network(sim, channel)
    for i in range(1, n + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    return sim, net


def reliable(net, **kwargs):
    router = FloodingRouter(net)
    router.attach_all(sorted(net.nodes))
    return ReliableMessageService(router, **kwargs)


class TestDestinationChurn:
    def test_destination_crashes_after_send_restarts_in_budget(self):
        """Issued before the crash; destination restarts before give-up."""
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=2.0, max_retries=5)
        fate = svc.send(1, 3, payload="orders")
        net.fail_node(3)  # crash lands before any copy can be processed
        sim.call_at(8.0, lambda: net.restore_node(3))
        sim.run(until=120.0)
        assert fate.state == "delivered"
        assert fate.attempts > 1
        assert fate.retransmits >= 1

    def test_delivered_exactly_once_across_restart(self):
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=2.0, max_retries=5)
        got = []
        svc.on_message(3, lambda p: got.append(p.payload))
        svc.send(1, 3, payload="sitrep")
        net.fail_node(3)
        sim.call_at(8.0, lambda: net.restore_node(3))
        sim.run(until=120.0)
        assert got == ["sitrep"]

    def test_destination_flaps_twice_still_delivered(self):
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=1.0, backoff=2.0, max_retries=6)
        fate = svc.send(1, 3)
        net.fail_node(3)
        sim.call_at(2.5, lambda: net.restore_node(3))
        sim.call_at(2.6, lambda: net.fail_node(3))   # back down immediately
        sim.call_at(10.0, lambda: net.restore_node(3))
        sim.run(until=240.0)
        assert fate.state == "delivered"
        assert fate.attempts > 2


class TestRelayChurn:
    def test_relay_crashes_mid_flight_and_restarts(self):
        """1 -> 3 needs relay 2; 2 dies after the send and comes back."""
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=2.0, max_retries=5)
        fate = svc.send(1, 3)
        net.fail_node(2)
        sim.call_at(6.0, lambda: net.restore_node(2))
        sim.run(until=120.0)
        assert fate.state == "delivered"
        assert fate.attempts > 1
        assert sim.metrics.counter("transport.reliable.retransmit") >= 1

    def test_restart_after_budget_is_too_late(self):
        """The bound is honest: a node that returns after the budget is
        exhausted cannot resurrect the message — typed give-up instead."""
        sim, net = line_network(3)
        svc = reliable(net, base_rto_s=1.0, backoff=2.0, jitter_s=0.0, max_retries=2)
        fate = svc.send(1, 3)
        net.fail_node(2)
        # Give-up fires after 1 + 2 + 4 = 7 s; restore at 30 s is too late.
        sim.call_at(30.0, lambda: net.restore_node(2))
        sim.run(until=240.0)
        assert fate.state == "gave_up"
        assert fate.attempts == 3
        assert not fate.delivered


class TestChurnAccounting:
    def test_fate_counts_stay_partitioned_under_churn(self):
        sim, net = line_network(4)
        svc = reliable(net, base_rto_s=1.0, max_retries=3)
        svc.send(1, 2)
        svc.send(1, 3)
        svc.send(1, 4)
        net.fail_node(3)
        sim.call_at(4.0, lambda: net.restore_node(3))
        sim.run(until=120.0)
        counts = svc.fate_counts()
        assert counts["in_flight"] == 0
        assert counts["delivered"] == 3
        assert sum(counts.values()) == len(svc.fates)
