"""Attack injection.

Attacks are schedulable perturbations applied to a scenario.  Each attack
has a ``launch`` (and usually a ``cease``) and emits trace records so that
experiments can align recovery metrics with attack timing.  The attack
families cover the threats the paper enumerates: jamming (denial),
capture/insider (data contamination), Sybil/impersonation (identity), node
destruction (physical loss), and sensor data poisoning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SecurityError
from repro.net.channel import Jammer
from repro.scenarios.builder import Scenario
from repro.things.asset import Affiliation, Asset
from repro.things.capabilities import make_profile
from repro.util.geometry import Point

__all__ = [
    "Attack",
    "AttackSchedule",
    "JammingAttack",
    "NodeCaptureAttack",
    "NodeDestructionAttack",
    "SybilAttack",
    "DataPoisoningAttack",
    "AttritionProcess",
]


class Attack:
    """Base attack: subclasses implement :meth:`launch` / :meth:`cease`."""

    name = "attack"

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.sim = scenario.sim
        self.active = False

    def launch(self) -> None:
        if self.active:
            return
        self.active = True
        self.sim.trace.emit("attack.launch", attack=self.name)
        self._apply()

    def cease(self) -> None:
        if not self.active:
            return
        self.active = False
        self.sim.trace.emit("attack.cease", attack=self.name)
        self._revert()

    def schedule(self, start_s: float, duration_s: Optional[float] = None) -> None:
        """Launch at ``start_s`` and optionally cease after ``duration_s``."""
        self.sim.call_at(start_s, self.launch)
        if duration_s is not None:
            self.sim.call_at(start_s + duration_s, self.cease)

    def _apply(self) -> None:
        raise NotImplementedError

    def _revert(self) -> None:
        """Default: attacks are irreversible unless overridden."""


class JammingAttack(Attack):
    """Activate jammers (denial of the RF environment)."""

    name = "jamming"

    def __init__(self, scenario: Scenario, jammers: Optional[Sequence[Jammer]] = None):
        super().__init__(scenario)
        self.jammers = list(jammers) if jammers is not None else list(scenario.jammers)
        if not self.jammers:
            raise SecurityError("no jammers available to activate")

    def _apply(self) -> None:
        for jammer in self.jammers:
            jammer.active = True
        # Jamming also degrades RF-band sensing for everyone.
        self.scenario.environment.rf_interference = 1.0

    def _revert(self) -> None:
        for jammer in self.jammers:
            jammer.active = False
        self.scenario.environment.rf_interference = 0.0


class NodeCaptureAttack(Attack):
    """Turn blue/gray assets into adversary-controlled insiders.

    Captured assets stay up (they are more valuable to the adversary alive),
    but their human sources become malicious and their sensors can be
    poisoned via :class:`DataPoisoningAttack`.
    """

    name = "capture"

    def __init__(self, scenario: Scenario, asset_ids: Sequence[int]):
        super().__init__(scenario)
        if not asset_ids:
            raise SecurityError("no assets given to capture")
        self.asset_ids = list(asset_ids)

    def _apply(self) -> None:
        for asset_id in self.asset_ids:
            asset = self.scenario.inventory.get(asset_id)
            asset.captured = True
            if asset.human is not None:
                asset.human.malicious = True
            self.sim.trace.emit("attack.capture", asset=asset_id)

    def _revert(self) -> None:
        for asset_id in self.asset_ids:
            asset = self.scenario.inventory.get(asset_id)
            asset.captured = False
            if asset.human is not None:
                asset.human.malicious = False


class NodeDestructionAttack(Attack):
    """Physically destroy assets (kinetic loss / battery sabotage)."""

    name = "destruction"

    def __init__(self, scenario: Scenario, asset_ids: Sequence[int]):
        super().__init__(scenario)
        if not asset_ids:
            raise SecurityError("no assets given to destroy")
        self.asset_ids = list(asset_ids)

    def _apply(self) -> None:
        for asset_id in self.asset_ids:
            asset = self.scenario.inventory.get(asset_id)
            self.scenario.network.fail_node(asset.node_id)
            self.sim.trace.emit("attack.destroy", asset=asset_id)


class SybilAttack(Attack):
    """Inject fake identities that masquerade as benign civilian devices.

    Each Sybil is a real red-controlled radio claiming a gray smartphone
    profile; discovery/characterization must unmask them from behavior
    (duty cycles, traffic fingerprints), not from labels.
    """

    name = "sybil"

    def __init__(
        self,
        scenario: Scenario,
        n_identities: int,
        *,
        claimed_class: str = "smartphone",
    ):
        super().__init__(scenario)
        if n_identities < 1:
            raise SecurityError("need at least one Sybil identity")
        self.n_identities = n_identities
        self.claimed_class = claimed_class
        self.created: List[Asset] = []

    def _apply(self) -> None:
        rng = self.sim.rng.get("sybil")
        for _i in range(self.n_identities):
            position = self.scenario.region.sample(rng)
            asset = self.scenario.inventory.create(
                make_profile(self.claimed_class),
                position,
                Affiliation.RED,
                duty_cycle=0.9,
            )
            self.created.append(asset)
            self.sim.trace.emit("attack.sybil", asset=asset.id)

    def _revert(self) -> None:
        # Drain the roster so a relaunch mints fresh identities instead of
        # duplicating (and re-failing) the ones from the previous wave.
        created, self.created = self.created, []
        for asset in created:
            self.scenario.network.fail_node(asset.node_id)


class DataPoisoningAttack(Attack):
    """Make compromised sensors emit displaced/false detections.

    While active, ``poison(detections, rng)`` filters a detection batch:
    reports from compromised nodes are displaced by ``displacement_m``
    (plausible-looking but wrong), modeling contaminated inputs to fusion.
    """

    name = "poisoning"

    def __init__(
        self,
        scenario: Scenario,
        node_ids: Sequence[int],
        *,
        displacement_m: float = 200.0,
    ):
        super().__init__(scenario)
        if not node_ids:
            raise SecurityError("no nodes given to poison")
        self.node_ids = set(node_ids)
        self.displacement_m = displacement_m

    def _apply(self) -> None:
        self.sim.trace.emit("attack.poison_on", nodes=len(self.node_ids))

    def poison(self, detections, rng: np.random.Generator):
        """Return the detection list with compromised reports displaced."""
        if not self.active:
            return list(detections)
        out = []
        for det in detections:
            if det.sensor_node in self.node_ids:
                angle = float(rng.uniform(0, 2 * np.pi))
                out.append(
                    type(det)(
                        sensor_node=det.sensor_node,
                        modality=det.modality,
                        target_id=det.target_id,
                        time=det.time,
                        measured_position=Point(
                            det.measured_position.x
                            + self.displacement_m * np.cos(angle),
                            det.measured_position.y
                            + self.displacement_m * np.sin(angle),
                        ),
                        confidence=det.confidence,
                    )
                )
            else:
                out.append(det)
        return out


class AttritionProcess(Attack):
    """Continuous random attrition: exponential time-to-loss per asset.

    Models the steady drip of battlefield losses (not a single strike):
    while active, each targeted asset fails independently with the given
    mean time between failures.  This is the "failure or removal of assets
    as a normal operating regime" of §III — the background churn that
    discovery and composition must be robust to.
    """

    name = "attrition"

    def __init__(
        self,
        scenario: Scenario,
        asset_ids: Optional[Sequence[int]] = None,
        *,
        mtbf_s: float = 600.0,
    ):
        super().__init__(scenario)
        if mtbf_s <= 0:
            raise SecurityError("mtbf_s must be positive")
        self.mtbf_s = mtbf_s
        self.asset_ids = (
            list(asset_ids)
            if asset_ids is not None
            else [a.id for a in scenario.inventory.blue()]
        )
        if not self.asset_ids:
            raise SecurityError("no assets to attrit")
        self.losses: List[int] = []
        self._rng = scenario.sim.rng.get("attrition")

    def _apply(self) -> None:
        for asset_id in self.asset_ids:
            delay = float(self._rng.exponential(self.mtbf_s))
            self.sim.call_in(delay, lambda aid=asset_id: self._maybe_fail(aid))

    def _maybe_fail(self, asset_id: int) -> None:
        if not self.active:
            return
        asset = self.scenario.inventory.get(asset_id)
        if asset.alive:
            self.scenario.network.fail_node(asset.node_id)
            self.losses.append(asset_id)
            self.sim.trace.emit("attack.attrition", asset=asset_id)

    def loss_rate(self) -> float:
        return len(self.losses) / len(self.asset_ids)


@dataclass
class AttackSchedule:
    """A named timeline of attacks, applied to one scenario."""

    scenario: Scenario
    entries: List[Attack] = field(default_factory=list)

    def add(
        self, attack: Attack, start_s: float, duration_s: Optional[float] = None
    ) -> Attack:
        attack.schedule(start_s, duration_s)
        self.entries.append(attack)
        return attack

    def active_attacks(self) -> List[str]:
        return [a.name for a in self.entries if a.active]
