"""Trust and reputation.

:class:`BetaReputation` is the standard Josang beta-reputation system:
positive/negative interaction outcomes update a Beta(alpha, beta) posterior
whose mean is the trust score.  :class:`TrustLedger` holds one reputation
per subject and supports exponential aging so stale evidence fades — which
is what lets trust recover (or collapse) as behavior changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import ConfigurationError

__all__ = ["BetaReputation", "TrustLedger"]


@dataclass
class BetaReputation:
    """Beta(alpha, beta) reputation with a (1,1) uniform prior."""

    alpha: float = 1.0
    beta: float = 1.0

    @property
    def trust(self) -> float:
        """Posterior mean probability of good behavior."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def confidence(self) -> float:
        """Evidence mass (0 = prior only, ->1 with observations)."""
        n = self.alpha + self.beta - 2.0
        return n / (n + 10.0)

    def observe(self, positive: bool, weight: float = 1.0) -> None:
        if weight < 0:
            raise ConfigurationError("weight must be non-negative")
        if positive:
            self.alpha += weight
        else:
            self.beta += weight

    def age(self, factor: float) -> None:
        """Decay evidence toward the prior by ``factor`` in (0, 1]."""
        if not (0.0 < factor <= 1.0):
            raise ConfigurationError("aging factor must be in (0, 1]")
        self.alpha = 1.0 + (self.alpha - 1.0) * factor
        self.beta = 1.0 + (self.beta - 1.0) * factor

    def __repr__(self) -> str:
        return f"BetaReputation(trust={self.trust:.3f}, a={self.alpha:.1f}, b={self.beta:.1f})"


class TrustLedger:
    """Per-subject reputations with aging and thresholded queries."""

    def __init__(self, *, aging_factor: float = 0.98):
        if not (0.0 < aging_factor <= 1.0):
            raise ConfigurationError("aging_factor must be in (0, 1]")
        self.aging_factor = aging_factor
        self._reps: Dict[int, BetaReputation] = {}

    def reputation(self, subject: int) -> BetaReputation:
        if subject not in self._reps:
            self._reps[subject] = BetaReputation()
        return self._reps[subject]

    def observe(self, subject: int, positive: bool, weight: float = 1.0) -> None:
        self.reputation(subject).observe(positive, weight)

    def trust(self, subject: int) -> float:
        return self.reputation(subject).trust

    def age_all(self) -> None:
        for rep in self._reps.values():
            rep.age(self.aging_factor)

    def trusted(self, threshold: float = 0.6) -> Iterable[int]:
        return sorted(
            s for s, r in self._reps.items() if r.trust >= threshold
        )

    def suspicious(self, threshold: float = 0.4) -> Iterable[int]:
        return sorted(s for s, r in self._reps.items() if r.trust < threshold)

    def snapshot(self) -> Dict[int, float]:
        return {s: r.trust for s, r in self._reps.items()}

    def __len__(self) -> int:
        return len(self._reps)
