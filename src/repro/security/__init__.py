"""Security: attack injection and trust/reputation.

The paper treats security as a crosscutting concern: contested environments
contain adversary-owned nodes, jamming, data contamination, impersonation.
This package provides the attack injectors used by experiments and the
reputation machinery shared by synthesis and learning.
"""

from repro.security.attacks import (
    Attack,
    AttackSchedule,
    JammingAttack,
    NodeCaptureAttack,
    NodeDestructionAttack,
    SybilAttack,
    DataPoisoningAttack,
    AttritionProcess,
)
from repro.security.trust import BetaReputation, TrustLedger

__all__ = [
    "Attack",
    "AttackSchedule",
    "JammingAttack",
    "NodeCaptureAttack",
    "NodeDestructionAttack",
    "SybilAttack",
    "DataPoisoningAttack",
    "AttritionProcess",
    "BetaReputation",
    "TrustLedger",
]
