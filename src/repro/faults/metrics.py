"""Recovery metrics computed from the trace.

Faults and the network both emit structured trace records
(``fault.launch``/``fault.cease``, ``net.node_down``/``net.node_up``), so
recovery questions — how long did repairs take, how much node-time was
lost, how did delivery fare inside fault windows vs. outside — are answered
from the trace alone, without instrumenting the subsystem under test.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceLog

__all__ = [
    "downtime_intervals",
    "mttr",
    "availability",
    "availability_timeline",
    "fault_windows",
    "windowed_delivery_ratio",
]

Window = Tuple[float, float]


def downtime_intervals(
    trace: TraceLog, *, until: Optional[float] = None
) -> Dict[int, List[Window]]:
    """Per-node ``(down_at, up_at)`` intervals from liveness trace records.

    Nodes still down at the end of the trace get an interval closed at
    ``until`` (default: the time of the last record).
    """
    end = until
    if end is None:
        end = trace.records[-1].time if trace.records else 0.0
    open_at: Dict[int, float] = {}
    intervals: Dict[int, List[Window]] = {}
    for rec in trace.records:
        if rec.category == "net.node_down":
            open_at.setdefault(rec.get("node"), rec.time)
        elif rec.category == "net.node_up":
            node = rec.get("node")
            start = open_at.pop(node, None)
            if start is not None:
                intervals.setdefault(node, []).append((start, rec.time))
    for node, start in open_at.items():
        intervals.setdefault(node, []).append((start, max(end, start)))
    return intervals


def mttr(trace: TraceLog, *, until: Optional[float] = None) -> float:
    """Mean time to repair across completed down/up cycles.

    NaN when no node ever recovered (nothing to average).
    """
    repairs: List[float] = []
    open_at: Dict[int, float] = {}
    for rec in trace.records:
        if until is not None and rec.time > until:
            break
        if rec.category == "net.node_down":
            open_at.setdefault(rec.get("node"), rec.time)
        elif rec.category == "net.node_up":
            start = open_at.pop(rec.get("node"), None)
            if start is not None:
                repairs.append(rec.time - start)
    if not repairs:
        return float("nan")
    return sum(repairs) / len(repairs)


def availability(trace: TraceLog, n_nodes: int, horizon_s: float) -> float:
    """Fraction of total node-time spent up over ``[0, horizon_s]``."""
    if n_nodes <= 0 or horizon_s <= 0:
        return float("nan")
    lost = 0.0
    for windows in downtime_intervals(trace, until=horizon_s).values():
        for start, end in windows:
            lost += max(0.0, min(end, horizon_s) - min(start, horizon_s))
    return 1.0 - lost / (n_nodes * horizon_s)


def availability_timeline(
    trace: TraceLog, n_nodes: int, horizon_s: float, dt_s: float
) -> List[Tuple[float, float]]:
    """``(t, fraction_up)`` sampled every ``dt_s`` over ``[0, horizon_s]``."""
    if n_nodes <= 0 or dt_s <= 0:
        return []
    intervals = downtime_intervals(trace, until=horizon_s)
    timeline: List[Tuple[float, float]] = []
    t = 0.0
    while t <= horizon_s:
        down = sum(
            1
            for windows in intervals.values()
            if any(start <= t < end for start, end in windows)
        )
        timeline.append((t, 1.0 - down / n_nodes))
        t += dt_s
    return timeline


def fault_windows(
    trace: TraceLog, *, until: Optional[float] = None
) -> Dict[str, List[Window]]:
    """Launch/cease windows per fault name (attacks included via attack.*).

    A fault still active at the end of the trace gets a window closed at
    ``until`` (default: the last record's time).
    """
    end = until
    if end is None:
        end = trace.records[-1].time if trace.records else 0.0
    open_at: Dict[str, float] = {}
    windows: Dict[str, List[Window]] = {}
    for rec in trace.records:
        if rec.category in ("fault.launch", "attack.launch"):
            name = rec.get("fault", rec.get("attack"))
            open_at.setdefault(name, rec.time)
        elif rec.category in ("fault.cease", "attack.cease"):
            name = rec.get("fault", rec.get("attack"))
            start = open_at.pop(name, None)
            if start is not None:
                windows.setdefault(name, []).append((start, rec.time))
    for name, start in open_at.items():
        windows.setdefault(name, []).append((start, max(end, start)))
    return windows


def windowed_delivery_ratio(
    receipts: Iterable, windows: Iterable[Window], *, inside: bool = True
) -> float:
    """Delivery ratio restricted to messages sent inside (or outside) windows.

    Accepts any objects exposing ``sent_at`` and ``delivered`` — both
    :class:`~repro.net.transport.DeliveryReceipt` and
    :class:`~repro.net.transport.MessageFate` qualify.  NaN when no message
    falls in the requested regime.
    """
    windows = list(windows)
    total = delivered = 0
    for receipt in receipts:
        in_window = any(start <= receipt.sent_at < end for start, end in windows)
        if in_window != inside:
            continue
        total += 1
        if receipt.delivered:
            delivered += 1
    if total == 0:
        return float("nan")
    return delivered / total
