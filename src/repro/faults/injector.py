"""Fault orchestration: the schedule and the injector facade.

:class:`FaultSchedule` is the timeline container (the analogue of
:class:`~repro.security.attacks.AttackSchedule`): faults registered on it
launch and cease at scheduled virtual times.  :class:`FaultInjector` is the
convenience facade experiments actually use — one object bound to a network
that mints correctly-wired faults, registers them on its schedule, and
answers recovery questions (MTTR, availability) from the trace afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.faults import (
    Fault,
    LinkFlapFault,
    NodeChurnFault,
    PartitionFault,
)
from repro.faults.gremlin import PacketGremlin
from repro.faults.metrics import (
    availability,
    availability_timeline,
    fault_windows,
    mttr,
)
from repro.net.node import Network

__all__ = ["FaultSchedule", "FaultInjector"]


@dataclass
class FaultSchedule:
    """A named timeline of faults, applied to one network."""

    network: Network
    entries: List[Fault] = field(default_factory=list)

    def add(
        self, fault: Fault, start_s: float, duration_s: Optional[float] = None
    ) -> Fault:
        fault.schedule(start_s, duration_s)
        self.entries.append(fault)
        return fault

    def active_faults(self) -> List[str]:
        return [f.name for f in self.entries if f.active]


class FaultInjector:
    """Facade for building a chaos timeline against one network.

    >>> injector = FaultInjector(network)          # doctest: +SKIP
    >>> injector.node_churn(mtbf_s=300, mean_downtime_s=60)
    >>> injector.partition_spatial(start_s=120, duration_s=60)
    >>> injector.gremlin(drop_p=0.05)
    >>> sim.run(until=600)
    >>> injector.mttr()
    """

    def __init__(self, network: Network, schedule: Optional[FaultSchedule] = None):
        self.network = network
        self.sim = network.sim
        self.schedule = schedule if schedule is not None else FaultSchedule(network)

    # ------------------------------------------------------------- fault mint

    def node_churn(
        self,
        node_ids: Optional[Sequence[int]] = None,
        *,
        mtbf_s: float = 300.0,
        mean_downtime_s: float = 60.0,
        start_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> NodeChurnFault:
        fault = NodeChurnFault(
            self.network, node_ids, mtbf_s=mtbf_s, mean_downtime_s=mean_downtime_s
        )
        self.schedule.add(fault, start_s, duration_s)
        return fault

    def link_flaps(
        self,
        links: Optional[Sequence[Tuple[int, int]]] = None,
        *,
        n_links: int = 5,
        mtbf_s: float = 120.0,
        mean_downtime_s: float = 30.0,
        start_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> LinkFlapFault:
        fault = LinkFlapFault(
            self.network,
            links,
            n_links=n_links,
            mtbf_s=mtbf_s,
            mean_downtime_s=mean_downtime_s,
        )
        self.schedule.add(fault, start_s, duration_s)
        return fault

    def partition(
        self,
        groups: Sequence[Sequence[int]],
        *,
        start_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> PartitionFault:
        fault = PartitionFault(self.network, groups)
        self.schedule.add(fault, start_s, duration_s)
        return fault

    def partition_spatial(
        self,
        *,
        axis: str = "x",
        start_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> PartitionFault:
        fault = PartitionFault.split_spatial(self.network, axis=axis)
        self.schedule.add(fault, start_s, duration_s)
        return fault

    def gremlin(
        self,
        *,
        start_s: float = 0.0,
        duration_s: Optional[float] = None,
        **knobs,
    ) -> PacketGremlin:
        fault = PacketGremlin(self.network, **knobs)
        self.schedule.add(fault, start_s, duration_s)
        return fault

    # ------------------------------------------------------- recovery metrics

    def mttr(self) -> float:
        """Mean time to repair over completed down intervals (trace-driven)."""
        return mttr(self.sim.trace)

    def availability(self, horizon_s: Optional[float] = None) -> float:
        """Mean fraction of node-time spent up over the run."""
        return availability(
            self.sim.trace,
            len(self.network.nodes),
            horizon_s if horizon_s is not None else self.sim.now,
        )

    def availability_timeline(
        self, dt_s: float, horizon_s: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        return availability_timeline(
            self.sim.trace,
            len(self.network.nodes),
            horizon_s if horizon_s is not None else self.sim.now,
            dt_s,
        )

    def fault_windows(self) -> Dict[str, List[Tuple[float, float]]]:
        """Launch/cease windows per fault name, from the trace."""
        return fault_windows(self.sim.trace, until=self.sim.now)
