"""Fault injection: churn, link flaps, partitions, packet gremlins.

The paper's §III names failure and removal of assets as IoBT's *normal
operating regime*.  This package makes that regime a first-class, seeded,
schedulable object: :class:`FaultInjector` mints faults against one network,
:class:`FaultSchedule` runs them on a timeline (mirroring
:class:`~repro.security.attacks.AttackSchedule`), and
:mod:`repro.faults.metrics` turns the resulting trace into recovery numbers
(MTTR, availability timelines, delivery ratios inside/outside fault
windows).  Every stochastic choice draws from named ``sim.rng`` streams, so
a chaos run is exactly reproducible from its seed.
"""

from repro.faults.faults import (
    Fault,
    LinkFlapFault,
    NodeChurnFault,
    PartitionFault,
)
from repro.faults.gremlin import GremlinVerdict, PacketGremlin
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.faults.metrics import (
    availability,
    availability_timeline,
    downtime_intervals,
    fault_windows,
    mttr,
    windowed_delivery_ratio,
)

__all__ = [
    "Fault",
    "NodeChurnFault",
    "LinkFlapFault",
    "PartitionFault",
    "PacketGremlin",
    "GremlinVerdict",
    "FaultSchedule",
    "FaultInjector",
    "downtime_intervals",
    "mttr",
    "availability",
    "availability_timeline",
    "fault_windows",
    "windowed_delivery_ratio",
]
