"""Fault primitives: scheduled perturbations of the network substrate.

The paper's §III treats "failure or removal of assets as a normal operating
regime" — churn is the baseline, not the exception.  Faults mirror the
:mod:`repro.security.attacks` design: each has a ``launch``/``cease`` pair,
draws exclusively from named ``sim.rng`` streams (so runs stay reproducible
from the seed), and emits ``fault.*`` trace records aligned with the
``attack.*`` family so recovery metrics (MTTR, availability, windowed
delivery ratios — see :mod:`repro.faults.metrics`) can be computed from the
trace alone.

Fault families:

* :class:`NodeChurnFault` — crash/restart churn with exponential up/down
  times (the crash-recovery lifecycle).
* :class:`LinkFlapFault` — individual radio links flap down and up.
* :class:`PartitionFault` — the network splits into non-communicating groups.
* :class:`~repro.faults.gremlin.PacketGremlin` — packet-level drop /
  duplicate / reorder / delay / corrupt gremlins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.node import Network

__all__ = ["Fault", "NodeChurnFault", "LinkFlapFault", "PartitionFault"]


class Fault:
    """Base fault: subclasses implement :meth:`_apply` / :meth:`_revert`.

    Unlike attacks (which act on a full :class:`~repro.scenarios.builder.Scenario`),
    faults bind directly to a :class:`~repro.net.node.Network`, so they work
    on bare test topologies as well as built scenarios.
    """

    name = "fault"

    def __init__(self, network: Network):
        self.network = network
        self.sim = network.sim
        self.active = False

    def launch(self) -> None:
        if self.active:
            return
        self.active = True
        self.sim.trace.emit("fault.launch", fault=self.name)
        self.sim.registry.counter("faults.injections").inc()
        self.sim.registry.counter(f"faults.{self.name}.injections").inc()
        self._apply()

    def cease(self) -> None:
        if not self.active:
            return
        self.active = False
        self.sim.trace.emit("fault.cease", fault=self.name)
        self.sim.registry.counter("faults.recoveries").inc()
        self.sim.registry.counter(f"faults.{self.name}.recoveries").inc()
        self._revert()

    def schedule(self, start_s: float, duration_s: Optional[float] = None) -> None:
        """Launch at ``start_s`` and optionally cease after ``duration_s``."""
        self.sim.call_at(start_s, self.launch)
        if duration_s is not None:
            self.sim.call_at(start_s + duration_s, self.cease)

    def _apply(self) -> None:
        raise NotImplementedError

    def _revert(self) -> None:
        """Default: faults are irreversible unless overridden."""


class NodeChurnFault(Fault):
    """Crash/restart churn: exponential time-to-crash and down-time.

    While active, each targeted node independently crashes after
    ``Exp(mtbf_s)`` and restarts after ``Exp(mean_downtime_s)``, then the
    cycle repeats — the normal operating regime of a contested battlefield.
    Ceasing the fault restores every node it took down, so availability
    recovers at the window edge and MTTR is measurable from the trace.
    """

    name = "node_churn"

    def __init__(
        self,
        network: Network,
        node_ids: Optional[Sequence[int]] = None,
        *,
        mtbf_s: float = 300.0,
        mean_downtime_s: float = 60.0,
    ):
        super().__init__(network)
        if mtbf_s <= 0 or mean_downtime_s <= 0:
            raise ConfigurationError("mtbf_s and mean_downtime_s must be positive")
        self.mtbf_s = mtbf_s
        self.mean_downtime_s = mean_downtime_s
        self.node_ids = list(node_ids) if node_ids is not None else None
        self.crashes = 0
        self.restarts = 0
        self._downed: Set[int] = set()
        self._rng = self.sim.rng.get("faults.churn")

    def _apply(self) -> None:
        targets = (
            self.node_ids if self.node_ids is not None else sorted(self.network.nodes)
        )
        for node_id in targets:
            self._schedule_crash(node_id)

    def _schedule_crash(self, node_id: int) -> None:
        delay = float(self._rng.exponential(self.mtbf_s))
        self.sim.call_in(delay, lambda: self._crash(node_id))

    def _crash(self, node_id: int) -> None:
        if not self.active or node_id not in self.network.nodes:
            return
        if not self.network.nodes[node_id].up:
            # Already down via an attack or another injector; retry later.
            self._schedule_crash(node_id)
            return
        self.network.fail_node(node_id)
        self._downed.add(node_id)
        self.crashes += 1
        self.sim.trace.emit("fault.crash", node=node_id)
        self.sim.metrics.incr("faults.crashes")
        self.sim.registry.counter("faults.crashes").inc()
        delay = float(self._rng.exponential(self.mean_downtime_s))
        self.sim.call_in(delay, lambda: self._restart(node_id))

    def _restart(self, node_id: int) -> None:
        if node_id not in self._downed:
            return  # restored by _revert (or externally) in the meantime
        self._downed.discard(node_id)
        if node_id not in self.network.nodes:
            return
        self.network.restore_node(node_id)
        self.restarts += 1
        self.sim.trace.emit("fault.restart", node=node_id)
        self.sim.metrics.incr("faults.restarts")
        self.sim.registry.counter("faults.restarts").inc()
        if self.active:
            self._schedule_crash(node_id)

    def _revert(self) -> None:
        for node_id in sorted(self._downed):
            if node_id in self.network.nodes:
                self.network.restore_node(node_id)
                self.restarts += 1
                self.sim.trace.emit("fault.restart", node=node_id)
        self._downed.clear()


class LinkFlapFault(Fault):
    """Individual radio links flap: down for ``Exp(mean_downtime_s)``, up
    for ``Exp(mtbf_s)``, repeatedly, while the fault is active.

    ``links`` may be given explicitly as ``(a, b)`` pairs; otherwise
    ``n_links`` links are sampled (from the ``faults.links`` RNG stream)
    among neighbor pairs of up nodes at launch time.
    """

    name = "link_flap"

    def __init__(
        self,
        network: Network,
        links: Optional[Sequence[Tuple[int, int]]] = None,
        *,
        n_links: int = 5,
        mtbf_s: float = 120.0,
        mean_downtime_s: float = 30.0,
    ):
        super().__init__(network)
        if mtbf_s <= 0 or mean_downtime_s <= 0:
            raise ConfigurationError("mtbf_s and mean_downtime_s must be positive")
        if links is None and n_links < 1:
            raise ConfigurationError("need at least one link to flap")
        self.links = (
            [Network._link_key(a, b) for a, b in links] if links is not None else None
        )
        self.n_links = n_links
        self.mtbf_s = mtbf_s
        self.mean_downtime_s = mean_downtime_s
        self.flaps = 0
        self._cut: Set[Tuple[int, int]] = set()
        self._targets: List[Tuple[int, int]] = []
        self._rng = self.sim.rng.get("faults.links")

    def _candidate_links(self) -> List[Tuple[int, int]]:
        pairs: Set[Tuple[int, int]] = set()
        for node in self.network.up_nodes():
            for neighbor_id in self.network.neighbors(node.id):
                pairs.add(Network._link_key(node.id, neighbor_id))
        return sorted(pairs)

    def _apply(self) -> None:
        if self.links is not None:
            self._targets = list(self.links)
        else:
            candidates = self._candidate_links()
            if not candidates:
                self._targets = []
                return
            count = min(self.n_links, len(candidates))
            picks = self._rng.choice(len(candidates), size=count, replace=False)
            self._targets = [candidates[i] for i in sorted(int(p) for p in picks)]
        for link in self._targets:
            self._schedule_cut(link)

    def _schedule_cut(self, link: Tuple[int, int]) -> None:
        delay = float(self._rng.exponential(self.mtbf_s))
        self.sim.call_in(delay, lambda: self._cut_link(link))

    def _cut_link(self, link: Tuple[int, int]) -> None:
        if not self.active or link in self._cut:
            return
        self._cut.add(link)
        self.flaps += 1
        self.network.block_link(*link)
        self.sim.trace.emit("fault.link_cut", a=link[0], b=link[1])
        self.sim.metrics.incr("faults.link_cuts")
        delay = float(self._rng.exponential(self.mean_downtime_s))
        self.sim.call_in(delay, lambda: self._heal_link(link))

    def _heal_link(self, link: Tuple[int, int]) -> None:
        if link not in self._cut:
            return
        self._cut.discard(link)
        self.network.unblock_link(*link)
        self.sim.trace.emit("fault.link_heal", a=link[0], b=link[1])
        if self.active:
            self._schedule_cut(link)

    def _revert(self) -> None:
        for link in sorted(self._cut):
            self.network.unblock_link(*link)
            self.sim.trace.emit("fault.link_heal", a=link[0], b=link[1])
        self._cut.clear()


class PartitionFault(Fault):
    """Split the network into non-communicating groups.

    Nodes listed in different groups cannot exchange packets while the
    fault is active; unlisted nodes are unconstrained.  Multiple partition
    faults compose (a pair must be allowed by every active partition).
    """

    name = "partition"

    def __init__(self, network: Network, groups: Sequence[Sequence[int]]):
        super().__init__(network)
        if len(groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        self.mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in self.mapping:
                    raise ConfigurationError(
                        f"node {node_id} appears in more than one group"
                    )
                if node_id not in network.nodes:
                    raise ConfigurationError(
                        f"partition lists unknown node {node_id}"
                    )
                self.mapping[node_id] = index
        self.n_groups = len(groups)

    @classmethod
    def split_spatial(
        cls, network: Network, *, axis: str = "x"
    ) -> "PartitionFault":
        """Convenience: split the current population at the median coordinate."""
        nodes = sorted(
            network.nodes.values(),
            key=lambda n: (n.position.x if axis == "x" else n.position.y, n.id),
        )
        half = len(nodes) // 2
        return cls(
            network,
            [[n.id for n in nodes[:half]], [n.id for n in nodes[half:]]],
        )

    def _apply(self) -> None:
        self.network.add_partition(self.mapping)
        self.sim.trace.emit("fault.partition", groups=self.n_groups)
        self.sim.metrics.incr("faults.partitions")

    def _revert(self) -> None:
        self.network.remove_partition(self.mapping)
        self.sim.trace.emit("fault.partition_heal")
