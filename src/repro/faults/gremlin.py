"""Packet-level gremlins: drop, duplicate, reorder, delay, corrupt.

A :class:`PacketGremlin` is a fault that installs itself as a wrapper on the
network's transmit path.  For every hop that the channel model *would* have
delivered, the gremlin renders a verdict — drop the frame, duplicate it,
corrupt it (discarded at the receiver as a checksum failure), or add latency
(``delay`` draws an exponential holding time; ``reorder`` adds uniform
jitter large enough that later frames can overtake).  All draws come from
the named ``faults.gremlin`` RNG stream, so gremlin runs are reproducible
from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.faults import Fault
from repro.net.node import Network
from repro.net.packet import Packet, PacketKind

__all__ = ["GremlinVerdict", "PacketGremlin"]


@dataclass
class GremlinVerdict:
    """What one gremlin decided for one hop of one packet."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra_delay_s: float = 0.0


@dataclass
class _GremlinCounts:
    """Per-mischief tallies, for degradation reporting."""

    judged: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0
    reordered: int = 0


class PacketGremlin(Fault):
    """Probabilistic per-hop packet mischief, scoped by kind and link.

    Parameters are per-hop probabilities in ``[0, 1]``.  ``kinds`` restricts
    mischief to particular :class:`~repro.net.packet.PacketKind` values
    (``None`` targets all traffic); ``links`` restricts it to particular
    node pairs.
    """

    name = "gremlin"

    def __init__(
        self,
        network: Network,
        *,
        drop_p: float = 0.0,
        duplicate_p: float = 0.0,
        corrupt_p: float = 0.0,
        delay_p: float = 0.0,
        delay_mean_s: float = 0.05,
        reorder_p: float = 0.0,
        reorder_jitter_s: float = 0.25,
        kinds: Optional[Sequence[PacketKind]] = None,
        links: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        super().__init__(network)
        for label, p in (
            ("drop_p", drop_p),
            ("duplicate_p", duplicate_p),
            ("corrupt_p", corrupt_p),
            ("delay_p", delay_p),
            ("reorder_p", reorder_p),
        ):
            if not (0.0 <= p <= 1.0):
                raise ConfigurationError(f"{label} must be in [0, 1], got {p}")
        if delay_mean_s < 0 or reorder_jitter_s < 0:
            raise ConfigurationError("delay/jitter magnitudes must be >= 0")
        self.drop_p = drop_p
        self.duplicate_p = duplicate_p
        self.corrupt_p = corrupt_p
        self.delay_p = delay_p
        self.delay_mean_s = delay_mean_s
        self.reorder_p = reorder_p
        self.reorder_jitter_s = reorder_jitter_s
        self.kinds: Optional[Set[PacketKind]] = set(kinds) if kinds else None
        self.links: Optional[Set[Tuple[int, int]]] = (
            {Network._link_key(a, b) for a, b in links} if links else None
        )
        self.counts = _GremlinCounts()
        self._rng = self.sim.rng.get("faults.gremlin")

    def _apply(self) -> None:
        self.network.add_gremlin(self)

    def _revert(self) -> None:
        self.network.remove_gremlin(self)

    # --------------------------------------------------------------- verdicts

    def judge(
        self, sender_id: int, receiver_id: int, packet: Packet
    ) -> Optional[GremlinVerdict]:
        """Verdict for one hop, or ``None`` when out of scope / no mischief."""
        if not self.active:
            return None
        if self.kinds is not None and packet.kind not in self.kinds:
            return None
        if (
            self.links is not None
            and Network._link_key(sender_id, receiver_id) not in self.links
        ):
            return None
        self.counts.judged += 1
        verdict = GremlinVerdict()
        if self.drop_p and self._rng.random() < self.drop_p:
            verdict.drop = True
            self.counts.dropped += 1
            self.sim.metrics.incr("faults.gremlin.dropped")
            return verdict  # dropped frames need no further mischief
        if self.duplicate_p and self._rng.random() < self.duplicate_p:
            verdict.duplicate = True
            self.counts.duplicated += 1
            self.sim.metrics.incr("faults.gremlin.duplicated")
        if self.corrupt_p and self._rng.random() < self.corrupt_p:
            verdict.corrupt = True
            self.counts.corrupted += 1
            self.sim.metrics.incr("faults.gremlin.corrupted")
        if self.delay_p and self._rng.random() < self.delay_p:
            verdict.extra_delay_s += float(self._rng.exponential(self.delay_mean_s))
            self.counts.delayed += 1
            self.sim.metrics.incr("faults.gremlin.delayed")
        if self.reorder_p and self._rng.random() < self.reorder_p:
            verdict.extra_delay_s += float(self._rng.uniform(0.0, self.reorder_jitter_s))
            self.counts.reordered += 1
            self.sim.metrics.incr("faults.gremlin.reordered")
        if not (
            verdict.drop
            or verdict.duplicate
            or verdict.corrupt
            or verdict.extra_delay_s > 0.0
        ):
            return None
        return verdict

    def mischief_summary(self) -> Dict[str, int]:
        c = self.counts
        return {
            "judged": c.judged,
            "dropped": c.dropped,
            "duplicated": c.duplicated,
            "corrupted": c.corrupted,
            "delayed": c.delayed,
            "reordered": c.reordered,
        }
