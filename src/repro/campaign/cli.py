"""Command-line smoke campaign: ``python -m repro.campaign``.

Runs a small built-in sweep — multi-hop unicast delivery over a line
network, routers × network sizes × seed replicates — through the full
campaign stack (spec expansion, process-pool fan-out, result cache,
aggregation) and writes the aggregated table as JSON.  CI runs this as its
smoke-campaign job and uploads the JSON as a build artifact; it is also a
quick local health check that parallel execution works on a given machine.

``python -m repro.campaign replay <cache-entry.json>`` re-runs one cached
task from its stored params/seed and verifies every deterministic result
field (and the RunManifest fingerprint) reproduces exactly.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from pathlib import Path
from typing import Any, Dict

from repro.campaign.cache import ResultCache
from repro.campaign.runner import CampaignInterrupted, CampaignRunner
from repro.campaign.spec import SweepSpec

__all__ = ["smoke_task", "smoke_spec", "replay_main", "main"]

#: Result keys that legitimately vary between bit-identical executions
#: (wall-clock throughput) or that replay compares field-by-field
#: (``run_manifest``); everything else must reproduce exactly.
REPLAY_VOLATILE_KEYS = ("events_per_sec", "run_manifest")

#: RunManifest fields replay asserts on.  ``created_at``, ``env``, and
#: ``exports`` are process-local by design and excluded.
REPLAY_MANIFEST_KEYS = ("fingerprint", "root_seed", "rng_streams", "checkpoints")


def smoke_task(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One smoke run: periodic unicasts across an ``n_nodes`` line network.

    Honors the ``REPRO_OBS_*`` environment (NDJSON sink / profiler — see
    :func:`repro.obs.wire_from_env`); CI's obs-smoke job uses that to
    produce a telemetry export it then feeds to ``repro.obs report``.
    """
    # Imports stay local so ``--help`` costs nothing.
    from repro import Simulator
    from repro.net.channel import Channel
    from repro.net.node import Network
    from repro.net.routing import AodvRouter, FloodingRouter
    from repro.net.transport import MessageService
    from repro.obs import wire_from_env
    from repro.util.geometry import Point

    n_nodes = int(params["n_nodes"])
    spacing = float(params["spacing_m"])
    horizon = float(params["horizon_s"])

    sim = wire_from_env(Simulator(seed=seed))
    net = Network(
        sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed)
    )
    for i in range(1, n_nodes + 1):
        net.create_node(i, Point(i * spacing, 0.0))
    router_cls = {"aodv": AodvRouter, "flooding": FloodingRouter}[params["router"]]
    router = router_cls(net)
    router.attach_all(range(1, n_nodes + 1))
    service = MessageService(router)

    rng = sim.rng.get("workload")

    def tick():
        if sim.now > horizon * 0.8:
            return
        a, b = rng.choice(range(1, n_nodes + 1), size=2, replace=False)
        service.send(int(a), int(b))
        sim.call_in(float(rng.exponential(3.0)), tick)

    sim.call_in(0.5, tick)
    with sim.span("smoke-run", router=params["router"], n_nodes=n_nodes):
        sim.run(until=horizon)
    sim.export_obs()

    from repro.obs.forensics import manifest_for_sim

    return {
        "delivery_ratio": service.delivery_ratio(),
        "tx_attempts": float(sim.metrics.counter("net.tx_attempts")),
        "events_per_sec": sim.events_per_sec,
        "trace_fingerprint": sim.trace.fingerprint(),
        # Full provenance (seed, RNG stream draw counts, trace digest) so
        # cached entries stay auditable and `repro.campaign replay` can
        # re-verify them; aggregation ignores non-numeric result fields.
        "run_manifest": manifest_for_sim(sim).as_dict(),
    }


def smoke_spec(replicates: int = 3) -> SweepSpec:
    return SweepSpec(
        name="smoke-line-delivery",
        grid={"router": ("flooding", "aodv"), "n_nodes": (8, 12)},
        fixed={"spacing_m": 75.0, "horizon_s": 120.0},
        replicates=replicates,
        base_seed=2018,
        # Pair both routers on identical worlds per size/replicate.
        seed_params=("n_nodes",),
    )


def _load_task_fn(spec: str):
    """Resolve a ``module:attr`` task-function reference."""
    import importlib

    module_name, _, attr = spec.partition(":")
    if not attr:
        raise ValueError(f"task fn must look like module:attr, got {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def replay_main(argv=None) -> int:
    """``python -m repro.campaign replay <entry>``: re-run one cached task.

    ``entry`` is a result-cache entry JSON (the ``<key>.json`` file a
    :class:`~repro.campaign.cache.ResultCache` wrote), or a bare cache key
    combined with ``--cache DIR``.  The task function re-executes with the
    cached params and seed, and every deterministic result field — plus
    the RunManifest's fingerprint and RNG draw counts — must reproduce
    exactly.  Exit status: 0 reproduced, 1 diverged, 2 unreadable entry.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign replay",
        description="Re-run one cached campaign task and verify determinism.",
    )
    parser.add_argument("entry", help="cache entry JSON file, or key with --cache")
    parser.add_argument("--cache", default=None, help="cache directory for bare keys")
    parser.add_argument(
        "--fn",
        default="repro.campaign.cli:smoke_task",
        help="task function as module:attr (default: the smoke task)",
    )
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the replay verdict as JSON here")
    args = parser.parse_args(argv)

    path = args.entry
    if not os.path.exists(path) and args.cache:
        path = ResultCache(args.cache).path_for(args.entry)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            entry = json.load(fh)
        params, seed, cached = entry["params"], entry["seed"], entry["result"]
        task_fn = _load_task_fn(args.fn)
    except (OSError, json.JSONDecodeError, KeyError, ValueError, AttributeError,
            ImportError) as exc:
        print(f"error: cannot replay {args.entry!r}: {exc!r}", file=sys.stderr)
        return 2

    fresh = task_fn(params, seed)
    mismatches = []
    for key in sorted(cached):
        if key in REPLAY_VOLATILE_KEYS:
            continue
        if cached[key] != fresh.get(key):
            mismatches.append(
                {"field": key, "cached": cached[key], "replayed": fresh.get(key)}
            )
    cached_manifest = cached.get("run_manifest") or {}
    fresh_manifest = fresh.get("run_manifest") or {}
    if cached_manifest and fresh_manifest:
        for key in REPLAY_MANIFEST_KEYS:
            if cached_manifest.get(key) != fresh_manifest.get(key):
                mismatches.append(
                    {
                        "field": f"run_manifest.{key}",
                        "cached": cached_manifest.get(key),
                        "replayed": fresh_manifest.get(key),
                    }
                )
    verdict = {
        "match": not mismatches,
        "key": entry.get("key"),
        "seed": seed,
        "params": params,
        "mismatches": mismatches,
    }
    print(
        f"task key={entry.get('key')} seed={seed}: "
        + ("REPLAY OK: cached result reproduced" if verdict["match"]
           else f"REPLAY DIVERGED ({len(mismatches)} field(s))")
    )
    for row in mismatches:
        print(f"  {row['field']}: cached={row['cached']!r} "
              f"replayed={row['replayed']!r}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(verdict, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0 if verdict["match"] else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # A leading `replay` dispatches to the forensics subcommand; the main
    # campaign CLI stays a flat option parser (CI invokes it bare).
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run the built-in smoke campaign.",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--replicates", type=int, default=3)
    parser.add_argument(
        "--out", default="campaign-out", help="directory for the aggregated JSON"
    )
    parser.add_argument(
        "--cache", default=None, help="result-cache directory (default: no cache)"
    )
    parser.add_argument("--timeout-s", type=float, default=300.0)
    parser.add_argument(
        "--trace-dir",
        default=None,
        help=(
            "enable causal packet tracing and write each task's telemetry "
            "to its own NDJSON file in this directory (analyze with "
            "`python -m repro.obs trace <dir>`)"
        ),
    )
    parser.add_argument(
        "--openmetrics",
        default=None,
        help=(
            "write the campaign's accounting (task counts, retries, wall-"
            "time histogram) as OpenMetrics text to this path"
        ),
    )
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    if args.trace_dir:
        # Exported via the environment so pool workers inherit it; each
        # task's wire_from_env picks a distinct task-<pid>-<seq>.ndjson.
        os.makedirs(args.trace_dir, exist_ok=True)
        os.environ["REPRO_OBS_NDJSON_DIR"] = args.trace_dir
        os.environ["REPRO_OBS_TRACE"] = "1"
    runner = CampaignRunner(
        smoke_task,
        workers=args.workers,
        cache=ResultCache(args.cache) if args.cache else None,
        timeout_s=args.timeout_s,
    )
    try:
        result = runner.run(smoke_spec(args.replicates))
    except CampaignInterrupted as interrupt:
        # Ctrl-C is a clean stop, not a crash: completed entries were
        # flushed to the cache already, so a rerun resumes where this one
        # stopped.  Summarize what settled and exit zero.
        partial = interrupt.partial
        print(
            f"\ninterrupted: settled={partial.n_tasks} "
            f"cached={partial.n_cached} executed={partial.n_executed} "
            f"failed={partial.n_failed} wall={partial.wall_s:.2f}s "
            f"(completed results flushed"
            + (f" to {args.cache})" if args.cache else "; no cache configured)")
        )
        return 0
    table = result.table(
        "Smoke — line-network delivery by router",
        param_cols=["router", "n_nodes"],
        metrics=["delivery_ratio", "tx_attempts", "events_per_sec"],
        ci=True,
    )
    table.print()
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "smoke-campaign.json"
    table.to_json(str(out_path))
    print(
        f"\ntasks={result.n_tasks} cached={result.n_cached} "
        f"executed={result.n_executed} retried={result.n_retried} "
        f"wall={result.wall_s:.2f}s workers={result.workers}"
    )
    print(f"wrote {out_path}")
    if args.openmetrics:
        from repro.obs.export import render_openmetrics

        om_path = Path(args.openmetrics)
        om_path.parent.mkdir(parents=True, exist_ok=True)
        om_path.write_text(
            render_openmetrics(result.metrics_state()), encoding="utf-8"
        )
        print(f"wrote {om_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
