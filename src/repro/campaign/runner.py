"""Fault-tolerant parallel execution of campaign tasks.

:class:`CampaignRunner` fans a :class:`~repro.campaign.spec.SweepSpec` out
over a :class:`concurrent.futures.ProcessPoolExecutor` (or runs it inline
when ``workers <= 1``) with:

* **per-task timeouts** — an overdue task's worker is terminated, the pool
  rebuilt, and the task retried or failed;
* **bounded retries on worker crash** — a worker that dies (segfault,
  ``os._exit``, OOM-kill) breaks the pool; the runner rebuilds it and
  re-queues the affected tasks up to ``max_retries`` extra attempts;
* **result caching** — with a :class:`~repro.campaign.cache.ResultCache`
  attached, completed tasks are looked up before execution and stored
  after, giving resume-after-interrupt and zero-cost warm re-runs;
* **determinism** — seeds are fixed at spec-expansion time and results are
  keyed by task index, so serial and parallel execution (any worker count,
  any completion order) aggregate to identical tables.

Task functions must be module-level callables of ``(params, seed) ->
dict`` — the contract :mod:`pickle` needs to reach them inside worker
processes — and should return flat JSON-able dicts of metrics.
"""

from __future__ import annotations

import logging
import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.campaign.aggregate import aggregate
from repro.campaign.cache import ResultCache
from repro.campaign.spec import SweepSpec, TaskSpec
from repro.errors import CampaignError, CampaignInterrupted
from repro.util.backoff import BackoffPolicy
from repro.util.tables import ResultTable

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "TaskOutcome",
    "CampaignResult",
    "CampaignRunner",
]

logger = logging.getLogger("repro.campaign")

TaskFn = Callable[[Dict[str, Any], int], Dict[str, Any]]


def _peak_rss_kb() -> float:
    """Peak resident set size of this process in KiB (NaN if unavailable).

    In a pool worker this is the worker's lifetime peak, not the single
    task's — workers are reused — so it bounds the task from above.
    """
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX platforms
        return float("nan")


def _call_task(
    fn: TaskFn, params: Dict[str, Any], seed: int
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Worker-side entry point; module-level so it pickles by reference.

    Returns ``(result, telemetry)``: the task's metric dict plus the
    worker-side accounting (wall time inside the worker — i.e. excluding
    pool queueing — and peak RSS) the campaign report aggregates.
    """
    t0 = time.monotonic()
    result = fn(params, seed)
    if not isinstance(result, dict):
        raise TypeError(
            f"task functions must return a dict of metrics, got {type(result).__name__}"
        )
    telemetry = {
        "wall_s": time.monotonic() - t0,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return result, telemetry


@dataclass
class TaskOutcome:
    """What happened to one task: its result or its failure, plus accounting."""

    task: TaskSpec
    result: Optional[Dict[str, Any]]
    cached: bool
    attempts: int
    elapsed_s: float
    error: Optional[str] = None
    #: Worker-side accounting (wall_s, peak_rss_kb); None for cache hits.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in spec (task-index) order."""

    spec: SweepSpec
    outcomes: List[TaskOutcome]
    wall_s: float
    workers: int

    @property
    def n_tasks(self) -> int:
        return len(self.outcomes)

    @property
    def n_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def n_executed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def n_retried(self) -> int:
        return sum(max(0, o.attempts - 1) for o in self.outcomes)

    def results(self) -> List[Dict[str, Any]]:
        """Per-task result dicts in spec order (failed tasks excluded)."""
        return [o.result for o in self.outcomes if o.ok]

    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def telemetry(self) -> Dict[str, Any]:
        """Per-task run telemetry plus campaign totals, JSON-able.

        Each task entry carries its wall time (runner-side ``wall_s``,
        worker-side ``worker_wall_s`` when it executed), retry count,
        cache-hit flag, and peak RSS — the accounting
        ``repro.obs``-era reports aggregate across a campaign.
        """
        tasks = []
        for o in self.outcomes:
            entry: Dict[str, Any] = {
                "task": o.task.label(),
                "seed": o.task.seed,
                "ok": o.ok,
                "cached": o.cached,
                "attempts": o.attempts,
                "retries": o.retries,
                "wall_s": o.elapsed_s,
            }
            if o.error is not None:
                entry["error"] = o.error
            if o.telemetry:
                entry["worker_wall_s"] = o.telemetry.get("wall_s")
                entry["peak_rss_kb"] = o.telemetry.get("peak_rss_kb")
            tasks.append(entry)
        return {
            "campaign": self.spec.name,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "n_tasks": self.n_tasks,
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "n_retried": self.n_retried,
            "n_failed": self.n_failed,
            "tasks": tasks,
        }

    #: Wall-time histogram bounds for :meth:`metrics_state` (seconds).
    _WALL_BUCKETS = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0)

    def metrics_state(self) -> Dict[str, Dict[str, Any]]:
        """The run as a mergeable registry state (see :mod:`repro.obs`).

        Shapes the campaign's accounting like
        :meth:`~repro.obs.registry.MetricsRegistry.state` so it flows
        through the same pipeline as kernel metrics —
        :func:`~repro.obs.merge.merge_metrics` across campaigns,
        :func:`~repro.obs.export.render_openmetrics` for scrapers.
        """
        walls = sorted(o.elapsed_s for o in self.outcomes if not o.cached)
        buckets = list(self._WALL_BUCKETS)
        counts = [0] * (len(buckets) + 1)
        for w in walls:
            for i, bound in enumerate(buckets):
                if w <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        state: Dict[str, Dict[str, Any]] = {
            "campaign.tasks": {"kind": "counter", "value": float(self.n_tasks)},
            "campaign.cached": {"kind": "counter", "value": float(self.n_cached)},
            "campaign.executed": {
                "kind": "counter", "value": float(self.n_executed)
            },
            "campaign.retried": {"kind": "counter", "value": float(self.n_retried)},
            "campaign.failed": {"kind": "counter", "value": float(self.n_failed)},
            "campaign.wall_s": {"kind": "gauge", "value": float(self.wall_s)},
            "campaign.workers": {"kind": "gauge", "value": float(self.workers)},
        }
        if walls:
            state["campaign.task_wall_s"] = {
                "kind": "histogram",
                "buckets": buckets,
                "counts": counts,
                "count": len(walls),
                "total": float(sum(walls)),
                "min": float(walls[0]),
                "max": float(walls[-1]),
            }
        return state

    def table(
        self,
        title: Optional[str] = None,
        *,
        param_cols: Optional[Sequence[str]] = None,
        metrics: Optional[Sequence[str]] = None,
        ci: bool = False,
    ) -> ResultTable:
        """Aggregate across replicates into a :class:`ResultTable`.

        See :func:`repro.campaign.aggregate.aggregate`.  The run's
        :meth:`telemetry` rides along as ``table.meta["telemetry"]``, so
        every exported aggregate JSON carries per-task wall time, retry,
        and cache-hit accounting.  (Table equality ignores ``meta``, so
        serial/parallel determinism checks are unaffected.)
        """
        table = aggregate(
            self,
            title=title if title is not None else self.spec.name,
            param_cols=param_cols,
            metrics=metrics,
            ci=ci,
        )
        table.meta["telemetry"] = self.telemetry()
        return table


class CampaignRunner:
    """Run campaign tasks serially or across a fault-tolerant process pool.

    Parameters
    ----------
    fn:
        Module-level ``(params, seed) -> dict`` task function.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    workers:
        ``<= 1`` runs inline in this process (the deterministic reference
        path); ``>= 2`` fans out over a process pool.
    timeout_s:
        Per-task wall-clock budget.  Enforced in parallel mode by killing
        the overdue worker; ignored in serial mode (there is no second
        process to do the killing).
    max_retries:
        Extra attempts granted to a task after a crash, timeout, or raised
        exception.  When a worker crash breaks the pool, every task in
        flight at that moment consumes an attempt — the runner cannot tell
        the guilty task from its neighbours.
    backoff:
        Retry pacing (the same :class:`~repro.util.backoff.BackoffPolicy`
        the synthesis service uses): retry ``k`` of a task waits
        ``backoff.delay_for(k, seed=backoff_seed, key=task.key)`` first —
        exponential, capped, jittered, and deterministic per (seed, task,
        attempt) regardless of worker count or completion order.  ``None``
        restores immediate retries.
    on_error:
        ``"raise"`` (default) raises :class:`CampaignError` after the run
        if any task exhausted its budget; ``"skip"`` records the failure in
        the outcome list and carries on.

    Completed results are flushed to the cache as each task settles, so an
    interrupt (Ctrl-C) never loses finished work: :meth:`run` traps
    :class:`KeyboardInterrupt` and raises :class:`CampaignInterrupted`
    carrying the partial :class:`CampaignResult`.
    """

    def __init__(
        self,
        fn: TaskFn,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        max_retries: int = 2,
        backoff: Optional[BackoffPolicy] = BackoffPolicy(
            base_s=0.05, factor=2.0, max_s=2.0, jitter=0.5
        ),
        backoff_seed: int = 0,
        on_error: str = "raise",
        poll_s: float = 0.1,
    ):
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._fn = fn
        self.cache = cache
        self.workers = max(1, int(workers))
        self.timeout_s = timeout_s
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        self.backoff_seed = backoff_seed
        self.on_error = on_error
        self._poll_s = poll_s

    # -- public API --------------------------------------------------------

    def run(self, spec: SweepSpec) -> CampaignResult:
        """Execute every task of ``spec`` and return the ordered outcomes."""
        t_start = time.monotonic()
        tasks = spec.tasks()
        outcomes: Dict[int, TaskOutcome] = {}

        todo: List[TaskSpec] = []
        for task in tasks:
            hit = self.cache.get(task) if self.cache is not None else None
            if hit is not None:
                outcomes[task.index] = TaskOutcome(task, hit, True, 0, 0.0)
                self._log(task, "cached", 0, 0.0)
            else:
                todo.append(task)

        logger.info(
            "campaign=%s start tasks=%d cached=%d todo=%d workers=%d",
            spec.name, len(tasks), len(outcomes), len(todo), self.workers,
        )

        interrupted = False
        if todo:
            try:
                if self.workers <= 1:
                    self._run_serial(todo, outcomes)
                else:
                    self._run_parallel(todo, outcomes)
            except KeyboardInterrupt:
                # Completed results were flushed to the cache as they
                # settled; report the partial run instead of losing it.
                interrupted = True

        result = CampaignResult(
            spec=spec,
            outcomes=[outcomes[t.index] for t in tasks if t.index in outcomes],
            wall_s=time.monotonic() - t_start,
            workers=self.workers,
        )
        if interrupted:
            logger.warning(
                "campaign=%s interrupted: %d/%d tasks settled (flushed to cache)",
                spec.name, result.n_tasks, len(tasks),
            )
            raise CampaignInterrupted(
                f"campaign {spec.name!r} interrupted: {result.n_tasks}/"
                f"{len(tasks)} task(s) settled; completed results are in the "
                f"cache",
                partial=result,
            )
        logger.info(
            "campaign=%s done tasks=%d cached=%d executed=%d retried=%d "
            "failed=%d wall=%.2fs",
            spec.name, result.n_tasks, result.n_cached, result.n_executed,
            result.n_retried, result.n_failed, result.wall_s,
        )
        if result.n_failed and self.on_error == "raise":
            failed = ", ".join(
                f"{o.task.label()}: {o.error}" for o in result.failures()
            )
            raise CampaignError(
                f"campaign {spec.name!r}: {result.n_failed} task(s) failed "
                f"after retries — {failed}"
            )
        return result

    # -- shared plumbing ---------------------------------------------------

    def _retry_delay_s(self, task: TaskSpec, attempt: int) -> float:
        """Pre-retry delay for attempt number ``attempt`` (1-based retry)."""
        if self.backoff is None:
            return 0.0
        return self.backoff.delay_for(
            attempt, seed=self.backoff_seed, key=task.key
        )

    def _settle(self, outcomes: Dict[int, TaskOutcome], outcome: TaskOutcome) -> None:
        """Record an outcome and flush it to the cache immediately, so an
        interrupt a moment later cannot lose completed work."""
        outcomes[outcome.task.index] = outcome
        if self.cache is not None and outcome.ok and not outcome.cached:
            self.cache.put(
                outcome.task,
                outcome.result,
                meta={
                    "elapsed_s": outcome.elapsed_s,
                    "attempts": outcome.attempts,
                    "telemetry": outcome.telemetry,
                    # Provenance for `repro.campaign replay`: tasks that
                    # return a RunManifest get it mirrored into the entry
                    # meta, where audits can read it without re-running.
                    "manifest": (
                        outcome.result.get("run_manifest")
                        if isinstance(outcome.result, dict)
                        else None
                    ),
                },
            )

    # -- serial path -------------------------------------------------------

    def _run_serial(
        self, todo: List[TaskSpec], outcomes: Dict[int, TaskOutcome]
    ) -> None:
        for task in todo:
            attempt = 0
            while True:
                t0 = time.monotonic()
                try:
                    result, telemetry = _call_task(self._fn, task.config, task.seed)
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    elapsed = time.monotonic() - t0
                    if attempt < self.max_retries:
                        self._log(task, f"retry ({exc!r})", attempt + 1, elapsed)
                        attempt += 1
                        delay = self._retry_delay_s(task, attempt)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    self._settle(
                        outcomes,
                        TaskOutcome(task, None, False, attempt + 1, elapsed, repr(exc)),
                    )
                    self._log(task, f"failed ({exc!r})", attempt + 1, elapsed)
                    break
                elapsed = time.monotonic() - t0
                self._settle(
                    outcomes,
                    TaskOutcome(
                        task, result, False, attempt + 1, elapsed,
                        telemetry=telemetry,
                    ),
                )
                self._log(task, "done", attempt + 1, elapsed)
                break

    # -- parallel path -----------------------------------------------------

    def _run_parallel(
        self, todo: List[TaskSpec], done: Dict[int, TaskOutcome]
    ) -> None:
        # (task, attempt, ready_at): retries wait out their backoff delay
        # in the queue, so a healthy pool keeps draining other tasks.
        pending: Deque[Tuple[TaskSpec, int, float]] = deque(
            (t, 0, 0.0) for t in todo
        )
        executor = self._new_pool()
        # future -> (task, attempt, deadline, start time)
        in_flight: Dict[Any, Tuple[TaskSpec, int, float, float]] = {}
        try:
            while pending or in_flight:
                while pending and len(in_flight) < self.workers:
                    now = time.monotonic()
                    ready_idx = next(
                        (
                            i
                            for i, (_t, _a, ready_at) in enumerate(pending)
                            if ready_at <= now
                        ),
                        None,
                    )
                    if ready_idx is None:
                        break
                    task, attempt, _ = pending[ready_idx]
                    del pending[ready_idx]
                    t0 = time.monotonic()
                    try:
                        future = executor.submit(
                            _call_task, self._fn, task.config, task.seed
                        )
                    except BrokenProcessPool:
                        # Pool died between rebuilds; put the task back and heal.
                        pending.appendleft((task, attempt, 0.0))
                        executor = self._heal(executor, in_flight, pending)
                        continue
                    deadline = (
                        t0 + self.timeout_s if self.timeout_s is not None else math.inf
                    )
                    in_flight[future] = (task, attempt, deadline, t0)
                if not in_flight:
                    if pending:
                        # Everything queued is backing off; nap until the
                        # earliest becomes ready (bounded by the poll tick).
                        earliest = min(ready_at for _t, _a, ready_at in pending)
                        time.sleep(
                            min(self._poll_s, max(0.0, earliest - time.monotonic()))
                        )
                    continue

                completed, _ = wait(
                    set(in_flight), timeout=self._poll_s, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in completed:
                    task, attempt, _, t0 = in_flight.pop(future)
                    elapsed = time.monotonic() - t0
                    error = future.exception()
                    if error is None:
                        result, telemetry = future.result()
                        self._settle(
                            done,
                            TaskOutcome(
                                task, result, False, attempt + 1, elapsed,
                                telemetry=telemetry,
                            ),
                        )
                        self._log(task, "done", attempt + 1, elapsed)
                    else:
                        if isinstance(error, BrokenProcessPool):
                            broken = True
                            reason = "worker crash"
                        else:
                            reason = f"task error ({error!r})"
                        self._settle_failure(
                            pending, done, task, attempt, elapsed, reason
                        )

                now = time.monotonic()
                overdue = [
                    f for f, (_, _, deadline, _) in in_flight.items() if now > deadline
                ]
                for future in overdue:
                    task, attempt, _, t0 = in_flight.pop(future)
                    broken = True  # hung worker: only a pool kill reclaims it
                    self._settle_failure(
                        pending, done, task, attempt, now - t0,
                        f"timeout after {self.timeout_s:.1f}s",
                    )

                if broken:
                    executor = self._heal(executor, in_flight, pending)
        finally:
            self._kill_pool(executor)

    def _settle_failure(
        self,
        pending: Deque[Tuple[TaskSpec, int, float]],
        done: Dict[int, TaskOutcome],
        task: TaskSpec,
        attempt: int,
        elapsed: float,
        reason: str,
    ) -> None:
        if attempt < self.max_retries:
            delay = self._retry_delay_s(task, attempt + 1)
            pending.append((task, attempt + 1, time.monotonic() + delay))
            self._log(task, f"retry in {delay:.2f}s ({reason})", attempt + 1, elapsed)
        else:
            self._settle(
                done,
                TaskOutcome(task, None, False, attempt + 1, elapsed, reason),
            )
            self._log(task, f"failed ({reason})", attempt + 1, elapsed)

    def _heal(
        self,
        executor: ProcessPoolExecutor,
        in_flight: Dict[Any, Tuple[TaskSpec, int, float, float]],
        pending: Deque[Tuple[TaskSpec, int, float]],
    ) -> ProcessPoolExecutor:
        """Kill a broken/hung pool, re-queue in-flight tasks, start fresh.

        Tasks still in flight when the pool dies ride back to the front of
        the queue *without* consuming an attempt (or a backoff delay) —
        their futures never resolved, so they were casualties of the
        rebuild, not failures.
        """
        for task, attempt, _, _ in in_flight.values():
            pending.appendleft((task, attempt, 0.0))
            self._log(task, "requeued (pool rebuild)", attempt, 0.0)
        in_flight.clear()
        self._kill_pool(executor)
        return self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        # Terminate workers first: a worker stuck in a task would otherwise
        # keep shutdown's queue drain (and any hung task) alive forever.
        try:
            for process in list(getattr(executor, "_processes", {}).values()):
                process.terminate()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        executor.shutdown(wait=False, cancel_futures=True)

    # -- logging -----------------------------------------------------------

    @staticmethod
    def _log(task: TaskSpec, status: str, attempt: int, elapsed: float) -> None:
        logger.info(
            "campaign=%s task=%s status=%s attempt=%d elapsed=%.2fs",
            task.campaign, task.label(), status, attempt, elapsed,
        )
