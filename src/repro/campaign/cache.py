"""Content-addressed on-disk result cache for campaigns.

Each task result is stored under its :func:`~repro.campaign.spec.config_key`
— a hash of the repro version and the task's full configuration — in a
two-level fan-out directory (``<root>/<key[:2]>/<key>.json``).  That gives:

* **resume-after-interrupt**: a killed campaign rerun skips every task that
  already completed;
* **zero-cost re-runs**: a warm rerun of an unchanged spec executes nothing;
* **automatic invalidation**: any change to a config field, the seed, the
  campaign name, or the library version changes the key, so stale entries
  are simply never looked up again.

Entries are JSON with ``allow_nan`` enabled (the cache is an internal
store, not an export format), so NaN metric values survive the round-trip
and a warm read is bit-identical to the cold computation.  Corrupt or
truncated entries — e.g. from a kill mid-write, although writes are atomic
via ``os.replace`` — are treated as misses and deleted.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro._version import __version__
from repro.campaign.spec import TaskSpec

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, task: TaskSpec) -> Optional[Dict[str, Any]]:
        """Return the cached result for ``task``, or ``None`` on a miss."""
        path = self.path_for(task.key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            # A corrupt entry must never poison a campaign: drop it and recompute.
            self.misses += 1
            self._discard(path)
            return None
        if payload.get("key") != task.key or "result" not in payload:
            self.misses += 1
            self._discard(path)
            return None
        self.hits += 1
        return payload["result"]

    def get_stale(
        self, key: str, *, max_age_s: Optional[float] = None
    ) -> Optional[Tuple[Dict[str, Any], float]]:
        """Entry for a raw ``key`` with its age: ``(result, age_s)`` or None.

        This is the degraded-mode lookup: unlike :meth:`get` it is keyed
        directly (no :class:`TaskSpec` needed) and reports how old the
        entry is, so callers can distinguish *fresh*, *stale-but-usable*,
        and *absent*.  Entries written before timestamps existed stay
        readable: their age is ``inf``, which any finite ``max_age_s``
        rejects but ``max_age_s=None`` accepts.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._discard(path)
            return None
        if payload.get("key") != key or "result" not in payload:
            return None
        stored_at = payload.get("stored_at")
        age_s = (
            max(0.0, time.time() - float(stored_at))
            if stored_at is not None
            else math.inf
        )
        if max_age_s is not None and age_s > max_age_s:
            return None
        return payload["result"], age_s

    def put(
        self,
        task: TaskSpec,
        result: Mapping[str, Any],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Store ``result`` for ``task`` atomically; returns the entry path."""
        path = self.path_for(task.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": task.key,
            "repro_version": __version__,
            "campaign": task.campaign,
            "params": task.config,
            "replicate": task.replicate,
            "seed": task.seed,
            "stored_at": time.time(),
            "result": dict(result),
            "meta": dict(meta) if meta else {},
        }
        # pid + thread id: the synthesis service writes through from worker
        # threads, and two threads storing the same key must not share a tmp.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def invalidate(self, task: TaskSpec) -> bool:
        """Drop the entry for ``task``; returns whether one existed."""
        path = self.path_for(task.key)
        existed = path.exists()
        self._discard(path)
        return existed

    def clear(self) -> int:
        """Remove every cache entry; returns the number dropped."""
        dropped = 0
        if not self.root.exists():
            return dropped
        for path in self.root.glob("*/*.json"):
            self._discard(path)
            dropped += 1
        return dropped

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
