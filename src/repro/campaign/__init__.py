"""repro.campaign — parallel experiment-campaign runner with result caching.

Every experiment in DESIGN.md §2 is a parameter sweep × seed replication;
this package runs those grids declaratively, in parallel, resumably:

* :class:`SweepSpec` / :class:`TaskSpec` — declarative grid expansion with
  content-derived deterministic seeds (:mod:`repro.campaign.spec`);
* :class:`CampaignRunner` — serial or process-pool execution with per-task
  timeouts and bounded retries on worker crash
  (:mod:`repro.campaign.runner`);
* :class:`ResultCache` — content-addressed on-disk results keyed by
  (repro version, config hash), for resume-after-interrupt and zero-cost
  warm re-runs (:mod:`repro.campaign.cache`);
* :func:`aggregate` — replicate collapse to mean/CI
  :class:`~repro.util.tables.ResultTable` rows
  (:mod:`repro.campaign.aggregate`).

Minimal use::

    from repro.campaign import CampaignRunner, ResultCache, SweepSpec

    def my_task(params, seed):            # module-level => picklable
        ...run one simulation...
        return {"delivery": 0.93}

    spec = SweepSpec("demo", grid={"n_nodes": (10, 20)}, replicates=5)
    runner = CampaignRunner(my_task, workers=4, cache=ResultCache(".cache"))
    table = runner.run(spec).table(ci=True)

``python -m repro.campaign`` runs a small built-in smoke campaign (used by
CI) — see :mod:`repro.campaign.cli`.
"""

from repro.campaign.aggregate import aggregate
from repro.campaign.cache import ResultCache
from repro.campaign.runner import (
    CampaignError,
    CampaignInterrupted,
    CampaignResult,
    CampaignRunner,
    TaskOutcome,
)
from repro.campaign.spec import SweepSpec, TaskSpec, canonical_json, config_key

__all__ = [
    "SweepSpec",
    "TaskSpec",
    "canonical_json",
    "config_key",
    "ResultCache",
    "CampaignRunner",
    "CampaignResult",
    "CampaignError",
    "CampaignInterrupted",
    "TaskOutcome",
    "aggregate",
]
