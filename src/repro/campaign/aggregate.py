"""Aggregation of campaign outcomes into result tables.

Groups task outcomes by sweep point (all replicates of one parameter
combination), reduces each metric across replicates — mean, optionally with
a 95% confidence half-width via
:func:`repro.util.stats.mean_confidence_interval` — and emits a
:class:`~repro.util.tables.ResultTable` whose row order follows the spec's
deterministic point enumeration.  Because grouping keys on task *content*
(params), the table is identical whether the campaign ran serially, on any
number of workers, or straight out of the cache.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.stats import mean_confidence_interval
from repro.util.tables import ResultTable

__all__ = ["aggregate"]


def _reduce(values: List[Any], ci: bool) -> Tuple[Any, Optional[float]]:
    """Reduce one metric's replicate values to a cell (and CI half-width).

    Identical non-float values (labels, bools, ints that never varied) pass
    through unchanged so single-replicate tables keep their original look;
    anything else is averaged, NaN replicates omitted.
    """
    first = values[0]
    if not isinstance(first, float) and all(v == first for v in values[1:]):
        return first, 0.0 if ci else None
    mean, half = mean_confidence_interval(
        [float(v) for v in values], nan_policy="omit"
    )
    return mean, half if ci else None


def aggregate(
    campaign_result,
    *,
    title: Optional[str] = None,
    param_cols: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    ci: bool = False,
) -> ResultTable:
    """Collapse replicates into one table row per sweep point.

    Parameters
    ----------
    campaign_result:
        A :class:`~repro.campaign.runner.CampaignResult` (or anything with
        an ``outcomes`` list of :class:`TaskOutcome`).
    title:
        Table title; defaults to the campaign name.
    param_cols:
        Parameter columns, in display order.  Defaults to the sorted
        parameter names of the first task.
    metrics:
        Metric columns, in display order.  Defaults to every key of the
        first successful result whose value is numeric, in result-dict
        insertion order.  Non-numeric metrics (e.g. trace fingerprints)
        must be listed explicitly to appear — and then only pass through
        when constant within a group.
    ci:
        Add a ``<metric>_ci95`` half-width column per metric plus an ``n``
        replicate-count column.
    """
    outcomes = [o for o in campaign_result.outcomes if o.ok]
    if not outcomes:
        raise ValueError("no successful outcomes to aggregate")

    if title is None:
        title = getattr(getattr(campaign_result, "spec", None), "name", "campaign")
    if param_cols is None:
        param_cols = [k for k, _ in outcomes[0].task.params]
    if metrics is None:
        metrics = [
            k
            for k, v in outcomes[0].result.items()
            if isinstance(v, (bool, int, float))
        ]
    if not metrics:
        raise ValueError("no numeric metrics found; pass metrics= explicitly")

    # Group replicates by sweep point, preserving spec enumeration order.
    groups: Dict[Tuple[Tuple[str, Any], ...], List[Any]] = {}
    for outcome in outcomes:
        groups.setdefault(outcome.task.params, []).append(outcome)

    columns: List[str] = list(param_cols)
    for metric in metrics:
        columns.append(metric)
        if ci:
            columns.append(f"{metric}_ci95")
    if ci:
        columns.append("n")

    table = ResultTable(title, columns)
    for params, members in groups.items():
        config = dict(params)
        row: Dict[str, Any] = {c: config.get(c, "") for c in param_cols}
        for metric in metrics:
            values = [m.result[metric] for m in members if metric in m.result]
            if not values:
                row[metric] = math.nan
                if ci:
                    row[f"{metric}_ci95"] = math.nan
                continue
            value, half = _reduce(values, ci)
            row[metric] = value
            if ci:
                row[f"{metric}_ci95"] = half
        if ci:
            row["n"] = len(members)
        table.add_row(**row)
    return table
