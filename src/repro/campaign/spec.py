"""Declarative experiment-campaign specifications.

A campaign is a parameter sweep crossed with seed replication: every
quantitative claim in DESIGN.md §2 is some grid of configurations, each run
over several seeds and aggregated.  :class:`SweepSpec` captures that shape
declaratively and expands it into a deterministic, ordered list of picklable
:class:`TaskSpec` objects that :class:`~repro.campaign.runner.CampaignRunner`
can execute serially or in parallel with identical results.

Determinism rules:

* Task seeds derive from the *content* of each sweep point (via
  :func:`repro.util.rng.derive_seed`), never from its position in the grid,
  so adding or removing points does not perturb the seeds of the others.
* Grid expansion iterates parameters in sorted-key order, so the task list —
  and therefore every aggregated table — is independent of dict insertion
  order.
* :func:`config_key` hashes the repro version together with the canonical
  JSON of a task's full configuration; it is the content address used by
  :class:`~repro.campaign.cache.ResultCache`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.util.rng import derive_seed

__all__ = ["TaskSpec", "SweepSpec", "canonical_json", "config_key"]


def _jsonify(value: Any) -> Any:
    """Fallback encoder for canonical JSON: sets sorted, numpy scalars
    unboxed, dataclasses (e.g. :class:`repro.net.registry.StackSpec`)
    flattened to tagged dicts so stack compositions content-address."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Tag with the class name: two dataclass types with identical
        # fields (or an equivalent plain dict) must not collide in the
        # cache, because the task function interprets them differently.
        return {
            "__dataclass__": type(value).__name__,
            **dataclasses.asdict(value),
        }
    raise TypeError(f"not canonically serializable: {value!r} ({type(value).__name__})")


def canonical_json(value: Any) -> str:
    """A stable JSON encoding: sorted keys, no whitespace, sets ordered.

    Equal configurations always produce equal strings, so the encoding can
    feed hashes (cache keys, seed derivation) safely.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_jsonify
    )


def config_key(config: Mapping[str, Any], *, version: Optional[str] = None) -> str:
    """Content-address a task configuration.

    The key covers the repro version and the full configuration, so a change
    to either — a parameter value, the seed, the campaign name, or the
    library version — yields a different key and invalidates any cached
    result stored under the old one.  ``version`` defaults to the library
    version at call time.
    """
    payload = {
        "repro_version": __version__ if version is None else version,
        "config": dict(config),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TaskSpec:
    """One unit of campaign work: a sweep point, a replicate, a seed.

    Instances are plain frozen dataclasses with JSON-able fields, so they
    pickle cheaply across process boundaries.  ``params`` is stored as a
    sorted item tuple to keep the spec hash-stable; use :attr:`config` for
    the dict view handed to task functions.
    """

    campaign: str
    index: int
    params: Tuple[Tuple[str, Any], ...]
    replicate: int
    seed: int
    key: str

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        """A compact human-readable identity for logs."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.campaign}[{self.index}]({inner})#r{self.replicate}"


@dataclass
class SweepSpec:
    """A declarative parameter grid × seed replication.

    ``grid`` maps parameter names to the values to sweep (full cross
    product); ``fixed`` parameters ride along unchanged in every task.
    ``where`` optionally prunes points (evaluated at expansion time in the
    parent process, so it need not be picklable).

    Seeds: by default, replicate ``r`` of a point derives its seed from
    ``(base_seed, name, seed-relevant params, r)``.  ``seed_params`` narrows
    which parameters feed the derivation — listing only the scenario-shaping
    ones pairs treatment arms on identical worlds (e.g. every ``composer``
    at one ``n_assets`` sees the same scenario).  ``seeds`` overrides
    derivation entirely with explicit literals (replicate ``r`` gets
    ``seeds[r]``), which both pairs all arms and reproduces legacy
    hand-rolled seed loops bit-for-bit.
    """

    name: str
    grid: Mapping[str, Sequence[Any]]
    fixed: Mapping[str, Any] = field(default_factory=dict)
    replicates: int = 1
    base_seed: int = 0
    seeds: Optional[Sequence[int]] = None
    seed_params: Optional[Sequence[str]] = None
    where: Optional[Callable[[Dict[str, Any]], bool]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep needs a non-empty name")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters both swept and fixed: {sorted(overlap)}"
            )
        if self.seeds is not None and len(self.seeds) == 0:
            raise ConfigurationError("explicit seeds list must be non-empty")
        if self.seeds is None and self.replicates < 1:
            raise ConfigurationError("replicates must be >= 1")
        unknown = set(self.seed_params or ()) - set(self.grid) - set(self.fixed)
        if unknown:
            raise ConfigurationError(f"unknown seed_params: {sorted(unknown)}")

    @property
    def n_replicates(self) -> int:
        return len(self.seeds) if self.seeds is not None else self.replicates

    def points(self) -> Iterator[Dict[str, Any]]:
        """Sweep points in deterministic (sorted-key, row-major) order."""
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            params = dict(self.fixed)
            params.update(zip(keys, combo))
            if self.where is not None and not self.where(params):
                continue
            yield params

    def _seed_for(self, params: Mapping[str, Any], replicate: int) -> int:
        if self.seeds is not None:
            return int(self.seeds[replicate])
        if self.seed_params is None:
            relevant = dict(params)
        else:
            relevant = {k: params[k] for k in self.seed_params if k in params}
        return derive_seed(
            self.base_seed, self.name, canonical_json(relevant), f"rep{replicate}"
        )

    def tasks(self) -> List[TaskSpec]:
        """Expand into the full ordered task list (points × replicates)."""
        out: List[TaskSpec] = []
        for params in self.points():
            for rep in range(self.n_replicates):
                seed = self._seed_for(params, rep)
                key = config_key(
                    {
                        "campaign": self.name,
                        "params": params,
                        "replicate": rep,
                        "seed": seed,
                    }
                )
                out.append(
                    TaskSpec(
                        campaign=self.name,
                        index=len(out),
                        params=tuple(sorted(params.items())),
                        replicate=rep,
                        seed=seed,
                        key=key,
                    )
                )
        if not out:
            raise ConfigurationError(f"sweep {self.name!r} expands to zero tasks")
        return out

    def __len__(self) -> int:
        return len(self.tasks())
