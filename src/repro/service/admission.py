"""Admission control for the synthesis service: bulkheads and load shedding.

The live compose path runs on a bounded thread pool; the :class:`Bulkhead`
is the asyncio-side guard in front of it — at most ``max_concurrent``
queries hold a slot, at most ``max_waiting`` queries wait for one, and
everything beyond that is *shed immediately* with a typed reason.  A shed
query is a terminal outcome the client can act on (back off, try another
service), never a silent drop or an unbounded queue.

Slots are released when the backend call actually finishes, not when the
caller gives up on it: a stalled backend thread keeps its slot until it
returns, so the bulkhead honestly bounds threads, and admission pressure
(not hidden queueing) is what the caller observes.
"""

from __future__ import annotations

import asyncio
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError, ServiceError

__all__ = ["RejectReason", "QueryRejected", "Bulkhead"]


class RejectReason(Enum):
    """Why admission control refused a query (always reported, never silent)."""

    QUEUE_FULL = "queue_full"          # waiting room at capacity
    BREAKER_OPEN = "breaker_open"      # backend breaker open, no stale answer
    DEADLINE = "deadline"              # budget exhausted before an answer
    SHUTDOWN = "shutdown"              # service draining / stopped
    NO_BACKEND = "no_backend"          # unknown composer name
    NO_SNAPSHOT = "no_snapshot"        # no inventory epoch published yet


class QueryRejected(ServiceError):
    """Typed rejection: the query's terminal outcome when it is shed."""

    def __init__(self, reason: RejectReason, detail: str = ""):
        super().__init__(
            f"query rejected ({reason.value})" + (f": {detail}" if detail else "")
        )
        self.reason = reason
        self.detail = detail


class Bulkhead:
    """Bounded concurrency plus a bounded waiting room, shedding the rest."""

    def __init__(self, max_concurrent: int = 8, max_waiting: int = 64):
        if max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        if max_waiting < 0:
            raise ConfigurationError("max_waiting must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_waiting = max_waiting
        self._sem = asyncio.Semaphore(max_concurrent)
        self._waiting = 0
        self._held = 0
        self.shed_count = 0

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def held(self) -> int:
        return self._held

    async def acquire(self, *, timeout_s: Optional[float] = None) -> None:
        """Take a slot, waiting in the bounded room; shed when it is full.

        Raises :class:`QueryRejected` with ``QUEUE_FULL`` when the waiting
        room is at capacity, or ``DEADLINE`` when ``timeout_s`` elapses
        before a slot frees up.
        """
        if self._held + self._waiting >= self.max_concurrent + self.max_waiting:
            self.shed_count += 1
            raise QueryRejected(
                RejectReason.QUEUE_FULL,
                f"{self._waiting} queries already waiting (max {self.max_waiting})",
            )
        self._waiting += 1
        try:
            if timeout_s is None:
                await self._sem.acquire()
            else:
                try:
                    await asyncio.wait_for(self._sem.acquire(), timeout=timeout_s)
                except asyncio.TimeoutError:
                    raise QueryRejected(
                        RejectReason.DEADLINE,
                        f"no bulkhead slot within {timeout_s:.3f}s",
                    ) from None
        finally:
            self._waiting -= 1
        self._held += 1

    def release(self) -> None:
        self._held = max(0, self._held - 1)
        self._sem.release()

    def snapshot(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "max_waiting": self.max_waiting,
            "held": self._held,
            "waiting": self._waiting,
            "shed": self.shed_count,
        }
