"""Snapshot-isolated inventory views for concurrent synthesis queries.

The live :class:`~repro.things.asset.AssetInventory` mutates continuously —
``repro.faults`` churns nodes, batteries deplete, attacks capture assets.
A query that read the live objects mid-compose would see a torn world
(a sensor alive during selection, dead during connectivity scoring).

:class:`SnapshotHub` publishes immutable epochs instead: each
:class:`InventorySnapshot` carries frozen per-asset records
(:class:`SnapshotAsset` — position, profile, battery fraction copied at
publish time) plus a :class:`~repro.net.topology.TopologySnapshot` built
at the same instant.  Queries capture ``hub.current()`` once at admission
and compose against that epoch no matter what happens underneath —
copy-on-write at epoch granularity.

The hub subscribes to node-lifecycle transitions, so fault churn marks it
dirty; ``current()`` republishes lazily, rate-limited by
``min_refresh_s`` (building a topology over thousands of assets is the
expensive part, so epochs advance at a bounded rate, not per-event).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.net.node import Network
from repro.net.topology import TopologySnapshot, build_topology
from repro.things.asset import Affiliation, AssetInventory
from repro.things.capabilities import CapabilityProfile
from repro.util.geometry import Point

__all__ = ["SnapshotBattery", "SnapshotAsset", "InventorySnapshot", "SnapshotHub"]


@dataclass(frozen=True)
class SnapshotBattery:
    """Battery state frozen at publish time."""

    fraction_remaining: float

    @property
    def depleted(self) -> bool:
        return self.fraction_remaining <= 0.0


@dataclass(frozen=True)
class SnapshotAsset:
    """One asset as it looked at the snapshot instant.

    Structurally compatible with :class:`~repro.things.asset.Asset` for
    everything the composers read (``id``, ``node_id``, ``position``,
    ``profile``, ``battery``, ``alive``, ``affiliation``) but immutable:
    churn after the snapshot cannot change what a query sees.
    """

    id: int
    node_id: int
    position: Point
    profile: CapabilityProfile  # frozen dataclass, safe to share
    affiliation: Affiliation
    battery: Optional[SnapshotBattery]
    alive: bool = True

    @property
    def hostile(self) -> bool:
        return self.affiliation is Affiliation.RED


def _freeze_asset(asset) -> SnapshotAsset:
    battery = None
    if asset.battery is not None:
        battery = SnapshotBattery(float(asset.battery.fraction_remaining))
    return SnapshotAsset(
        id=asset.id,
        node_id=asset.node_id,
        position=asset.position,
        profile=asset.profile,
        affiliation=asset.affiliation,
        battery=battery,
        alive=True,
    )


@dataclass(frozen=True)
class InventorySnapshot:
    """One immutable epoch: frozen assets plus the matching topology."""

    epoch: int
    time: float          # sim time at publish
    wall_time: float     # wall clock at publish (staleness accounting)
    assets: Tuple[SnapshotAsset, ...]
    topology: TopologySnapshot

    def by_id(self, asset_id: int) -> Optional[SnapshotAsset]:
        for a in self.assets:
            if a.id == asset_id:
                return a
        return None

    def pool(self, *, blue_only: bool = True) -> List[SnapshotAsset]:
        """The recruitable candidate pool of this epoch."""
        if not blue_only:
            return list(self.assets)
        return [a for a in self.assets if a.affiliation is Affiliation.BLUE]

    @property
    def size(self) -> int:
        return len(self.assets)


class SnapshotHub:
    """Publisher of inventory epochs over one live inventory + network.

    ``publish()`` builds a fresh epoch eagerly; ``current()`` returns the
    latest epoch, republishing first when the world changed (node churn)
    and at least ``min_refresh_s`` of wall time has passed since the last
    build.  Publishing is synchronous and single-threaded by design: the
    asyncio service calls it from the event loop, queries hold references
    to whatever epoch they were admitted under.
    """

    def __init__(
        self,
        inventory: AssetInventory,
        *,
        network: Optional[Network] = None,
        min_refresh_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.inventory = inventory
        self.network = network if network is not None else inventory.network
        self.min_refresh_s = min_refresh_s
        self._clock = clock
        self._epoch = 0
        self._current: Optional[InventorySnapshot] = None
        self._dirty = True
        self._last_build = -float("inf")
        self.publishes = 0
        self.network.on_node_state(self._on_node_state)

    def _on_node_state(self, node_id: int, up: bool) -> None:
        self._dirty = True

    def mark_dirty(self) -> None:
        """Force the next ``current()`` to republish (inventory mutated)."""
        self._dirty = True

    def publish(self) -> InventorySnapshot:
        """Build and install a new epoch from the live world, right now."""
        self._epoch += 1
        assets = tuple(
            _freeze_asset(a) for a in self.inventory.all() if a.alive
        )
        snapshot = InventorySnapshot(
            epoch=self._epoch,
            time=self.network.sim.now,
            wall_time=self._clock(),
            assets=assets,
            topology=build_topology(self.network),
        )
        self._current = snapshot
        self._dirty = False
        self._last_build = self._clock()
        self.publishes += 1
        return snapshot

    def current(self) -> InventorySnapshot:
        """Latest epoch, lazily refreshed when dirty and old enough."""
        if self._current is None:
            return self.publish()
        if self._dirty and self._clock() - self._last_build >= self.min_refresh_s:
            return self.publish()
        return self._current

    @property
    def epoch(self) -> int:
        return self._epoch
