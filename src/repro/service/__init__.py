"""Synthesis-as-a-service: a resilient concurrent front-end (§ROADMAP).

``repro.service`` turns the composer/recruiter machinery into a
long-running asyncio service answering thousands of concurrent
mission-synthesis queries against a shared, churning asset inventory.
Robustness is the first-class design axis: per-query deadlines, bounded
retries with exponential backoff + jitter, per-backend circuit breakers,
bulkhead admission control with typed load shedding, snapshot-isolated
inventory epochs, and graceful degradation to stale cached answers.

See DESIGN.md §3.6 for the architecture and :mod:`repro.service.chaos`
for the fault-injection harness that enforces the SLOs.
"""

from repro.service.admission import Bulkhead, QueryRejected, RejectReason
from repro.service.breaker import BreakerOpen, BreakerState, CircuitBreaker
from repro.service.service import (
    BackendTimeout,
    OutcomeStatus,
    QueryOutcome,
    SynthesisQuery,
    SynthesisService,
    query_config,
)
from repro.service.snapshot import (
    InventorySnapshot,
    SnapshotAsset,
    SnapshotBattery,
    SnapshotHub,
)
from repro.util.backoff import BackoffPolicy

__all__ = [
    "BackoffPolicy",
    "BackendTimeout",
    "BreakerOpen",
    "BreakerState",
    "Bulkhead",
    "CircuitBreaker",
    "InventorySnapshot",
    "OutcomeStatus",
    "QueryOutcome",
    "QueryRejected",
    "RejectReason",
    "SnapshotAsset",
    "SnapshotBattery",
    "SnapshotHub",
    "SynthesisQuery",
    "SynthesisService",
    "query_config",
]
