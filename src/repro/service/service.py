"""The synthesis service: a resilient asyncio front-end over the composers.

``SynthesisService`` answers "recruit me a composite asset for this
mission" for thousands of concurrent clients against a churning asset
inventory.  Robustness is the design axis, layered as::

    submit ──► admission ──► bulkhead ──► breaker ──► backend (composer)
                  │               │            │
                  │               │            └─ open ────┐
                  │               └─ shed (typed) ─────────┤
                  └─ fresh answer cache (per epoch) ─ OK   ▼
                                               degraded path: stale answer
                                               (flagged, with staleness) or
                                               typed rejection — never a hang

* **Deadlines** — every query carries ``deadline_s``; each live attempt,
  bulkhead wait, and backoff sleep is bounded by the remaining budget, so
  the query reaches a terminal outcome within deadline (+ a small grace
  enforced by a belt-and-braces outer timeout).
* **Retries** — bounded, paced by a shared
  :class:`~repro.util.backoff.BackoffPolicy` (exponential + seeded jitter).
* **Circuit breaker** — one :class:`~repro.service.breaker.CircuitBreaker`
  per backend; an open breaker diverts traffic to the degraded path
  instead of queueing it behind a sick composer.
* **Bulkhead + load shedding** — the live path runs on a bounded thread
  pool guarded by :class:`~repro.service.admission.Bulkhead`; overload is
  shed immediately with a typed :class:`~repro.service.admission.QueryRejected`.
* **Snapshot isolation** — queries compose against one immutable
  :class:`~repro.service.snapshot.InventorySnapshot` epoch captured at
  admission; churn underneath cannot tear a query's world view.
* **Graceful degradation** — when the live path is open, over deadline, or
  failing, the service answers from its stale store (in-memory, plus the
  campaign :class:`~repro.campaign.cache.ResultCache` on disk when
  configured), flagged ``degraded=True`` with staleness metadata.

Every query gets exactly one terminal outcome: ``OK``, ``DEGRADED``,
``REJECTED`` (typed reason), or ``FAILED`` (captured error).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.cache import ResultCache
from repro.campaign.spec import TaskSpec, config_key
from repro.core.mission import MissionGoal
from repro.core.synthesis.composer import CompositeAsset, GreedyComposer
from repro.core.synthesis.optimizer import AnnealingComposer, evaluate_composite
from repro.core.synthesis.requirements import RequirementSet, compile_goal
from repro.errors import ConfigurationError, ServiceError
from repro.obs.registry import MetricsRegistry
from repro.service.admission import Bulkhead, QueryRejected, RejectReason
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.snapshot import InventorySnapshot, SnapshotHub
from repro.util.backoff import BackoffPolicy
from repro.util.rng import derive_seed

__all__ = [
    "BackendTimeout",
    "OutcomeStatus",
    "SynthesisQuery",
    "QueryOutcome",
    "SynthesisService",
    "query_config",
]

#: Campaign namespace under which service answers are stored in a ResultCache.
SERVICE_CAMPAIGN = "synthesis-service"


class BackendTimeout(ServiceError):
    """A live backend call exceeded its per-attempt budget."""


class OutcomeStatus(Enum):
    OK = "ok"                # live or fresh-cache answer at the current epoch
    DEGRADED = "degraded"    # stale answer served because the live path failed
    REJECTED = "rejected"    # typed admission refusal, no answer
    FAILED = "failed"        # live path exhausted, no stale answer available


@dataclass(frozen=True)
class SynthesisQuery:
    """One mission-synthesis request.

    ``max_stale_s`` bounds how old a degraded answer may be; ``None``
    disables the degraded path for this query (strict consistency).
    """

    goal: MissionGoal
    composer: str = "greedy"
    deadline_s: float = 1.0
    max_stale_s: Optional[float] = 60.0
    query_id: str = ""

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        if self.max_stale_s is not None and self.max_stale_s < 0:
            raise ConfigurationError("max_stale_s must be >= 0 or None")


@dataclass
class QueryOutcome:
    """The terminal outcome of one query — every submit returns exactly one."""

    query: SynthesisQuery
    status: OutcomeStatus
    answer: Optional[Dict[str, Any]] = None
    composite: Optional[CompositeAsset] = None
    cached: bool = False
    degraded: bool = False
    stale_age_s: Optional[float] = None
    epochs_behind: Optional[int] = None
    epoch: Optional[int] = None
    reason: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (OutcomeStatus.OK, OutcomeStatus.DEGRADED)


def _goal_config(goal: MissionGoal) -> Dict[str, Any]:
    return {
        "mission_type": goal.mission_type.value,
        "area": [goal.area.x_min, goal.area.y_min, goal.area.x_max, goal.area.y_max],
        "modalities": sorted(m.value for m in goal.modalities),
        "min_coverage": goal.min_coverage,
        "max_latency_s": goal.max_latency_s,
        "min_confidence": goal.min_confidence,
        "duration_s": goal.duration_s,
        "priority": goal.priority,
        "name": goal.name,
    }


def query_config(query: SynthesisQuery) -> Dict[str, Any]:
    """The content-addressable configuration of a query (epoch-free).

    Deliberately excludes the inventory epoch: the key identifies the
    *question*, so stale answers to the same question remain findable
    after the world has moved on — that is what the degraded path serves.
    """
    return {
        "campaign": SERVICE_CAMPAIGN,
        "composer": query.composer,
        "goal": _goal_config(query.goal),
    }


def _record_from(
    composite: CompositeAsset, epoch: int, stored_at: float
) -> Dict[str, Any]:
    """A JSON-able answer record (what caches store and clients consume)."""
    return {
        "sink": composite.sink,
        "sensors": list(composite.sensors),
        "compute": list(composite.compute),
        "relays": list(composite.relays),
        "members": composite.size,
        "coverage": composite.coverage,
        "total_flops": composite.total_flops,
        "connected_fraction": composite.connected_fraction,
        "satisfied": bool(composite.satisfies()),
        "score": evaluate_composite(composite),
        "epoch": epoch,
        "stored_at": stored_at,
    }


@dataclass
class _StaleEntry:
    record: Dict[str, Any]
    stored_at: float
    epoch: int


class SynthesisService:
    """Resilient mission-synthesis front-end over a snapshot hub.

    Parameters
    ----------
    hub:
        The :class:`SnapshotHub` publishing inventory epochs.
    backends:
        Name → composer (anything with ``compose(requirements, candidates,
        topology)``).  Defaults to greedy + annealing.  The chaos harness
        wraps these to inject faults.
    cache:
        Optional on-disk :class:`ResultCache`; live answers are written
        through, and the degraded path falls back to it when the
        in-memory stale store misses (e.g. across service restarts).
    pool_fn:
        Maps a snapshot to the candidate pool (default: blue assets).
        Wire a :class:`~repro.core.synthesis.recruitment.Recruiter` here
        to recruit on trust/characterization instead.
    max_concurrent / max_waiting:
        Bulkhead sizing for the live path (thread pool width = slots).
    deadline_grace_s:
        Belt-and-braces outer timeout margin; the inner loop already
        bounds every await by the remaining deadline.
    """

    def __init__(
        self,
        hub: SnapshotHub,
        *,
        backends: Optional[Dict[str, Any]] = None,
        cache: Optional[ResultCache] = None,
        pool_fn: Optional[Callable[[InventorySnapshot], Sequence[Any]]] = None,
        backoff: BackoffPolicy = BackoffPolicy(base_s=0.02, factor=2.0, max_s=0.5),
        max_retries: int = 2,
        deadline_grace_s: float = 1.0,
        max_concurrent: int = 8,
        max_waiting: int = 64,
        breaker_window: int = 20,
        breaker_threshold: float = 0.5,
        breaker_min_calls: int = 5,
        breaker_open_s: float = 0.5,
        stale_capacity: int = 4096,
        fresh_capacity: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.hub = hub
        if backends is None:
            backends = {
                "greedy": GreedyComposer(),
                "annealing": AnnealingComposer(
                    np.random.default_rng(derive_seed(seed, "service", "annealing")),
                    iterations=30,
                ),
            }
        self.backends = dict(backends)
        self.cache = cache
        self.pool_fn = pool_fn if pool_fn is not None else (lambda s: s.pool())
        self.backoff = backoff
        self.max_retries = max(0, int(max_retries))
        self.deadline_grace_s = deadline_grace_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bulkhead = Bulkhead(max_concurrent, max_waiting)
        self._breaker_conf = dict(
            window=breaker_window,
            failure_threshold=breaker_threshold,
            min_calls=breaker_min_calls,
            open_s=breaker_open_s,
        )
        self._clock = clock
        self.breakers: Dict[str, CircuitBreaker] = {
            name: self._new_breaker(name) for name in self.backends
        }
        # Publish every breaker's initial (closed) state so the live
        # snapshot shows all backends from query zero, not only ones that
        # have already transitioned.
        for name in self.breakers:
            self.metrics.gauge(f"service.breaker.{name}.state").set(0.0)
        self._rng = np.random.default_rng(derive_seed(seed, "service", "backoff"))
        self._fresh: "OrderedDict[Tuple[str, int], Dict[str, Any]]" = OrderedDict()
        self._fresh_capacity = fresh_capacity
        self._stale: "OrderedDict[str, _StaleEntry]" = OrderedDict()
        self._stale_capacity = stale_capacity
        self._requirements: Dict[str, RequirementSet] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopping = False
        self._started = False
        self._lock = threading.Lock()  # guards cache write-through from workers

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> "SynthesisService":
        if self._started:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.bulkhead.max_concurrent,
            thread_name_prefix="synthesis",
        )
        self._stopping = False
        self._started = True
        return self

    async def stop(self) -> None:
        """Drain: refuse new queries, let in-flight backend calls finish."""
        self._stopping = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "SynthesisService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ----------------------------------------------------------------- helpers

    def _new_breaker(self, name: str) -> CircuitBreaker:
        return CircuitBreaker(
            name,
            clock=self._clock,
            on_transition=self._on_breaker_transition,
            **self._breaker_conf,
        )

    #: Breaker state encoded for gauges/OpenMetrics: higher is sicker.
    _BREAKER_STATE_CODE = {
        BreakerState.CLOSED: 0.0,
        BreakerState.HALF_OPEN: 1.0,
        BreakerState.OPEN: 2.0,
    }

    def _on_breaker_transition(
        self, name: str, old: BreakerState, new: BreakerState
    ) -> None:
        self.metrics.counter("service.breaker_transitions").inc()
        self.metrics.counter(f"service.breaker.{name}.{new.value}").inc()
        self.metrics.gauge(f"service.breaker.{name}.state").set(
            self._BREAKER_STATE_CODE[new]
        )

    def breaker_for(self, backend: str) -> CircuitBreaker:
        if backend not in self.breakers:
            self.breakers[backend] = self._new_breaker(backend)
        return self.breakers[backend]

    def answer_key(self, query: SynthesisQuery) -> str:
        return config_key(query_config(query))

    def _requirements_for(self, key: str, query: SynthesisQuery) -> RequirementSet:
        req = self._requirements.get(key)
        if req is None:
            req = compile_goal(query.goal)
            self._requirements[key] = req
        return req

    def _cache_put(self, key: str, query: SynthesisQuery, record: Dict[str, Any]) -> None:
        """Write-through to the on-disk cache (called from worker threads)."""
        if self.cache is None:
            return
        config = query_config(query)
        task = TaskSpec(
            campaign=SERVICE_CAMPAIGN,
            index=0,
            params=tuple(sorted(config.items())),
            replicate=0,
            seed=0,
            key=key,
        )
        with self._lock:
            self.cache.put(task, record, meta={"epoch": record.get("epoch")})

    def _remember(self, key: str, epoch: int, record: Dict[str, Any]) -> None:
        self._fresh[(key, epoch)] = record
        self._fresh.move_to_end((key, epoch))
        while len(self._fresh) > self._fresh_capacity:
            self._fresh.popitem(last=False)
        self._stale[key] = _StaleEntry(record, record["stored_at"], epoch)
        self._stale.move_to_end(key)
        while len(self._stale) > self._stale_capacity:
            self._stale.popitem(last=False)

    def _stale_lookup(
        self, key: str, max_stale_s: Optional[float], now_wall: float
    ) -> Optional[Tuple[Dict[str, Any], float, int]]:
        """(record, age_s, record_epoch) from memory, then disk; None on miss."""
        if max_stale_s is None:
            return None
        entry = self._stale.get(key)
        if entry is not None:
            age = max(0.0, now_wall - entry.stored_at)
            if age <= max_stale_s:
                return entry.record, age, entry.epoch
        if self.cache is not None:
            hit = self.cache.get_stale(key, max_age_s=max_stale_s)
            if hit is not None:
                record, age = hit
                return record, age, int(record.get("epoch", 0))
        return None

    # ------------------------------------------------------------------ submit

    async def submit(self, query: SynthesisQuery) -> QueryOutcome:
        """Answer one query; always returns a terminal :class:`QueryOutcome`."""
        t0 = self._clock()
        self.metrics.counter("service.queries").inc()
        try:
            outcome = await asyncio.wait_for(
                self._submit_inner(query, t0),
                timeout=query.deadline_s + self.deadline_grace_s,
            )
        except asyncio.TimeoutError:
            # The inner loop bounds every await by the remaining budget, so
            # this fires only if something slipped past those bounds.
            outcome = QueryOutcome(
                query,
                OutcomeStatus.FAILED,
                reason="deadline+grace exceeded",
            )
        except Exception as exc:  # noqa: BLE001 - terminal-outcome guarantee
            outcome = QueryOutcome(query, OutcomeStatus.FAILED, reason=repr(exc))
        outcome.elapsed_s = self._clock() - t0
        self._account(outcome)
        return outcome

    def _account(self, outcome: QueryOutcome) -> None:
        self.metrics.counter(f"service.{outcome.status.value}").inc()
        if outcome.status is OutcomeStatus.REJECTED and outcome.reason:
            self.metrics.counter(f"service.rejected.{outcome.reason}").inc()
        if outcome.degraded and outcome.stale_age_s is not None:
            # How old the answers we actually serve degraded are — the
            # SLO the stale store's capacity and max_stale_s trade against.
            self.metrics.histogram("service.stale_age_s").observe(
                outcome.stale_age_s
            )
        self.metrics.histogram("service.latency_s").observe(outcome.elapsed_s)
        self.metrics.gauge("service.queue_depth").set(float(self.bulkhead.waiting))
        self.metrics.gauge("service.inflight").set(float(self.bulkhead.held))
        self.metrics.gauge("service.shed").set(float(self.bulkhead.shed_count))
        total = self.metrics.counter("service.queries").value
        degraded = self.metrics.counter("service.degraded").value
        if total:
            self.metrics.gauge("service.degraded_ratio").set(degraded / total)

    async def _submit_inner(self, query: SynthesisQuery, t0: float) -> QueryOutcome:
        if self._stopping or not self._started:
            return QueryOutcome(
                query, OutcomeStatus.REJECTED, reason=RejectReason.SHUTDOWN.value
            )
        if query.composer not in self.backends:
            return QueryOutcome(
                query, OutcomeStatus.REJECTED, reason=RejectReason.NO_BACKEND.value
            )
        key = self.answer_key(query)
        try:
            snapshot = self.hub.current()
        except Exception:  # the inventory path itself is a backend that can fail
            snapshot = None
        now_wall = time.time()
        if snapshot is None:
            stale = self._stale_lookup(key, query.max_stale_s, now_wall)
            if stale is not None:
                record, age, rec_epoch = stale
                return QueryOutcome(
                    query, OutcomeStatus.DEGRADED, answer=record, degraded=True,
                    stale_age_s=age, epochs_behind=None, epoch=rec_epoch,
                    reason="inventory unavailable",
                )
            return QueryOutcome(
                query, OutcomeStatus.REJECTED, reason=RejectReason.NO_SNAPSHOT.value
            )
        self.metrics.gauge("service.epoch").set(float(snapshot.epoch))

        # 1. Fresh answer at this very epoch — consistent and current.
        fresh = self._fresh.get((key, snapshot.epoch))
        if fresh is not None:
            self.metrics.counter("service.ok_cached").inc()
            return QueryOutcome(
                query, OutcomeStatus.OK, answer=fresh, cached=True,
                epoch=snapshot.epoch,
            )

        # 2. Live path: bulkhead → breaker → backend, with deadline + retries.
        deadline = t0 + query.deadline_s
        breaker = self.breaker_for(query.composer)
        attempts = 0
        last_error: Optional[str] = None
        rejection: Optional[RejectReason] = None
        while attempts <= self.max_retries:
            remaining = deadline - self._clock()
            if remaining <= 1e-3:
                rejection = rejection or RejectReason.DEADLINE
                break
            if not breaker.allow():
                rejection = RejectReason.BREAKER_OPEN
                break
            # breaker.allow() may have consumed a half-open probe slot; from
            # here every exit path must record exactly one outcome on it.
            recorded = False
            try:
                try:
                    await self.bulkhead.acquire(timeout_s=remaining)
                except QueryRejected as rej:
                    breaker.record_success()  # admission refusal, not backend sickness
                    recorded = True
                    rejection = rej.reason
                    break
                attempts += 1
                try:
                    record = await self._call_backend(
                        query, key, snapshot, timeout_s=deadline - self._clock()
                    )
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    breaker.record_failure()
                    recorded = True
                    self.metrics.counter("service.live_failure").inc()
                    last_error = repr(exc)
                else:
                    breaker.record_success()
                    recorded = True
                    self.metrics.counter("service.live_success").inc()
                    self._remember(key, snapshot.epoch, record)
                    return QueryOutcome(
                        query, OutcomeStatus.OK, answer=record,
                        epoch=snapshot.epoch, attempts=attempts,
                    )
            finally:
                if not recorded:
                    # Cancelled mid-attempt: count it against the backend so
                    # half-open probe slots can never leak.
                    breaker.record_failure()
            if attempts > self.max_retries:
                break
            delay = min(
                self.backoff.delay_s(attempts, self._rng),
                max(0.0, deadline - self._clock()),
            )
            if delay > 0:
                self.metrics.counter("service.retries").inc()
                await asyncio.sleep(delay)

        # 3. Degraded path: a stale answer beats no answer — flagged as such.
        stale = self._stale_lookup(key, query.max_stale_s, now_wall)
        if stale is not None:
            record, age, rec_epoch = stale
            if rejection is RejectReason.BREAKER_OPEN:
                reason = "breaker_open"
            else:
                reason = last_error or (
                    rejection.value if rejection else "live path unavailable"
                )
            return QueryOutcome(
                query, OutcomeStatus.DEGRADED, answer=record, degraded=True,
                stale_age_s=age, epochs_behind=max(0, snapshot.epoch - rec_epoch),
                epoch=rec_epoch, reason=reason, attempts=attempts,
            )

        # 4. Typed terminal refusal.
        if last_error is not None:
            return QueryOutcome(
                query, OutcomeStatus.FAILED, reason=last_error, attempts=attempts,
            )
        reason = (rejection or RejectReason.DEADLINE).value
        return QueryOutcome(
            query, OutcomeStatus.REJECTED, reason=reason, attempts=attempts,
        )

    async def _call_backend(
        self,
        query: SynthesisQuery,
        key: str,
        snapshot: InventorySnapshot,
        *,
        timeout_s: float,
    ) -> Dict[str, Any]:
        """One live attempt on the executor; the bulkhead slot is released
        when the backend thread actually finishes (timeouts abandon the
        thread but keep its slot held until it returns — honest bounds)."""
        if timeout_s <= 0:
            self.bulkhead.release()
            raise BackendTimeout("no budget left for a live attempt")
        if self._executor is None:
            self.bulkhead.release()
            raise QueryRejected(RejectReason.SHUTDOWN)
        loop = asyncio.get_running_loop()
        backend = self.backends[query.composer]
        requirements = self._requirements_for(key, query)
        pool = list(self.pool_fn(snapshot))
        future = self._executor.submit(
            self._invoke, backend, query, key, requirements, pool, snapshot
        )
        future.add_done_callback(
            lambda _f: loop.call_soon_threadsafe(self.bulkhead.release)
        )
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future, loop=loop), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            future.cancel()
            raise BackendTimeout(
                f"backend {query.composer!r} exceeded {timeout_s:.3f}s"
            ) from None

    def _invoke(
        self,
        backend: Any,
        query: SynthesisQuery,
        key: str,
        requirements: RequirementSet,
        pool: Sequence[Any],
        snapshot: InventorySnapshot,
    ) -> Dict[str, Any]:
        """Worker-thread body: compose, build the record, write through."""
        compose = backend.compose if hasattr(backend, "compose") else backend
        composite = compose(requirements, pool, snapshot.topology)
        record = _record_from(composite, snapshot.epoch, time.time())
        self._cache_put(key, query, record)
        return record

    # ------------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        """A JSON-able health snapshot (metrics, breakers, bulkhead)."""
        return {
            "bulkhead": self.bulkhead.snapshot(),
            "breakers": {n: b.snapshot() for n, b in self.breakers.items()},
            "epoch": self.hub.epoch,
            "counters": {
                name: d["value"]
                for name, d in self.metrics.snapshot().items()
                if d["kind"] == "counter" and name.startswith("service.")
            },
        }
