"""Chaos harness for the synthesis service.

Injects the failure modes the resilience stack exists to absorb —
*without* touching the service's own code paths:

* :class:`ChaosBackend` wraps a composer and, per call, raises
  (:class:`ChaosError`), stalls (sleeps past any reasonable deadline), or
  slows (adds latency) according to seeded probabilities.  It stands in
  for a sick backend; the breaker and deadline machinery must contain it.
* :class:`InventoryChurner` kills and restores random asset nodes on the
  *live* inventory while queries are in flight, publishing fresh epochs
  through the hub — the snapshot-isolation stress.
* :func:`run_query_load` drives a concurrent query stream and collects
  outcomes; :func:`check_slos` turns the outcomes plus service state into
  a pass/fail verdict (every query terminal, breaker re-closed, degraded
  answers carry staleness metadata).

All randomness is seeded, so a chaos run that finds a bug is replayable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ServiceError
from repro.service.breaker import BreakerState
from repro.service.service import (
    OutcomeStatus,
    QueryOutcome,
    SynthesisQuery,
    SynthesisService,
)
from repro.service.snapshot import SnapshotHub
from repro.util.rng import derive_seed

__all__ = [
    "ChaosError",
    "ChaosConfig",
    "ChaosBackend",
    "InventoryChurner",
    "run_query_load",
    "check_slos",
    "SloReport",
]


class ChaosError(ServiceError):
    """The injected backend exception (distinguishable from real bugs)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Per-call fault probabilities for one wrapped backend."""

    error_prob: float = 0.0     # raise ChaosError instead of composing
    slow_prob: float = 0.0      # add slow_s of latency, then compose
    slow_s: float = 0.05
    stall_prob: float = 0.0     # hold the worker thread for stall_s
    stall_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("error_prob", "slow_prob", "stall_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")


class ChaosBackend:
    """A composer wrapper that misbehaves on a seeded schedule.

    Draw order per call is fixed (error, stall, slow), so a given seed
    produces the same fault sequence regardless of which query triggers
    which call.  ``calls``/``faults`` expose what actually happened.
    """

    def __init__(self, inner: Any, config: ChaosConfig, *, name: str = "chaos"):
        self.inner = inner
        self.config = config
        self.name = name
        self._rng = np.random.default_rng(derive_seed(config.seed, "chaos", name))
        self.calls = 0
        self.faults: Dict[str, int] = {"error": 0, "stall": 0, "slow": 0}

    def compose(self, requirements, candidates, topology):
        self.calls += 1
        cfg = self.config
        if cfg.error_prob and self._rng.random() < cfg.error_prob:
            self.faults["error"] += 1
            raise ChaosError(f"injected failure in {self.name} (call {self.calls})")
        if cfg.stall_prob and self._rng.random() < cfg.stall_prob:
            self.faults["stall"] += 1
            time.sleep(cfg.stall_s)
        elif cfg.slow_prob and self._rng.random() < cfg.slow_prob:
            self.faults["slow"] += 1
            time.sleep(cfg.slow_s)
        compose = self.inner.compose if hasattr(self.inner, "compose") else self.inner
        return compose(requirements, candidates, topology)


class InventoryChurner:
    """Background node churn against the live inventory, epoch by epoch.

    Each tick fails ``kill_fraction`` of the currently-up asset nodes,
    restores previously-failed ones after ``downtime_ticks`` ticks, and
    publishes a fresh snapshot epoch — queries admitted before the tick
    keep composing against their old epoch (that is the point).
    """

    def __init__(
        self,
        hub: SnapshotHub,
        *,
        kill_fraction: float = 0.05,
        downtime_ticks: int = 2,
        interval_s: float = 0.05,
        seed: int = 0,
    ):
        self.hub = hub
        self.kill_fraction = kill_fraction
        self.downtime_ticks = downtime_ticks
        self.interval_s = interval_s
        self._rng = np.random.default_rng(derive_seed(seed, "chaos", "churn"))
        self._downed: List[tuple] = []  # (node_id, restore_at_tick)
        self.ticks = 0
        self.kills = 0
        self.restores = 0
        self._task: Optional[asyncio.Task] = None
        self._stop = asyncio.Event()

    def tick(self) -> None:
        """One churn step (usable synchronously from tests)."""
        self.ticks += 1
        network = self.hub.network
        due = [entry for entry in self._downed if entry[1] <= self.ticks]
        self._downed = [e for e in self._downed if e[1] > self.ticks]
        for node_id, _ in due:
            network.restore_node(node_id)
            self.restores += 1
        up = [n.id for n in network.up_nodes()]
        n_kill = max(1, int(len(up) * self.kill_fraction)) if up else 0
        if n_kill and len(up) > n_kill:
            victims = self._rng.choice(up, size=n_kill, replace=False)
            for node_id in victims:
                network.fail_node(int(node_id))
                self.kills += 1
                self._downed.append((int(node_id), self.ticks + self.downtime_ticks))
        self.hub.publish()

    async def run(self, duration_s: float) -> None:
        deadline = time.monotonic() + duration_s
        while time.monotonic() < deadline and not self._stop.is_set():
            self.tick()
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=self.interval_s)
            except asyncio.TimeoutError:
                pass
        # Leave the world healed so later assertions see a recovered system.
        for node_id, _ in self._downed:
            self.hub.network.restore_node(node_id)
            self.restores += 1
        self._downed = []
        self.hub.publish()

    def start(self, duration_s: float) -> asyncio.Task:
        self._stop.clear()
        self._task = asyncio.get_running_loop().create_task(self.run(duration_s))
        return self._task

    async def stop(self) -> None:
        self._stop.set()
        if self._task is not None:
            await self._task
            self._task = None


async def run_query_load(
    service: SynthesisService,
    queries: Sequence[SynthesisQuery],
    *,
    concurrency: int = 64,
    hang_timeout_s: float = 30.0,
) -> List[QueryOutcome]:
    """Drive ``queries`` through the service, ``concurrency`` at a time.

    The gather itself runs under ``hang_timeout_s``: if the service ever
    hangs a query past deadline + grace, this raises instead of waiting
    forever — the chaos suite's no-hang backstop.
    """
    sem = asyncio.Semaphore(concurrency)

    async def one(q: SynthesisQuery) -> QueryOutcome:
        async with sem:
            return await service.submit(q)

    return await asyncio.wait_for(
        asyncio.gather(*(one(q) for q in queries)), timeout=hang_timeout_s
    )


@dataclass
class SloReport:
    """Verdict of one chaos run against the service-level objectives."""

    total: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    breaker_opened: bool = False
    breaker_reclosed: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = " ".join(f"{k}={v}" for k, v in sorted(self.by_status.items()))
        verdict = "PASS" if self.ok else "FAIL: " + "; ".join(self.violations)
        return f"queries={self.total} {status} [{verdict}]"


def check_slos(
    outcomes: Sequence[QueryOutcome],
    service: SynthesisService,
    *,
    require_breaker_cycle: bool = False,
    deadline_grace_s: Optional[float] = None,
) -> SloReport:
    """Assert the chaos-suite SLOs over a finished run.

    * every query reached a terminal outcome within deadline + grace;
    * rejections are typed (a reason string is always present);
    * degraded answers are flagged and carry staleness metadata;
    * optionally, some breaker provably opened *and* re-closed.
    """
    report = SloReport(total=len(outcomes))
    grace = (
        deadline_grace_s if deadline_grace_s is not None
        else service.deadline_grace_s
    )
    for i, out in enumerate(outcomes):
        report.by_status[out.status.value] = (
            report.by_status.get(out.status.value, 0) + 1
        )
        budget = out.query.deadline_s + grace + 0.5  # scheduling slop
        if out.elapsed_s > budget:
            report.violations.append(
                f"query {i}: elapsed {out.elapsed_s:.3f}s > budget {budget:.3f}s"
            )
        if out.status in (OutcomeStatus.REJECTED, OutcomeStatus.FAILED):
            if not out.reason:
                report.violations.append(f"query {i}: untyped {out.status.value}")
        if out.status is OutcomeStatus.DEGRADED:
            if not out.degraded:
                report.violations.append(f"query {i}: degraded answer not flagged")
            if out.stale_age_s is None:
                report.violations.append(f"query {i}: degraded without stale age")
        if out.ok and out.answer is None:
            report.violations.append(f"query {i}: ok outcome without an answer")
    for breaker in service.breakers.values():
        states = [new for _t, _old, new in breaker.transitions]
        if BreakerState.OPEN.value in states:
            report.breaker_opened = True
            after_open = states[states.index(BreakerState.OPEN.value):]
            if BreakerState.CLOSED.value in after_open:
                report.breaker_reclosed = True
    if require_breaker_cycle:
        if not report.breaker_opened:
            report.violations.append("no breaker ever opened under chaos")
        elif not report.breaker_reclosed:
            report.violations.append("breaker opened but never re-closed")
    return report
