"""Per-backend circuit breaker: closed / open / half-open.

The breaker sits between the synthesis service and one backend (a composer
or the inventory path).  It watches a sliding window of call outcomes;
when the windowed failure rate crosses the threshold the breaker *opens*
and the service stops sending live traffic to that backend (queries fall
through to the degraded path instead of queueing behind a sick backend).
After ``open_s`` the breaker moves to *half-open* and admits a bounded
number of probe calls: enough consecutive successes re-close it, any
probe failure re-opens it and restarts the cooldown.

The clock is injectable so tests drive state transitions without real
sleeping; transitions are counted and optionally reported through
``on_transition`` (the service feeds them into its metrics registry).
"""

from __future__ import annotations

import time
from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ServiceError

__all__ = ["BreakerState", "BreakerOpen", "CircuitBreaker"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerOpen(ServiceError):
    """Raised (or reported) when a call is refused by an open breaker."""

    def __init__(self, name: str, retry_in_s: float):
        super().__init__(f"circuit breaker {name!r} is open (retry in {retry_in_s:.2f}s)")
        self.name = name
        self.retry_in_s = retry_in_s


class CircuitBreaker:
    """Failure-rate-windowed breaker guarding one backend.

    Parameters
    ----------
    window:
        Number of most-recent call outcomes considered.
    failure_threshold:
        Open when ``failures / len(window) >= failure_threshold`` (and at
        least ``min_calls`` outcomes have been observed).
    min_calls:
        Minimum outcomes in the window before the rate is trusted — a
        single failed first call must not open the breaker.
    open_s:
        Cooldown before an open breaker lets probes through.
    half_open_probes:
        Probes admitted in half-open; that many consecutive successes
        close the breaker, any failure re-opens it.
    """

    def __init__(
        self,
        name: str = "backend",
        *,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        open_s: float = 1.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, BreakerState, BreakerState], None]] = None,
    ):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not (0.0 < failure_threshold <= 1.0):
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        if min_calls < 1:
            raise ConfigurationError("min_calls must be >= 1")
        if open_s <= 0:
            raise ConfigurationError("open_s must be positive")
        if half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.open_s = open_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.transitions: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------ state

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def retry_in_s(self) -> float:
        """Seconds until an open breaker will admit probes (0 otherwise)."""
        if self._state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.open_s - self._clock())

    def _transition(self, new: BreakerState) -> None:
        old = self._state
        if old is new:
            return
        self._state = new
        self.transitions.append((self._clock(), old.value, new.value))
        if self._on_transition is not None:
            self._on_transition(self.name, old, new)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.open_s
        ):
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._transition(BreakerState.HALF_OPEN)

    # ------------------------------------------------------------------ calls

    def allow(self) -> bool:
        """May a call proceed right now?  (May transition open → half-open.)"""
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False
        return False

    def record_success(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._outcomes.clear()
                self._transition(BreakerState.CLOSED)
            return
        self._outcomes.append(False)

    def record_failure(self) -> None:
        self._maybe_half_open()
        now = self._clock()
        if self._state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately and restarts the cooldown.
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._opened_at = now
            self._transition(BreakerState.OPEN)
            return
        self._outcomes.append(True)
        if (
            self._state is BreakerState.CLOSED
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate() >= self.failure_threshold
        ):
            self._opened_at = now
            self._transition(BreakerState.OPEN)

    # -------------------------------------------------------------- reporting

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "state": self.state.value,
            "failure_rate": self.failure_rate(),
            "window_fill": len(self._outcomes),
            "transitions": len(self.transitions),
            "retry_in_s": self.retry_in_s(),
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self._state.value}, "
            f"rate={self.failure_rate():.2f})"
        )
