"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.event.Event`
objects; the kernel resumes it when the yielded event fires.  This mirrors
the structure of SimPy-style models while remaining a few hundred lines and
fully deterministic.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from repro.errors import SimulationError
from repro.sim.event import Event

__all__ = ["Process", "Timeout", "Waiting", "AllOf"]


class Timeout:
    """Declarative alternative to ``sim.timeout`` inside process bodies.

    ``yield Timeout(3.0)`` is equivalent to ``yield sim.timeout(3.0)`` but
    does not require the process body to hold a simulator reference.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class AllOf:
    """Wait for every event in a collection: ``yield AllOf([e1, e2])``.

    The process resumes once all events fired; the yielded value is the list
    of their values in input order.
    """

    __slots__ = ("events",)

    def __init__(self, events: Sequence[Event]):
        self.events = list(events)


class Waiting:
    """Sentinel yielded by processes that park until externally resumed."""

    __slots__ = ()


_WAITING = Waiting()


class Process:
    """Drives a generator, waking it as the events it yields fire."""

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        generator: Generator[Any, Any, Any],
        name: str = "proc",
    ):
        self.sim = sim
        self.name = name
        self._gen = generator
        self._done = False
        self._parked = False
        self.result: Any = None
        self.done_event: Event = sim.event(name=f"{name}.done")
        # Kick off on a zero-delay event so spawning inside a callback is safe.
        start = sim.schedule(0.0)
        if sim.profiler is not None:
            start.name = f"proc:{name}"
        start.add_callback(lambda _ev: self._resume(None))

    @property
    def done(self) -> bool:
        return self._done

    @property
    def parked(self) -> bool:
        return self._parked

    def interrupt(self, value: Any = None) -> None:
        """Resume a parked process immediately with ``value``."""
        if self._done:
            return
        if not self._parked:
            raise SimulationError(f"{self.name} is not parked")
        self._parked = False
        self._resume(value)

    def _resume(self, value: Any) -> None:
        if self._done:
            return
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            ev = self.sim.timeout(target.delay, value=target.value)
            if self.sim.profiler is not None and not ev.name:
                # Attribute the wake-up to this process, not "<anonymous>".
                ev.name = f"proc:{self.name}"
            ev.add_callback(lambda e: self._resume(e.value))
        elif isinstance(target, AllOf):
            self._wait_all(target.events)
        elif isinstance(target, Waiting):
            self._parked = True
        elif isinstance(target, Event):
            target.add_callback(lambda e: self._resume(e.value))
        elif isinstance(target, Process):
            target.done_event.add_callback(lambda e: self._resume(e.value))
        else:
            raise SimulationError(
                f"{self.name} yielded unsupported object {target!r}"
            )

    def _wait_all(self, events: List[Event]) -> None:
        remaining = {id(ev) for ev in events if not ev.fired}
        if not remaining:
            self._resume([ev.value for ev in events])
            return

        def on_fire(ev: Event) -> None:
            remaining.discard(id(ev))
            if not remaining:
                self._resume([e.value for e in events])

        for ev in events:
            if not ev.fired:
                ev.add_callback(on_fire)

    def _finish(self, value: Any) -> None:
        self._done = True
        self.result = value
        self.done_event.succeed(value)

    def __repr__(self) -> str:
        state = "done" if self._done else "parked" if self._parked else "running"
        return f"Process({self.name}, {state})"
