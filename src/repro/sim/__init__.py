"""Discrete-event simulation kernel.

A small, deterministic DES engine: a priority-queue scheduler
(:class:`Simulator`), generator-based processes (:class:`Process`), and
metric/trace recording (:class:`MetricRecorder`, :class:`TraceLog`).
All higher layers (network, assets, services) run on this kernel.
"""

from repro.sim.event import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout, Waiting, AllOf
from repro.sim.metrics import MetricRecorder, TimeSeries
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timeout",
    "Waiting",
    "AllOf",
    "MetricRecorder",
    "TimeSeries",
    "TraceLog",
    "TraceRecord",
]
