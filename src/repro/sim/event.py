"""Simulation events.

An :class:`Event` is a one-shot occurrence at a virtual time.  Callbacks may
be attached before or after scheduling; events may be cancelled.  Ordering is
``(time, priority, sequence)`` so simultaneous events fire in a deterministic,
insertion-stable order.

The kernel's calendar queue stores lean ``(time, priority, seq, payload)``
tuples rather than Event objects, so :meth:`Event.__lt__` is off the hot
path — it is kept because user code sorts Events directly (and it defines
the ordering contract the tuples reproduce).  Packet completions that are
never waited on or cancelled skip Event entirely via
``Simulator.call_in_fast``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["Event"]


class Event:
    """A schedulable occurrence in virtual time.

    Events move through three states: *pending* (created, maybe scheduled),
    *fired* (callbacks ran, ``value`` set), *cancelled*.  Processes can wait
    on events; the kernel resumes them when the event fires.
    """

    __slots__ = (
        "sim",
        "time",
        "priority",
        "seq",
        "value",
        "_callbacks",
        "_fired",
        "_cancelled",
        "name",
    )

    def __init__(self, sim: "Simulator", name: str = ""):  # noqa: F821
        self.sim = sim
        self.name = name
        self.time: Optional[float] = None
        self.priority = 0
        self.seq = -1
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self._fired = False
        self._cancelled = False

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        return not self._fired and not self._cancelled

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach ``fn`` to run when the event fires.

        If the event already fired, ``fn`` runs immediately (same semantics
        as attaching to a resolved future).
        """
        if self._fired:
            fn(self)
        elif not self._cancelled:
            self._callbacks.append(fn)

    def cancel(self) -> None:
        """Cancel a pending event; firing becomes a no-op."""
        if not self._fired:
            self._cancelled = True
            self._callbacks.clear()

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event immediately (now), outside the scheduler queue."""
        self._fire(value)
        return self

    def _fire(self, value: Any = None) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else "fired" if self._fired else "pending"
        )
        return f"Event({self.name or hex(id(self))}, t={self.time}, {state})"
