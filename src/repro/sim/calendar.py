"""A slotted calendar event queue for the kernel hot path.

The classic discrete-event queue is a binary heap; ours held rich
:class:`~repro.sim.event.Event` objects whose ``__lt__`` runs in Python, so
every sift paid interpreter-level comparisons and tuple allocations.  The
:class:`CalendarQueue` below replaces it with the calendar-queue family of
structures (Brown 1988): virtual time is divided into fixed-width *slots*,
each slot owning one unsorted bucket.  Pushes append into the bucket of the
entry's slot in O(1); pops sort the earliest non-empty bucket once (C-level
``list.sort`` on lean tuples) and then walk it with an index cursor.  A
small heap of occupied slot indices — thousands of times smaller than the
entry count — finds the next non-empty bucket without scanning empty years.

Entries are **lean tuples** ``(time, priority, seq, payload)``.  Tuple
comparison in C reproduces the kernel's historical stable ordering exactly
— time, then priority, then insertion sequence — and ``seq`` is unique so
payloads are never compared.  The payload is either a rich ``Event`` (the
process/timer API) or a bare callable (the packet fast lane, see
``Simulator.call_in_fast``).

The slot width adapts to the workload: when the average bucket occupancy
drifts outside ``[1, 2 * TARGET_OCCUPANCY]`` at a resize checkpoint, the
queue samples the pending inter-event gaps and rebuilds with a width that
puts ~``TARGET_OCCUPANCY`` entries in a bucket.  Resizes preserve ordering
trivially (entries carry their full sort key) and amortize to O(1) per
operation.
"""

from __future__ import annotations

import heapq
from math import floor
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["CalendarQueue"]

#: One queue entry: ``(time, priority, seq, payload)``.
Entry = Tuple[float, int, int, Any]

#: Aim for this many entries per bucket after a resize.
TARGET_OCCUPANCY = 8

#: Re-examine the width when the size crosses these growth factors.
_RESIZE_GROW = 2.0
_RESIZE_SHRINK = 0.5

#: How many pending entries to sample when estimating a new slot width.
_WIDTH_SAMPLE = 64


class CalendarQueue:
    """Slotted calendar queue over lean ``(time, priority, seq, payload)``
    tuples with exact, stable heap-order semantics.

    >>> q = CalendarQueue()
    >>> q.push((2.0, 0, 1, "b")); q.push((1.0, 0, 0, "a"))
    >>> q.pop()
    (1.0, 0, 0, 'a')
    >>> q.peek_time()
    2.0
    """

    __slots__ = (
        "_width",
        "_buckets",
        "_slot_heap",
        "_cur_slot",
        "_cur_bucket",
        "_cur_index",
        "_size",
        "_resize_at",
        "_shrink_at",
        "_last_time",
    )

    def __init__(self, width: float = 1.0):
        if width <= 0:
            raise ValueError(f"slot width must be positive, got {width}")
        self._width = float(width)
        # slot index -> unsorted bucket list (never the current one).
        self._buckets: dict[int, List[Entry]] = {}
        # Min-heap of occupied slot indices (lazy deletion on pop).
        self._slot_heap: List[int] = []
        # The bucket currently being drained, sorted, with a read cursor.
        self._cur_slot: Optional[int] = None
        self._cur_bucket: List[Entry] = []
        self._cur_index = 0
        self._size = 0
        self._resize_at = TARGET_OCCUPANCY * 4
        self._shrink_at = 0
        # Monotone floor for pushes into the drained region (diagnostics).
        self._last_time = 0.0

    # ------------------------------------------------------------------ sizes

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def width(self) -> float:
        """Current slot width in virtual-time units (for tests/telemetry)."""
        return self._width

    # ------------------------------------------------------------------- push

    def push(self, entry: Entry) -> None:
        """Insert an entry; O(1) amortized."""
        slot = floor(entry[0] / self._width)
        cur = self._cur_slot
        if cur is not None and slot <= cur:
            # Landing in (or before) the bucket being drained — the latter
            # happens when a peek advanced the cursor and a later push
            # targets an earlier slot.  Keep the drained prefix intact and
            # insert in sorted position within the remainder.
            bucket = self._cur_bucket
            lo, hi = self._cur_index, len(bucket)
            while lo < hi:
                mid = (lo + hi) // 2
                if bucket[mid] < entry:
                    lo = mid + 1
                else:
                    hi = mid
            bucket.insert(lo, entry)
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)
        self._size += 1
        if self._size >= self._resize_at:
            self._maybe_resize()

    # -------------------------------------------------------------------- pop

    def _advance(self) -> bool:
        """Load the earliest occupied slot as the current bucket."""
        buckets = self._buckets
        heap = self._slot_heap
        while heap:
            slot = heapq.heappop(heap)
            bucket = buckets.pop(slot, None)
            if bucket:
                bucket.sort()
                self._cur_slot = slot
                self._cur_bucket = bucket
                self._cur_index = 0
                return True
        self._cur_slot = None
        self._cur_bucket = []
        self._cur_index = 0
        return False

    def pop(self) -> Optional[Entry]:
        """Remove and return the least entry, or ``None`` when empty."""
        if self._cur_index >= len(self._cur_bucket):
            self._cur_slot = None
            if not self._advance():
                return None
        entry = self._cur_bucket[self._cur_index]
        self._cur_index += 1
        self._size -= 1
        self._last_time = entry[0]
        if self._cur_index >= len(self._cur_bucket):
            # Bucket drained: drop it so its memory is reclaimed promptly.
            self._cur_slot = None
            self._cur_bucket = []
            self._cur_index = 0
        if self._size <= self._shrink_at:
            self._maybe_resize()
        return entry

    def peek_time(self) -> Optional[float]:
        """Earliest pending time without removing it, or ``None``."""
        if self._cur_index < len(self._cur_bucket):
            return self._cur_bucket[self._cur_index][0]
        if not self._advance():
            return None
        return self._cur_bucket[0][0]

    # ------------------------------------------------------------- iteration

    def __iter__(self) -> Iterator[Entry]:
        """All pending entries, in no particular order."""
        yield from self._cur_bucket[self._cur_index :]
        for bucket in self._buckets.values():
            yield from bucket

    # --------------------------------------------------------------- resizing

    def _maybe_resize(self) -> None:
        """Adapt the slot width to keep bucket occupancy near the target.

        Triggered on size-threshold crossings; estimates the mean gap
        between pending event times from a sample and rebuilds so one
        bucket spans ~``TARGET_OCCUPANCY`` events.  Cheap relative to the
        growth that triggered it, and a no-op when the width is already
        within 2x of the estimate.
        """
        size = self._size
        self._resize_at = max(int(size * _RESIZE_GROW), TARGET_OCCUPANCY * 4)
        self._shrink_at = int(size * _RESIZE_SHRINK) if size > TARGET_OCCUPANCY * 8 else 0
        if size < 2:
            return
        times = sorted(entry[0] for _, entry in zip(range(_WIDTH_SAMPLE), self))
        span = times[-1] - times[0]
        if span <= 0.0:
            return  # all sampled events simultaneous: width is irrelevant
        new_width = span / max(len(times) - 1, 1) * TARGET_OCCUPANCY
        if new_width <= 0.0 or 0.5 <= new_width / self._width <= 2.0:
            return
        entries = list(self)
        self._width = new_width
        self._buckets.clear()
        self._slot_heap.clear()
        self._cur_slot = None
        self._cur_bucket = []
        self._cur_index = 0
        width = self._width
        buckets = self._buckets
        for entry in entries:
            slot = floor(entry[0] / width)
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)

    def __repr__(self) -> str:
        return (
            f"CalendarQueue(size={self._size}, width={self._width:.6g}, "
            f"buckets={len(self._buckets) + bool(self._cur_bucket)})"
        )
