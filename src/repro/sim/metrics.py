"""Metric recording for simulation runs.

Two flavors:

* :class:`TimeSeries` — timestamped samples of a named quantity.
* Counters — monotone event counts.

The :class:`MetricRecorder` is attached to each :class:`Simulator` and
timestamps samples with the virtual clock automatically.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.util.stats import RunningStats, summarize

__all__ = ["TimeSeries", "MetricRecorder"]


class TimeSeries:
    """Timestamped samples of one quantity, kept in arrival order.

    Simulation time is nondecreasing, so arrival order equals time order.
    """

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.stats = RunningStats()

    def add(self, time: float, value: float) -> None:
        self.times.append(float(time))
        self.values.append(float(value))
        self.stats.add(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window(
        self, t_start: float, t_end: float, *, include_end: bool = False
    ) -> List[float]:
        """Values sampled in ``[t_start, t_end)`` (or ``[t_start, t_end]``).

        Half-open by default, so adjacent windows tile without double
        counting even when samples share timestamps: the end bound uses
        ``bisect_left`` (samples *at* ``t_end`` belong to the next
        window).  ``include_end=True`` switches the end bound to
        ``bisect_right`` for a closed interval — the right call when the
        window edge is the run horizon and the final samples land exactly
        on it.  An inverted window (``t_end < t_start``) is empty.
        """
        lo = bisect.bisect_left(self.times, t_start)
        if include_end:
            hi = bisect.bisect_right(self.times, t_end)
        else:
            hi = bisect.bisect_left(self.times, t_end)
        return self.values[lo:hi] if hi > lo else []

    def time_average(self, horizon: Optional[float] = None) -> float:
        """Piecewise-constant time average (sample-and-hold).

        Treats each sample as holding until the next one; the final sample
        holds until ``horizon`` (defaults to the last sample time, in which
        case the final sample gets zero weight unless it is the only one).
        """
        if not self.values:
            return float("nan")
        if len(self.values) == 1:
            return self.values[0]
        end = horizon if horizon is not None else self.times[-1]
        total = 0.0
        span = 0.0
        for i in range(len(self.values)):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else max(end, t0)
            dt = max(0.0, t1 - t0)
            total += self.values[i] * dt
            span += dt
        return total / span if span > 0 else self.values[-1]

    def summary(self) -> Dict[str, float]:
        return summarize(self.values)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, n={len(self)})"


class MetricRecorder:
    """Holds all metrics of one simulation run, keyed by name."""

    def __init__(self, sim: "Simulator"):  # noqa: F821
        self._sim = sim
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, float] = {}

    # ------------------------------------------------------------- time series

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def sample(self, name: str, value: float) -> None:
        """Record ``value`` for series ``name`` at the current virtual time."""
        self.series(name).add(self._sim.now, value)

    def has_series(self, name: str) -> bool:
        return name in self._series

    def series_names(self) -> List[str]:
        return sorted(self._series)

    # ---------------------------------------------------------------- counters

    def incr(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Summaries of every series plus all counters (for reports)."""
        out: Dict[str, Dict[str, float]] = {
            name: ts.summary() for name, ts in self._series.items()
        }
        for name, val in self._counters.items():
            out[f"counter:{name}"] = {"value": val}
        return out
