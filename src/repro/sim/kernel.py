"""The discrete-event scheduler.

:class:`Simulator` owns the virtual clock, the event queue, the RNG streams
for the run, and the metric/trace recorders.  The queue is a slotted
:class:`~repro.sim.calendar.CalendarQueue` of lean ``(time, priority, seq,
payload)`` tuples with the same stable ordering the old binary heap had.
Payloads come in two shapes:

* a rich :class:`~repro.sim.event.Event` — the cancellable, waitable object
  the process/timer API is built on; and
* a bare callable — the **fast lane** (:meth:`Simulator.call_in_fast`) used
  by the per-packet hot path, which skips the Event allocation, the
  callback list, and the two closure objects ``call_in`` needs.

Both lanes share one sequence counter, so interleaved scheduling keeps the
historical fire order exactly; fast-lane firings count toward
:attr:`Simulator.events_processed` (and the separate
:attr:`Simulator.events_fast` tally) so telemetry, manifests, and
events/sec never lose them.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import SimulationError
from repro.obs.profiler import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanTracker
from repro.sim.calendar import CalendarQueue
from repro.sim.event import Event
from repro.sim.metrics import MetricRecorder
from repro.sim.trace import TraceLog
from repro.util.rng import RngStreams

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all RNG streams used by components in this run.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> hits = []
    >>> def proc(sim):
    ...     yield sim.timeout(5.0)
    ...     hits.append(sim.now)
    >>> _ = sim.spawn(proc(sim))
    >>> sim.run(until=10.0)
    >>> hits
    [5.0]
    """

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.rng = RngStreams(seed)
        self.metrics = MetricRecorder(self)
        self.trace = TraceLog(self)
        self.spans = SpanTracker(self)
        self.registry = MetricsRegistry()
        #: Opt-in kernel profiler; ``None`` keeps the hot loop unchanged.
        self.profiler: Optional[KernelProfiler] = None
        #: Opt-in causal packet tracer (see :mod:`repro.obs.tracing`);
        #: ``None`` keeps every transmit path unchanged.
        self.packet_tracer: Optional[Any] = None
        #: When set (``REPRO_OBS_RING_DIR``), :meth:`export_obs` also dumps
        #: the trace as a binary ``.ring`` file at this path.
        self.ring_dump_path: Optional[str] = None
        #: Provenance facts for :mod:`repro.obs.forensics` RunManifests:
        #: builders stamp ``content_hashes`` (name -> digest of the spec
        #: that shaped this run) and, when the whole world is rebuildable
        #: from a declarative spec, a ``scenario`` replay payload.
        self.provenance: Dict[str, Any] = {}
        #: Periodic ``(time, per-stream draw counts)`` checkpoints captured
        #: by :meth:`enable_rng_checkpoints`; manifests embed them so
        #: ``python -m repro.obs replay --from T`` can window its asserts.
        self.rng_checkpoints: List[Dict[str, Any]] = []
        self.rng_checkpoint_interval_s: Optional[float] = None
        #: Events fired and wall-clock seconds spent across all run() calls.
        self.events_processed = 0
        #: Of :attr:`events_processed`, how many fired through the packet
        #: fast lane (:meth:`call_in_fast`) — a subset, not an addition.
        self.events_fast = 0
        self.wall_elapsed = 0.0
        self._queue = CalendarQueue()
        self._seq = 0
        self._running = False
        self._process_count = 0

    # ------------------------------------------------------------------ events

    def event(self, name: str = "") -> Event:
        """Create an unscheduled event owned by this simulator."""
        return Event(self, name=name)

    def schedule(
        self, delay: float, event: Optional[Event] = None, priority: int = 0
    ) -> Event:
        """Schedule ``event`` (or a fresh one) to fire ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        ev = event if event is not None else self.event()
        if not ev.pending:
            raise SimulationError(f"cannot schedule non-pending event {ev!r}")
        ev.time = self.now + delay
        ev.priority = priority
        seq = self._seq
        self._seq = seq + 1
        ev.seq = seq
        self._queue.push((ev.time, priority, seq, ev))
        return ev

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` time units from now."""
        ev = self.schedule(delay)
        ev.value = value
        return ev

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"call_at({time}) is in the past (now={self.now})")
        ev = self.schedule(time - self.now)
        if self.profiler is not None:
            ev.name = getattr(fn, "__qualname__", "") or repr(fn)
        ev.add_callback(lambda _ev: fn())
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` time units."""
        ev = self.schedule(delay)
        if self.profiler is not None:
            ev.name = getattr(fn, "__qualname__", "") or repr(fn)
        ev.add_callback(lambda _ev: fn())
        return ev

    def call_in_fast(self, delay: float, fn: Callable[[], None], priority: int = 0) -> None:
        """Fast-lane ``call_in``: run ``fn()`` after ``delay``, no Event.

        The packet hot path schedules completions that are never waited on
        and never cancelled; for those this skips the Event object, its
        callback list, and both closures — one tuple is the entire cost.
        Ordering is identical to :meth:`call_in` (both lanes consume the
        same sequence counter).  Use :meth:`call_in` whenever the caller
        might cancel or wait on the result.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._queue.push((self.now + delay, priority, seq, fn))

    def every(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Run ``fn()`` periodically every ``interval`` time units.

        The recurrence stops when the simulation horizon is reached or when
        ``until`` (absolute time) passes.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")

        first = interval if start_delay is None else start_delay

        def tick() -> None:
            if until is not None and self.now > until:
                return
            fn()
            self.call_in(interval, tick)

        self.call_in(first, tick)

    # --------------------------------------------------------------- processes

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> "Process":  # noqa: F821
        """Start a generator-based process; returns its Process handle."""
        from repro.sim.process import Process

        self._process_count += 1
        return Process(self, generator, name=name or f"proc-{self._process_count}")

    # ----------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next event.  Returns False when queue is empty."""
        queue = self._queue
        while True:
            entry = queue.pop()
            if entry is None:
                return False
            payload = entry[3]
            is_event = isinstance(payload, Event)
            if is_event and payload._cancelled:
                continue
            time = entry[0]
            if time < self.now:  # pragma: no cover - guarded by schedule()
                raise SimulationError("event queue corrupted: time went backward")
            self.now = time
            self.events_processed += 1
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                # Label before firing: _fire clears the callback list.
                if is_event:
                    label = profiler.label_of(payload)
                    t0 = perf_counter()
                    payload._fire(payload.value)
                else:
                    self.events_fast += 1
                    label = getattr(payload, "__qualname__", "") or repr(payload)
                    t0 = perf_counter()
                    payload()
                profiler.record(label, perf_counter() - t0)
            elif is_event:
                payload._fire(payload.value)
            else:
                self.events_fast += 1
                payload()
            return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget ends.

        ``until`` is an absolute virtual time; the clock is advanced to it
        even if the queue drains earlier, so periodic metrics cover the full
        horizon.  Wall-clock spent and events fired accumulate on
        :attr:`wall_elapsed` / :attr:`events_processed` across calls, so
        every harness gets an events/sec figure for free.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        t_wall = perf_counter()
        queue = self._queue
        # The loop below is step() unrolled: popping directly (instead of
        # peek-then-step) saves a bucket inspection and a method call per
        # event, which is measurable at millions of events.  An entry past
        # the horizon is pushed back so a later run() call sees it first.
        pop = queue.pop
        try:
            fired = 0
            while True:
                entry = pop()
                if entry is None:
                    break
                time = entry[0]
                if until is not None and time > until:
                    queue.push(entry)
                    break
                payload = entry[3]
                if isinstance(payload, Event):
                    if payload._cancelled:
                        continue
                    if time < self.now:  # pragma: no cover - schedule() guards
                        raise SimulationError(
                            "event queue corrupted: time went backward"
                        )
                    self.now = time
                    self.events_processed += 1
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        label = profiler.label_of(payload)
                        t0 = perf_counter()
                        payload._fire(payload.value)
                        profiler.record(label, perf_counter() - t0)
                    else:
                        payload._fire(payload.value)
                else:
                    if time < self.now:  # pragma: no cover - schedule() guards
                        raise SimulationError(
                            "event queue corrupted: time went backward"
                        )
                    self.now = time
                    self.events_processed += 1
                    self.events_fast += 1
                    profiler = self.profiler
                    if profiler is not None and profiler.enabled:
                        label = getattr(payload, "__qualname__", "") or repr(payload)
                        t0 = perf_counter()
                        payload()
                        profiler.record(label, perf_counter() - t0)
                    else:
                        payload()
                fired += 1
                if fired >= max_events:
                    raise SimulationError(
                        f"event budget exhausted ({max_events} events)"
                    )
            if until is not None and self.now < until:
                self.now = until
        finally:
            self.wall_elapsed += perf_counter() - t_wall
            self._running = False

    @property
    def queue_length(self) -> int:
        return sum(
            1
            for entry in self._queue
            if not (isinstance(entry[3], Event) and entry[3].cancelled)
        )

    # ----------------------------------------------------------- observability

    @property
    def events_per_sec(self) -> float:
        """Kernel throughput across all :meth:`run` calls so far.

        Counts both lanes — rich Events and fast-lane callables — since
        :meth:`step` tallies them on the same counter.  Degenerate clocks
        (a zero-work run, a coarse timer rounding wall time to ~0, or a
        poisoned ``wall_elapsed``) yield ``0.0`` rather than letting
        ``inf``/``nan`` leak into exported telemetry JSON.
        """
        if not math.isfinite(self.wall_elapsed) or self.wall_elapsed < 1e-9:
            return 0.0
        rate = self.events_processed / self.wall_elapsed
        return rate if math.isfinite(rate) else 0.0

    def span(self, name: str, *, scope: str = "main", **attrs: Any) -> Span:
        """Open a hierarchical span (see :mod:`repro.obs.spans`):

        >>> sim = Simulator()
        >>> with sim.span("synthesis", assets=3):
        ...     pass
        >>> sim.spans.finished[0].name
        'synthesis'
        """
        return self.spans.span(name, scope=scope, **attrs)

    def enable_profiling(self) -> KernelProfiler:
        """Attach (or return the existing) kernel profiler."""
        if self.profiler is None:
            self.profiler = KernelProfiler()
        return self.profiler

    def enable_packet_tracing(self):
        """Attach (or return the existing) causal packet tracer.

        Networks bound to this simulator start stamping
        :class:`~repro.obs.tracing.TraceContext` headers and emitting
        per-hop ``pkt.*`` events; ``python -m repro.obs trace``
        reconstructs latency attributions from the export.
        """
        if self.packet_tracer is None:
            # Imported lazily: obs.tracing is pure but keeping the kernel's
            # import surface minimal keeps cold-start cheap.
            from repro.obs.tracing import PacketTracer

            self.packet_tracer = PacketTracer(self)
        self.packet_tracer.enabled = True
        return self.packet_tracer

    def enable_rng_checkpoints(self, interval_s: float) -> None:
        """Capture per-stream RNG draw counts every ``interval_s``.

        The checkpoint callback draws no randomness and emits no trace
        records, so enabling it never perturbs the simulated world — it
        only reads generator states (via the PCG64 distance walk in
        :mod:`repro.util.rng`).  Checkpoints land on
        :attr:`rng_checkpoints` and travel in RunManifests, giving replay
        a first-divergence bisector over time.
        """
        self.rng_checkpoint_interval_s = interval_s

        def checkpoint() -> None:
            self.rng_checkpoints.append(
                {"time": self.now, "draws": self.rng.draw_counts()}
            )

        self.every(interval_s, checkpoint)

    def export_obs(self) -> None:
        """Push profiler rows, registry state, and run counters to the
        trace sinks, then flush them.

        Spans and trace events stream as they happen; this exports the
        cumulative state (safe to call more than once — reports take each
        profile label's latest totals).
        """
        aux: List[Dict[str, Any]] = [
            {
                "type": "meta",
                "event": "export",
                "sim_now": self.now,
                "events_processed": self.events_processed,
                "events_fast": self.events_fast,
                "wall_elapsed_s": self.wall_elapsed,
                "events_per_sec": self.events_per_sec,
            }
        ]
        if self.profiler is not None:
            aux.extend(self.profiler.as_records())
        aux.extend(self.registry.as_records())
        for name, value in self.metrics.counters().items():
            aux.append(
                {"type": "metric", "kind": "counter", "name": name, "value": value}
            )
        write = self.trace.write_record
        for record in aux:
            write(record)
        self.trace.flush_sinks()
        if self.ring_dump_path is not None:
            self.trace.dump_ring(self.ring_dump_path, aux_records=aux)
        self._stamp_manifests()

    def _stamp_manifests(self) -> None:
        """Write a RunManifest next to every file export of this run.

        Each ``<export>.manifest.json`` records the provenance needed to
        reproduce and audit the export (seed, content hashes, RNG stream
        states, env knobs — see :mod:`repro.obs.forensics`).  Imported
        lazily: runs without file sinks never load the forensics layer.
        """
        paths = [
            sink_path
            for sink_path in (
                getattr(sink, "path", None) for sink in self.trace.sinks
            )
            if sink_path
        ]
        if self.ring_dump_path is not None:
            paths.append(self.ring_dump_path)
        if not paths:
            return
        from repro.obs.forensics import manifest_for_sim, manifest_path, write_manifest

        manifest = manifest_for_sim(self, exports=paths)
        for path in paths:
            write_manifest(manifest, manifest_path(path))

    def __repr__(self) -> str:
        return f"Simulator(now={self.now:.3f}, queued={self.queue_length})"
