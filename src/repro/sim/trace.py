"""Structured event tracing.

A :class:`TraceLog` records ``(time, category, fields)`` tuples.  Traces are
how integration tests assert on *sequences* of behavior (e.g., "the reflex
fired before re-synthesis was requested") and how determinism is verified
across runs.

Since the telemetry-plane rework the log is **lazy** on its hot path: when
no live listener or eager sink is attached, ``emit`` appends one staging
tuple and returns — no dict, no sort, no dataclass.  Staged entries are
compacted into a struct-packed :class:`~repro.obs.telemetry.BinaryTraceRing`
at flush points (or past a watermark) and decoded back into
:class:`TraceRecord` objects only when :attr:`records` is actually read.
Decoded records are bit-identical to eagerly-built ones, so fingerprints
do not depend on which path a run took.  Attaching a listener or an eager
sink switches emission back to the legacy per-record path; lazily-attached
sinks (``add_sink(sink, lazy=True)``) instead drain at flush time, keeping
the hot path untaxed.
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.telemetry import BinaryTraceRing, RecordSchema

__all__ = ["TraceRecord", "TraceLog"]

logger = logging.getLogger("repro.obs")

#: Staged entries past this count are compacted into the binary ring from
#: inside ``emit`` — a memory backstop; flush points compact much earlier
#: in any instrumented run.  Large enough that benchmark cells never pay
#: compaction inside the timed window.
COMPACT_WATERMARK = 262_144


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time": self.time, "category": self.category}
        out.update(dict(self.fields))
        return out


class TraceLog:
    """Append-only trace attached to a simulator.

    Tracing is enabled by default but can be capped or disabled for very
    large runs.  The in-memory record store is bounded by ``max_records``
    — but hitting the cap no longer loses data silently: overflow is
    counted on :attr:`dropped`, warned about once, and every record
    (retained or not) still reaches the live listeners and any attached
    streaming sinks (:mod:`repro.obs.sinks`), so a rotated NDJSON export
    keeps the full stream.
    """

    def __init__(self, sim: "Simulator", max_records: int = 1_000_000):  # noqa: F821
        self._sim = sim
        self._enabled = True
        self._max_records = max_records
        #: Records not retained in memory because ``max_records`` was hit.
        self.dropped = 0
        self._warned_capped = False
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._sinks: List[Any] = []
        self._lazy_sinks: List[Any] = []
        # True while any listener or eager sink is attached — flips emission
        # back to the legacy per-record path.
        self._eager = False
        # --- lazy store: packed prefix + staged tail + decode cache -------
        self._ring = BinaryTraceRing()
        # Ring evictions already accounted for (counter + cache shift).
        self._ring_base = 0
        self._warned_evicted = False
        # Tail entries: TraceRecord (eager path), (time, category, fields)
        # 3-tuples (generic emit), or flat (time, schema, *values) tuples
        # (schema emit) — one allocation per staged record.
        self._tail: List[Any] = []
        # Bound append, saving a lookup per staged record; `_tail` is only
        # ever cleared in place, never rebound, so the binding stays valid.
        self._stage = self._tail.append
        # Decoded prefix of the stream; extended on demand by `records`.
        self._cache: List[TraceRecord] = []
        # Trace records already written to lazy sinks.
        self._drained = 0
        # --- fused hot-path guard ------------------------------------------
        # `_budget` is how many records the staging path may still append
        # before anything else needs to happen: it is zero when disabled or
        # in eager mode, and otherwise counts down to the nearer of the
        # memory cap and the compaction watermark.  One int read and one
        # write replace four attribute reads per record; every state change
        # that could affect it goes through `_refresh_guards`.
        self._compact_at = COMPACT_WATERMARK
        self._budget = 0
        self._refresh_guards()

    # --------------------------------------------------------- guard plumbing

    @property
    def _n(self) -> int:
        """Retained record count (ring + tail) — the logical stream length."""
        return len(self._ring) + len(self._tail)

    def _refresh_guards(self) -> None:
        if self._enabled and not self._eager:
            limit = min(self._max_records, self._compact_at)
            self._budget = max(0, limit - self._n)
        else:
            self._budget = 0

    @property
    def enabled(self) -> bool:
        """Whether emits are recorded; assignable, as before the rework."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._refresh_guards()

    @property
    def max_records(self) -> int:
        """The in-memory retention cap; assignable, as before the rework."""
        return self._max_records

    @max_records.setter
    def max_records(self, value: int) -> None:
        self._max_records = value
        self._refresh_guards()

    @property
    def ring_budget_bytes(self) -> Optional[int]:
        """Byte budget for the packed ring (flight-recorder mode).

        Setting it turns the compacted store into a bounded flight
        recorder: once compaction pushes the packed buffer past the
        budget, the oldest records are evicted — counted on the
        ``trace.evicted`` registry counter and warned about once, so a
        truncated trace is never mistaken for a complete one.
        """
        return self._ring.capacity_bytes

    @ring_budget_bytes.setter
    def ring_budget_bytes(self, value: Optional[int]) -> None:
        self._ring.capacity_bytes = value
        if value is not None and self._ring.nbytes > value:
            self._ring._evict()
            self._account_evictions()

    @property
    def ring_evicted(self) -> int:
        """Records lost to the ring byte budget so far."""
        return self._ring.evicted

    # ------------------------------------------------------------------- emit

    def emit(self, category: str, **fields: Any) -> None:
        budget = self._budget
        if budget:
            # The zero-tax path: one tuple append.  `fields` is a fresh
            # kwargs dict the caller cannot alias, so deferring the sort
            # and the dataclass to decode time is safe.
            self._stage((self._sim.now, category, fields))
            self._budget = budget - 1
        else:
            self._emit_slow(category, fields)

    def emit_schema(self, schema: RecordSchema, values: Tuple[Any, ...]) -> None:
        """Schema fast path: positional values against pre-sorted keys.

        For emitters with a fixed field set (the packet tracer) — skips
        the kwargs dict and the per-record key sort on top of the lazy
        path's savings.  ``values`` must align with ``schema.keys``.
        Staging the schema's int id (not the object) keeps this at one
        flat-tuple append of atomic values, which CPython's GC untracks
        at the first collection instead of rescanning forever.
        """
        budget = self._budget
        if budget:
            self._stage((self._sim.now, schema.sid) + values)
            self._budget = budget - 1
        else:
            self._emit_slow_schema(schema, values)

    def _emit_slow(self, category: str, fields: Dict[str, Any]) -> None:
        """Off the staging fast path: disabled, eager, capped, or due for
        an in-emit compaction (the memory backstop)."""
        if not self._enabled:
            return
        if self._eager:
            self._emit_eager(
                TraceRecord(
                    time=self._sim.now,
                    category=category,
                    fields=tuple(sorted(fields.items())),
                )
            )
        elif self._n >= self._max_records:
            self._overflow((self._sim.now, category, fields))
        else:
            # Compaction watermark trip: pack, which re-arms the budget.
            self.compact()
            self._stage((self._sim.now, category, fields))
            self._budget -= 1

    def _emit_slow_schema(self, schema: RecordSchema, values: Tuple[Any, ...]) -> None:
        if not self._enabled:
            return
        if self._eager:
            self._emit_eager(
                TraceRecord(
                    time=self._sim.now,
                    category=schema.category,
                    fields=tuple(zip(schema.keys, values)),
                )
            )
        elif self._n >= self._max_records:
            self._overflow((self._sim.now, schema.sid) + values)
        else:
            self.compact()
            self._stage((self._sim.now, schema.sid) + values)
            self._budget -= 1

    def _emit_eager(self, record: TraceRecord) -> None:
        """The legacy per-record path: listeners and sinks see it now."""
        if self._n < self._max_records:
            self._tail.append(record)
        else:
            self.dropped += 1
            self._warn_capped(record.time)
        for listener in self._listeners:
            listener(record)
        if self._sinks or self._lazy_sinks:
            payload = {"type": "trace", **record.as_dict()}
            for sink in self._sinks:
                sink.write(payload)
            if self._lazy_sinks:
                # Keep lazy sinks ordered: backlog first, then this record
                # — but only for overflow records, which will never appear
                # in a later drain.  Retained records drain at flush time.
                if self._n >= self._max_records and self.dropped:
                    self._drain_lazy()
                    for sink in self._lazy_sinks:
                        sink.write(payload)

    def _overflow(self, entry: Tuple[Any, ...]) -> None:
        """Past the cap on the lazy path: count, warn once, and stream the
        record to lazily-attached sinks so the export keeps everything."""
        self.dropped += 1
        self._warn_capped(entry[0])
        if self._lazy_sinks:
            self._drain_lazy()
            record = self._decode_entry(entry)
            payload = {"type": "trace", **record.as_dict()}
            for sink in self._lazy_sinks:
                sink.write(payload)

    def _warn_capped(self, time: float) -> None:
        if self._warned_capped:
            return
        self._warned_capped = True
        logger.warning(
            "trace capped at %d in-memory records; further records "
            "are dropped from memory (attach a sink — e.g. "
            "repro.obs.NdjsonSink — to keep the full stream)",
            self.max_records,
        )
        self.write_record(
            {
                "type": "meta",
                "event": "trace_capped",
                "time": time,
                "max_records": self.max_records,
            }
        )

    # ------------------------------------------------------- lazy store plumbing

    @staticmethod
    def _decode_entry(entry: Any) -> TraceRecord:
        if type(entry) is TraceRecord:
            return entry
        key = entry[1]
        if type(key) is int:
            schema = RecordSchema.registry[key]
            return TraceRecord(
                entry[0], schema.category, tuple(zip(schema.keys, entry[2:]))
            )
        return TraceRecord(entry[0], key, tuple(sorted(entry[2].items())))

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, decoding lazily on first read.

        Returns the decode cache itself: iteration, indexing, and ``len``
        behave exactly like the eager list this used to be.
        """
        cache = self._cache
        if len(cache) < self._n:
            packed_n = len(self._ring)
            if len(cache) < packed_n:
                for tup in self._ring.iter_tuples(start=len(cache)):
                    cache.append(TraceRecord(*tup))
            decode = self._decode_entry
            for entry in self._tail[len(cache) - packed_n:]:
                cache.append(decode(entry))
        return cache

    def compact(self) -> int:
        """Pack the staged tail into the binary ring; returns bytes held.

        Runs at flush points (and past the emit watermark): record content
        moves from N Python tuples to one struct-packed buffer.  Purely a
        representation change — ``records`` decodes the same stream.
        """
        if self._tail:
            ring = self._ring
            for entry in self._tail:
                if type(entry) is TraceRecord:
                    ring.append(entry.time, entry.category, entry.fields)
                else:
                    key = entry[1]
                    if type(key) is int:
                        schema = RecordSchema.registry[key]
                        ring.append(
                            entry[0], schema.category, zip(schema.keys, entry[2:])
                        )
                    else:
                        ring.append(entry[0], key, sorted(entry[2].items()))
            self._tail.clear()
            if ring.evicted != self._ring_base:
                self._account_evictions()
        # Re-arm the in-emit compaction watermark relative to the new count.
        self._compact_at = self._n + COMPACT_WATERMARK
        self._refresh_guards()
        return self._ring.nbytes

    def _account_evictions(self) -> None:
        """Settle byte-budget evictions: shift the decode cache and the
        lazy-sink drain mark to the new retained stream, count the loss on
        the ``trace.evicted`` registry counter, and warn once."""
        newly = self._ring.evicted - self._ring_base
        if newly <= 0:
            return
        self._ring_base = self._ring.evicted
        # Retained-stream index k now maps to old index k + newly.
        if len(self._cache) > newly:
            del self._cache[:newly]
        else:
            self._cache = []
        self._drained = max(0, self._drained - newly)
        registry = getattr(self._sim, "registry", None)
        if registry is not None:
            registry.counter("trace.evicted").inc(newly)
        if not self._warned_evicted:
            self._warned_evicted = True
            logger.warning(
                "trace ring evicted %d record(s) under its %s-byte budget; "
                "the in-memory trace is now a suffix of the run (raise "
                "ring_budget_bytes or attach a sink to keep everything)",
                newly,
                self._ring.capacity_bytes,
            )
            self.write_record(
                {
                    "type": "meta",
                    "event": "ring_evicted",
                    "time": self._sim.now,
                    "budget_bytes": self._ring.capacity_bytes,
                }
            )

    def packed_payload(self) -> Dict[str, Any]:
        """Compact everything and return the picklable binary payload
        (see :meth:`BinaryTraceRing.to_payload`) — how a shard ships its
        trace through a pipe without materializing per-record dicts."""
        self.compact()
        return self._ring.to_payload()

    def dump_ring(
        self, path: str, aux_records: Optional[Iterable[Dict[str, Any]]] = None
    ) -> str:
        """Compact and write the trace as a ``.ring`` binary export."""
        self.compact()
        return self._ring.dump(path, aux_records=aux_records)

    # ---------------------------------------------------------------- listeners

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a live listener for each emitted record."""
        self._listeners.append(listener)
        self._eager = True
        self._refresh_guards()

    # ------------------------------------------------------------------ sinks

    def add_sink(self, sink: Any, *, lazy: bool = False) -> Any:
        """Attach a streaming sink; every emitted record (including ones
        past the memory cap) is written to it as a dict.

        ``lazy=True`` keeps the hot path untaxed: records reach the sink
        in batches at flush points (``flush_sinks``/``write_record``/
        ``close_sinks``) instead of one write per emit.  Cap-overflow
        records are still written at emit time — they exist nowhere else.
        """
        if lazy:
            self._lazy_sinks.append(sink)
        else:
            self._sinks.append(sink)
            self._eager = True
            self._refresh_guards()
        return sink

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        if sink in self._lazy_sinks:
            self._lazy_sinks.remove(sink)
        self._eager = bool(self._listeners or self._sinks)
        self._refresh_guards()

    @property
    def sinks(self) -> Tuple[Any, ...]:
        return tuple(self._sinks) + tuple(self._lazy_sinks)

    def _drain_lazy(self) -> None:
        """Write retained records not yet seen by lazy sinks, in order."""
        if not self._lazy_sinks or self._drained >= self._n:
            return
        records = self.records
        for rec in records[self._drained:]:
            payload = {"type": "trace", **rec.as_dict()}
            for sink in self._lazy_sinks:
                sink.write(payload)
        self._drained = len(records)

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write an arbitrary (non-trace) record dict to the sinks —
        profiler rows, metric snapshots, meta events.  Lazy sinks receive
        the trace backlog first so stream order is preserved."""
        self._drain_lazy()
        for sink in self._sinks:
            sink.write(record)
        for sink in self._lazy_sinks:
            sink.write(record)

    def flush_sinks(self) -> None:
        self._drain_lazy()
        for sink in self._sinks:
            sink.flush()
        for sink in self._lazy_sinks:
            sink.flush()

    def close_sinks(self) -> None:
        self._drain_lazy()
        for sink in self._sinks:
            sink.close()
        for sink in self._lazy_sinks:
            sink.close()
        self._sinks.clear()
        self._lazy_sinks.clear()
        self._eager = bool(self._listeners)
        self._refresh_guards()

    # ---------------------------------------------------------------- queries

    def filter(
        self, category: Optional[str] = None, **field_filters: Any
    ) -> List[TraceRecord]:
        """Records matching a category and exact field values."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if all(rec.get(k) == v for k, v in field_filters.items()):
                out.append(rec)
        return out

    def count(self, category: str) -> int:
        return sum(1 for rec in self.records if rec.category == category)

    def fingerprint(self, categories: Optional[Iterable[str]] = None) -> str:
        """A stable digest of the trace; equal across identical runs.

        Built on :mod:`hashlib` rather than :func:`hash`, which is salted
        per process — identical runs in *separate* executions must agree.
        That process-independence is what lets fingerprints serve as cache
        and determinism keys for :mod:`repro.campaign`: a worker process
        and a serial rerun of the same task produce the same digest.

        ``categories`` restricts the digest to a subset of record
        categories (e.g. only ``msg.*`` events), so callers can fingerprint
        the behaviour they care about while ignoring incidental records.
        """
        wanted = None if categories is None else set(categories)
        digest = hashlib.blake2b(digest_size=16)
        for rec in self.records:
            if wanted is not None and rec.category not in wanted:
                continue
            digest.update(
                repr((round(rec.time, 9), rec.category, rec.fields)).encode()
            )
        return digest.hexdigest()

    def iter_dicts(self) -> Iterable[Dict[str, Any]]:
        """Yield retained records as sink-shaped dicts.

        The same ``{"type": "trace", "time": ..., "category": ..., ...}``
        payloads an :class:`~repro.obs.sinks.NdjsonSink` receives, so
        offline analyzers (``repro.obs.analyze``) consume in-memory traces
        and NDJSON exports through one code path.
        """
        for rec in self.records:
            yield {"type": "trace", **rec.as_dict()}

    def clear(self) -> None:
        self._ring.clear()
        self._tail.clear()
        self._cache = []
        self._drained = 0
        self._ring_base = 0
        self._compact_at = COMPACT_WATERMARK
        self._refresh_guards()

    def __len__(self) -> int:
        return self._n
