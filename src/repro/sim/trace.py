"""Structured event tracing.

A :class:`TraceLog` records ``(time, category, fields)`` tuples.  Traces are
how integration tests assert on *sequences* of behavior (e.g., "the reflex
fired before re-synthesis was requested") and how determinism is verified
across runs.
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecord", "TraceLog"]

logger = logging.getLogger("repro.obs")


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time": self.time, "category": self.category}
        out.update(dict(self.fields))
        return out


class TraceLog:
    """Append-only trace attached to a simulator.

    Tracing is enabled by default but can be capped or disabled for very
    large runs (benchmarks disable it).  The in-memory ``records`` list is
    bounded by ``max_records`` — but hitting the cap no longer loses data
    silently: overflow is counted on :attr:`dropped`, warned about once,
    and every record (retained or not) still reaches the live listeners
    and any attached streaming sinks (:mod:`repro.obs.sinks`), so a
    rotated NDJSON export keeps the full stream.
    """

    def __init__(self, sim: "Simulator", max_records: int = 1_000_000):  # noqa: F821
        self._sim = sim
        self.enabled = True
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        #: Records not retained in memory because ``max_records`` was hit.
        self.dropped = 0
        self._warned_capped = False
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._sinks: List[Any] = []

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record = TraceRecord(
            time=self._sim.now,
            category=category,
            fields=tuple(sorted(fields.items())),
        )
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1
            if not self._warned_capped:
                self._warned_capped = True
                logger.warning(
                    "trace capped at %d in-memory records; further records "
                    "are dropped from memory (attach a sink — e.g. "
                    "repro.obs.NdjsonSink — to keep the full stream)",
                    self.max_records,
                )
                self.write_record(
                    {
                        "type": "meta",
                        "event": "trace_capped",
                        "time": record.time,
                        "max_records": self.max_records,
                    }
                )
        for listener in self._listeners:
            listener(record)
        if self._sinks:
            payload = {"type": "trace", **record.as_dict()}
            for sink in self._sinks:
                sink.write(payload)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a live listener for each emitted record."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ sinks

    def add_sink(self, sink: Any) -> Any:
        """Attach a streaming sink; every emitted record (including ones
        past the memory cap) is written to it as a dict."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> Tuple[Any, ...]:
        return tuple(self._sinks)

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write an arbitrary (non-trace) record dict to the sinks —
        profiler rows, metric snapshots, meta events."""
        for sink in self._sinks:
            sink.write(record)

    def flush_sinks(self) -> None:
        for sink in self._sinks:
            sink.flush()

    def close_sinks(self) -> None:
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    def filter(
        self, category: Optional[str] = None, **field_filters: Any
    ) -> List[TraceRecord]:
        """Records matching a category and exact field values."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if all(rec.get(k) == v for k, v in field_filters.items()):
                out.append(rec)
        return out

    def count(self, category: str) -> int:
        return sum(1 for rec in self.records if rec.category == category)

    def fingerprint(self, categories: Optional[Iterable[str]] = None) -> str:
        """A stable digest of the trace; equal across identical runs.

        Built on :mod:`hashlib` rather than :func:`hash`, which is salted
        per process — identical runs in *separate* executions must agree.
        That process-independence is what lets fingerprints serve as cache
        and determinism keys for :mod:`repro.campaign`: a worker process
        and a serial rerun of the same task produce the same digest.

        ``categories`` restricts the digest to a subset of record
        categories (e.g. only ``msg.*`` events), so callers can fingerprint
        the behaviour they care about while ignoring incidental records.
        """
        wanted = None if categories is None else set(categories)
        digest = hashlib.blake2b(digest_size=16)
        for rec in self.records:
            if wanted is not None and rec.category not in wanted:
                continue
            digest.update(
                repr((round(rec.time, 9), rec.category, rec.fields)).encode()
            )
        return digest.hexdigest()

    def iter_dicts(self) -> Iterable[Dict[str, Any]]:
        """Yield retained records as sink-shaped dicts.

        The same ``{"type": "trace", "time": ..., "category": ..., ...}``
        payloads an :class:`~repro.obs.sinks.NdjsonSink` receives, so
        offline analyzers (``repro.obs.analyze``) consume in-memory traces
        and NDJSON exports through one code path.
        """
        for rec in self.records:
            yield {"type": "trace", **rec.as_dict()}

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
