"""Structured event tracing.

A :class:`TraceLog` records ``(time, category, fields)`` tuples.  Traces are
how integration tests assert on *sequences* of behavior (e.g., "the reflex
fired before re-synthesis was requested") and how determinism is verified
across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time": self.time, "category": self.category}
        out.update(dict(self.fields))
        return out


class TraceLog:
    """Append-only trace attached to a simulator.

    Tracing is enabled by default but can be capped or disabled for very
    large runs (benchmarks disable it).
    """

    def __init__(self, sim: "Simulator", max_records: int = 1_000_000):  # noqa: F821
        self._sim = sim
        self.enabled = True
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.max_records:
            return
        record = TraceRecord(
            time=self._sim.now,
            category=category,
            fields=tuple(sorted(fields.items())),
        )
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a live listener for each emitted record."""
        self._listeners.append(listener)

    def filter(
        self, category: Optional[str] = None, **field_filters: Any
    ) -> List[TraceRecord]:
        """Records matching a category and exact field values."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if all(rec.get(k) == v for k, v in field_filters.items()):
                out.append(rec)
        return out

    def count(self, category: str) -> int:
        return sum(1 for rec in self.records if rec.category == category)

    def fingerprint(self, categories: Optional[Iterable[str]] = None) -> str:
        """A stable digest of the trace; equal across identical runs.

        Built on :mod:`hashlib` rather than :func:`hash`, which is salted
        per process — identical runs in *separate* executions must agree.
        That process-independence is what lets fingerprints serve as cache
        and determinism keys for :mod:`repro.campaign`: a worker process
        and a serial rerun of the same task produce the same digest.

        ``categories`` restricts the digest to a subset of record
        categories (e.g. only ``msg.*`` events), so callers can fingerprint
        the behaviour they care about while ignoring incidental records.
        """
        wanted = None if categories is None else set(categories)
        digest = hashlib.blake2b(digest_size=16)
        for rec in self.records:
            if wanted is not None and rec.category not in wanted:
                continue
            digest.update(
                repr((round(rec.time, 9), rec.category, rec.fields)).encode()
            )
        return digest.hexdigest()

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
