"""Scenario construction: worlds, asset populations, targets, workloads."""

from repro.scenarios.builder import Scenario, ScenarioBuilder
from repro.scenarios.urban import UrbanGrid
from repro.scenarios.workloads import (
    Target,
    TargetGroup,
    EventField,
    PoissonTraffic,
)

__all__ = [
    "Scenario",
    "ScenarioBuilder",
    "UrbanGrid",
    "Target",
    "TargetGroup",
    "EventField",
    "PoissonTraffic",
]
