"""Urban grid worlds.

The paper envisions operations "increasingly carried out in urban contexts"
up to the "highly dense and cluttered mega-city" extreme.  :class:`UrbanGrid`
models a Manhattan-style district: a block grid whose buildings increase the
path-loss exponent and shadowing, street intersections as natural sensor
emplacements, and a helper for placing assets on streets vs inside blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.net.channel import Channel
from repro.util.geometry import Point, Region

__all__ = ["UrbanGrid"]


@dataclass(frozen=True)
class UrbanGrid:
    """A square urban district of ``blocks x blocks`` city blocks."""

    blocks: int = 10
    block_size_m: float = 100.0

    def __post_init__(self) -> None:
        if self.blocks < 1 or self.block_size_m <= 0:
            raise ConfigurationError("blocks >= 1 and block_size_m > 0 required")

    @property
    def region(self) -> Region:
        side = self.blocks * self.block_size_m
        return Region(0.0, 0.0, side, side)

    def channel(self, seed: int = 0, *, density: float = 0.5) -> Channel:
        """A channel parameterized for this district.

        ``density`` in [0,1] scales from open terrain (exponent 2.4, light
        shadowing) to dense mega-city (exponent 3.6, heavy shadowing).
        """
        if not (0.0 <= density <= 1.0):
            raise ConfigurationError("density must be in [0, 1]")
        return Channel(
            path_loss_exponent=2.4 + 1.2 * density,
            shadowing_sigma_db=2.0 + 6.0 * density,
            seed=seed,
        )

    def intersections(self) -> List[Point]:
        """All street intersections (natural fixed-sensor emplacements)."""
        pts = []
        for i in range(self.blocks + 1):
            for j in range(self.blocks + 1):
                pts.append(Point(i * self.block_size_m, j * self.block_size_m))
        return pts

    def random_street_point(self, rng: np.random.Generator) -> Point:
        """A uniform point constrained to the street grid."""
        side = self.blocks * self.block_size_m
        along = float(rng.uniform(0.0, side))
        line = float(rng.integers(0, self.blocks + 1)) * self.block_size_m
        if rng.random() < 0.5:
            return Point(along, line)
        return Point(line, along)

    def random_block_point(self, rng: np.random.Generator) -> Point:
        """A uniform point anywhere in the district (inside blocks allowed)."""
        return self.region.sample(rng)

    def snap_to_street(self, p: Point) -> Point:
        """Project a point onto the nearest street line."""
        gx = round(p.x / self.block_size_m) * self.block_size_m
        gy = round(p.y / self.block_size_m) * self.block_size_m
        if abs(p.x - gx) <= abs(p.y - gy):
            return self.region.clamp(Point(gx, p.y))
        return self.region.clamp(Point(p.x, gy))
