"""Workload generators: targets to track, event fields, background traffic.

Targets are *ghost* entities — they move through the world and are observed
by sensors, but are not network nodes.  Event fields generate the binary
world events that human sources report on (social sensing).  Poisson
traffic provides background offered load for congestion studies.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.mobility import MobilityModel, RandomWaypoint
from repro.net.transport import MessageService
from repro.sim.kernel import Simulator
from repro.util.geometry import Point, Region

__all__ = ["Target", "TargetGroup", "EventField", "PoissonTraffic"]

_target_ids = itertools.count(1)


class Target:
    """A tracked entity (e.g., one insurgent) with its own mobility model."""

    def __init__(self, model: MobilityModel, target_id: Optional[int] = None):
        self.id = target_id if target_id is not None else next(_target_ids)
        self.model = model

    @property
    def position(self) -> Point:
        return self.model.position

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        return self.model.step(dt, rng)


class TargetGroup:
    """A dispersed group of targets moving through the region.

    Matches the paper's motivating task: "tracking a dispersed group of
    humans and vehicles moving through cluttered environments".
    """

    def __init__(
        self,
        sim: Simulator,
        region: Region,
        n_targets: int,
        *,
        speed_range=(0.8, 2.5),
        update_period_s: float = 1.0,
    ):
        if n_targets < 1:
            raise ConfigurationError("n_targets must be >= 1")
        self.sim = sim
        self.region = region
        self.update_period_s = update_period_s
        self._rng = sim.rng.get("targets")
        self.targets: List[Target] = []
        for _i in range(n_targets):
            start = region.sample(self._rng)
            model = RandomWaypoint(
                start, region, speed_range=speed_range, pause_range=(0.0, 5.0)
            )
            self.targets.append(Target(model))
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.every(self.update_period_s, self._step_all)

    def _step_all(self) -> None:
        for target in self.targets:
            target.step(self.update_period_s, self._rng)

    def positions(self) -> Dict[int, Point]:
        return {t.id: t.position for t in self.targets}

    def __len__(self) -> int:
        return len(self.targets)


class EventField:
    """Binary world events scattered in the region (for social sensing).

    Each event has a ground-truth value; honest sources tend to report it,
    malicious sources invert it.  ``refresh`` re-draws truth values to model
    a changing situation.
    """

    def __init__(
        self,
        sim: Simulator,
        region: Region,
        n_events: int,
        *,
        p_true: float = 0.5,
    ):
        if n_events < 1:
            raise ConfigurationError("n_events must be >= 1")
        self.sim = sim
        self.region = region
        self._rng = sim.rng.get("events")
        self.positions: Dict[int, Point] = {}
        self.truth: Dict[int, bool] = {}
        self.p_true = p_true
        for event_id in range(1, n_events + 1):
            self.positions[event_id] = region.sample(self._rng)
            self.truth[event_id] = bool(self._rng.random() < p_true)

    def refresh(self, fraction: float = 1.0) -> None:
        """Re-draw truth for a random ``fraction`` of events."""
        ids = sorted(self.truth)
        k = max(0, min(len(ids), int(round(fraction * len(ids)))))
        chosen = self._rng.choice(ids, size=k, replace=False) if k else []
        for event_id in chosen:
            self.truth[int(event_id)] = bool(self._rng.random() < self.p_true)

    def __len__(self) -> int:
        return len(self.truth)


class PoissonTraffic:
    """Background unicast traffic between random attached node pairs."""

    def __init__(
        self,
        sim: Simulator,
        service: MessageService,
        node_ids: List[int],
        *,
        rate_hz: float = 1.0,
        size_bits: int = 2048,
    ):
        if rate_hz <= 0:
            raise ConfigurationError("rate_hz must be positive")
        if len(node_ids) < 2:
            raise ConfigurationError("need at least two nodes for traffic")
        self.sim = sim
        self.service = service
        self.node_ids = list(node_ids)
        self.rate_hz = rate_hz
        self.size_bits = size_bits
        self._rng = sim.rng.get("traffic")
        self.sent = 0
        self._stopped = False

    def start(self) -> None:
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate_hz))
        self.sim.call_in(gap, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        src, dst = self._rng.choice(self.node_ids, size=2, replace=False)
        self.service.send(int(src), int(dst), payload=None, size_bits=self.size_bits)
        self.sent += 1
        self._schedule_next()
