"""Scenario builder: assemble world + channel + population + workloads.

The builder is the one-stop entry point used by examples, tests, and every
benchmark, so experiments differ only in the parameters they pass, never in
assembly boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net.channel import Jammer
from repro.net.mobility import (
    ManhattanGrid as ManhattanMobility,
    MobilityManager,
    RandomWaypoint,
    StaticMobility,
)
from repro.net.node import Network
from repro.net.registry import StackSpec, compose, create as registry_create
from repro.net.stack import RouterPort, TransportPort
from repro.scenarios.urban import UrbanGrid
from repro.scenarios.workloads import EventField, TargetGroup
from repro.sim.kernel import Simulator
from repro.things.asset import Affiliation, Asset, AssetInventory
from repro.things.capabilities import make_profile
from repro.things.humans import HumanSource
from repro.things.sensors import Environment
from repro.util.geometry import Region

__all__ = ["Scenario", "ScenarioBuilder"]

#: Default blue-force device mix (class -> weight).
DEFAULT_BLUE_MIX: Dict[str, float] = {
    "occupancy_tag": 0.20,
    "ground_sensor": 0.25,
    "camera_pole": 0.15,
    "wearable": 0.15,
    "ugv": 0.08,
    "drone": 0.07,
    "edge_cloud": 0.02,
    "smartphone": 0.08,
}

#: Gray (civilian) devices are overwhelmingly phones plus ambient IoT.
DEFAULT_GRAY_MIX: Dict[str, float] = {
    "smartphone": 0.7,
    "occupancy_tag": 0.2,
    "camera_pole": 0.1,
}

#: Red assets masquerade as civilian-grade hardware.
DEFAULT_RED_MIX: Dict[str, float] = {
    "smartphone": 0.6,
    "ground_sensor": 0.25,
    "drone": 0.15,
}


@dataclass
class Scenario:
    """A fully assembled world ready for services and experiments."""

    sim: Simulator
    grid: UrbanGrid
    network: Network
    inventory: AssetInventory
    mobility: MobilityManager
    environment: Environment
    targets: Optional[TargetGroup] = None
    events: Optional[EventField] = None
    jammers: List[Jammer] = field(default_factory=list)
    #: Present when the builder composed a stack from the registry
    #: (``ScenarioBuilder.stack``); the spec is what campaign sweeps hash.
    router: Optional[RouterPort] = None
    transport: Optional[TransportPort] = None
    stack_spec: Optional[StackSpec] = None

    @property
    def region(self) -> Region:
        return self.grid.region

    def blue_node_ids(self) -> List[int]:
        return [a.node_id for a in self.inventory.blue() if a.alive]

    def start(self) -> None:
        """Start background dynamics (mobility, targets)."""
        self.mobility.start()
        if self.targets is not None:
            self.targets.start()


class ScenarioBuilder:
    """Fluent construction of :class:`Scenario` objects.

    >>> sim = Simulator(seed=3)
    >>> scenario = (
    ...     ScenarioBuilder(sim)
    ...     .urban_grid(blocks=5)
    ...     .population(n_blue=40, n_red=5, n_gray=10)
    ...     .build()
    ... )
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._rng = sim.rng.get("scenario")
        self._grid = UrbanGrid(blocks=10, block_size_m=100.0)
        self._density = 0.5
        self._population: List[Tuple[Affiliation, Dict[str, float], int]] = []
        self._mobile_fraction = 0.5
        self._street_mobility = True
        self._n_targets = 0
        self._n_events = 0
        self._n_jammers = 0
        self._jammer_power_dbm = 30.0
        self._environment = Environment()
        self._human_reliability = (0.6, 0.95)
        self._red_duty_cycle = 0.7
        self._mobility_period_s = 1.0
        self._stack_spec: Optional[StackSpec] = None

    # ----------------------------------------------------------------- world

    def urban_grid(
        self, blocks: int = 10, block_size_m: float = 100.0, density: float = 0.5
    ) -> "ScenarioBuilder":
        self._grid = UrbanGrid(blocks=blocks, block_size_m=block_size_m)
        self._density = density
        return self

    def environment(self, env: Environment) -> "ScenarioBuilder":
        self._environment = env
        return self

    # ------------------------------------------------------------ population

    def population(
        self,
        n_blue: int = 50,
        n_red: int = 0,
        n_gray: int = 0,
        *,
        blue_mix: Optional[Dict[str, float]] = None,
        gray_mix: Optional[Dict[str, float]] = None,
        red_mix: Optional[Dict[str, float]] = None,
    ) -> "ScenarioBuilder":
        if n_blue < 0 or n_red < 0 or n_gray < 0:
            raise ConfigurationError("population counts must be non-negative")
        self._population = [
            (Affiliation.BLUE, blue_mix or DEFAULT_BLUE_MIX, n_blue),
            (Affiliation.RED, red_mix or DEFAULT_RED_MIX, n_red),
            (Affiliation.GRAY, gray_mix or DEFAULT_GRAY_MIX, n_gray),
        ]
        return self

    def mobility(
        self,
        mobile_fraction: float = 0.5,
        *,
        street_constrained: bool = True,
        update_period_s: float = 1.0,
    ) -> "ScenarioBuilder":
        if not (0.0 <= mobile_fraction <= 1.0):
            raise ConfigurationError("mobile_fraction must be in [0, 1]")
        self._mobile_fraction = mobile_fraction
        self._street_mobility = street_constrained
        self._mobility_period_s = update_period_s
        return self

    # ------------------------------------------------------------- workloads

    def targets(self, n_targets: int) -> "ScenarioBuilder":
        self._n_targets = n_targets
        return self

    def events(self, n_events: int) -> "ScenarioBuilder":
        self._n_events = n_events
        return self

    def jammers(self, n_jammers: int, power_dbm: float = 30.0) -> "ScenarioBuilder":
        self._n_jammers = n_jammers
        self._jammer_power_dbm = power_dbm
        return self

    # ----------------------------------------------------------------- stack

    def stack(
        self,
        spec: Optional[StackSpec] = None,
        *,
        router: str = "flooding",
        mac: str = "csma",
        transport: Optional[str] = None,
        router_params: Optional[Dict[str, object]] = None,
        mac_params: Optional[Dict[str, object]] = None,
        transport_params: Optional[Dict[str, object]] = None,
    ) -> "ScenarioBuilder":
        """Compose the per-node protocol stack from registry names.

        Either pass a full :class:`~repro.net.registry.StackSpec` or name
        the pieces directly (``.stack(router="aodv", transport="reliable")``).
        The scenario's channel stays the urban grid's calibrated channel;
        router and transport are built from the registry and attached to
        every node at :meth:`build` time, exposed as ``scenario.router`` /
        ``scenario.transport`` alongside the spec itself.
        """
        if spec is None:
            spec = StackSpec(
                router=router,
                mac=mac,
                transport=transport,
                router_params=dict(router_params or {}),
                mac_params=dict(mac_params or {}),
                transport_params=dict(transport_params or {}),
            )
        if spec.channel is not None:
            raise ConfigurationError(
                "scenario stacks use the urban grid's channel; "
                "leave StackSpec.channel unset"
            )
        self._stack_spec = spec
        return self

    # ----------------------------------------------------------------- build

    def _sample_class(self, mix: Dict[str, float]) -> str:
        classes = sorted(mix)
        weights = np.array([mix[c] for c in classes], dtype=float)
        weights = weights / weights.sum()
        return str(self._rng.choice(classes, p=weights))

    def build(self) -> Scenario:
        channel = self._grid.channel(seed=self.sim.rng.seed, density=self._density)
        mac = None
        if self._stack_spec is not None:
            mac = registry_create(
                "mac", self._stack_spec.mac, **self._stack_spec.mac_params
            )
        network = Network(self.sim, channel, mac)
        inventory = AssetInventory(network)
        mobility = MobilityManager(
            self.sim, network, update_period_s=self._mobility_period_s
        )
        region = self._grid.region

        if not self._population:
            self.population()

        for affiliation, mix, count in self._population:
            for _i in range(count):
                device_class = self._sample_class(mix)
                profile = make_profile(device_class)
                if profile.mobile or affiliation is not Affiliation.BLUE:
                    position = self._grid.random_block_point(self._rng)
                else:
                    position = self._grid.snap_to_street(
                        self._grid.random_block_point(self._rng)
                    )
                human = None
                if device_class in ("smartphone", "wearable"):
                    lo, hi = self._human_reliability
                    human = HumanSource(
                        source_id=len(inventory) + 1,
                        reliability=float(self._rng.uniform(lo, hi)),
                        malicious=affiliation is Affiliation.RED,
                    )
                duty = 1.0
                if affiliation is not Affiliation.BLUE:
                    duty = self._red_duty_cycle
                asset = inventory.create(
                    profile,
                    position,
                    affiliation,
                    duty_cycle=duty,
                    human=human,
                )
                asset.add_default_sensors()
                self._attach_mobility(asset, mobility, region)

        scenario = Scenario(
            sim=self.sim,
            grid=self._grid,
            network=network,
            inventory=inventory,
            mobility=mobility,
            environment=self._environment,
        )
        if self._n_targets > 0:
            scenario.targets = TargetGroup(self.sim, region, self._n_targets)
        if self._n_events > 0:
            scenario.events = EventField(self.sim, region, self._n_events)
        for _j in range(self._n_jammers):
            jammer = Jammer(
                position=region.sample(self._rng),
                power_dbm=self._jammer_power_dbm,
                active=False,  # attacks switch them on
            )
            channel.add_jammer(jammer)
            scenario.jammers.append(jammer)
        if self._stack_spec is not None:
            # MAC already installed above; compose fills routing/transport.
            composed = compose(
                self.sim,
                self._stack_spec,
                network=network,
                attach=sorted(network.nodes),
            )
            scenario.router = composed.router
            scenario.transport = composed.transport
            scenario.stack_spec = self._stack_spec
            # Provenance for RunManifests: the composed stack is part of
            # what shaped this run, so its content hash travels with
            # every export stamped from this simulator.
            from repro.obs.forensics import content_hash

            hashes = self.sim.provenance.setdefault("content_hashes", {})
            hashes["stack_spec"] = content_hash(self._stack_spec)
        return scenario

    def _attach_mobility(
        self, asset: Asset, mobility: MobilityManager, region: Region
    ) -> None:
        if asset.profile.mobile and self._rng.random() < self._mobile_fraction:
            if self._street_mobility and asset.profile.device_class != "drone":
                model = ManhattanMobility(
                    asset.position, region, block_size=self._grid.block_size_m
                )
            else:
                model = RandomWaypoint(asset.position, region)
        else:
            model = StaticMobility(asset.position)
        mobility.attach(asset.node_id, model)
