"""Entry point: ``python -m repro.obs report <run.ndjson>`` summarizes a
telemetry export; ``python -m repro.obs trace <run.ndjson|dir>`` runs the
causal packet-trace analyzer (latency phases, critical path, Chrome-trace
export); ``python -m repro.obs live <dir>`` watches an export in a
snapshot loop (event rate, delivery ratios, breaker states, shard lag)
and enforces ``--slo`` thresholds with a non-zero exit on breach;
``python -m repro.obs replay <manifest>`` re-executes a run from its
RunManifest and asserts determinism (exit 1 on divergence);
``python -m repro.obs diff <A> <B>`` locates the first record on which
two exports disagree, with happens-before context (exit 1 when they
differ, 2 when unreadable)."""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
