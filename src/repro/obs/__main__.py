"""Entry point: ``python -m repro.obs report <run.ndjson>`` summarizes a
telemetry export; ``python -m repro.obs trace <run.ndjson|dir>`` runs the
causal packet-trace analyzer (latency phases, critical path, Chrome-trace
export)."""

import sys

from repro.obs.report import main

if __name__ == "__main__":
    sys.exit(main())
