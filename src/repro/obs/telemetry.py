"""Zero-tax telemetry plane: the binary trace ring and lazy serialization.

The per-event cost of tracing used to be dict construction plus a sorted
tuple plus a frozen dataclass — ~4 µs per record, a 51% kernel tax on
traced runs (BENCH_pr4).  This module moves all of that off the timed
path.  The hot path *stages* a record as one cheap tuple append; packing
into a struct-encoded binary ring and decoding back into
:class:`~repro.sim.trace.TraceRecord` form happen lazily, only when a
sink, a fingerprint, or ``python -m repro.obs report`` actually reads the
trace.

Three pieces:

* :class:`StringTable` — interning table mapping every category/key/str
  value to a small integer, so packed records carry 4-byte ids instead of
  repeated UTF-8.
* :class:`RecordSchema` — a per-category tuple of *pre-sorted* field
  names; emitters that know their field set ahead of time (the packet
  tracer) skip both the kwargs dict and the per-record sort.
* :class:`BinaryTraceRing` — a preallocated, struct-packed append buffer
  with optional flight-recorder eviction, ``dump``/``load_ring`` disk
  persistence (the ``.ring`` export format), and a picklable payload form
  for shipping a shard's trace across a process boundary.

Field values survive a pack/decode round trip **bit-identically**: floats
travel as IEEE doubles, ints as signed 64-bit (wider ints fall back to
the object side-table), bools are tagged distinctly from ints, and
``None`` is its own tag — so ``repr``-based trace fingerprints computed
from decoded records equal those computed from never-packed ones.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.tables import json_safe

__all__ = [
    "StringTable",
    "RecordSchema",
    "BinaryTraceRing",
    "load_ring",
    "load_ring_ex",
    "RING_MAGIC",
    "RING_SCHEMA",
]

#: First line of a ``.ring`` dump file.
RING_MAGIC = b"REPRO-RING/1\n"
#: Schema tag carried in the dump header.
RING_SCHEMA = "ring/1"

# Record header: time (f64), category string id (u32), field count (u32).
_HEAD = struct.Struct("<dII")
# Per-field prefix: key string id (u32), type tag (u8).
_FIELD = struct.Struct("<IB")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")

# Value type tags.  Bool precedes int checks everywhere (bool is an int
# subclass) and gets its own tags so decode returns True, not 1.
_T_NONE = 0
_T_FLOAT = 1
_T_INT = 2
_T_STR = 3
_T_TRUE = 4
_T_FALSE = 5
_T_OBJ = 6

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


class StringTable:
    """Bidirectional str <-> small-int interning table."""

    __slots__ = ("_ids", "_strings")

    def __init__(self, strings: Optional[List[str]] = None):
        self._strings: List[str] = list(strings) if strings else []
        self._ids: Dict[str, int] = {s: i for i, s in enumerate(self._strings)}

    def intern(self, s: str) -> int:
        sid = self._ids.get(s)
        if sid is None:
            sid = len(self._strings)
            self._ids[s] = sid
            self._strings.append(s)
        return sid

    def lookup(self, sid: int) -> str:
        return self._strings[sid]

    def as_list(self) -> List[str]:
        return list(self._strings)

    def __len__(self) -> int:
        return len(self._strings)


class RecordSchema:
    """A fixed, pre-sorted field-name tuple for one trace category.

    Emitters that always produce the same field set (the packet tracer's
    ``pkt.*`` events) pass a schema plus a positional value tuple to
    :meth:`TraceLog.emit_schema`, skipping the kwargs dict and the
    per-record key sort entirely.  ``keys`` must already be sorted —
    decoded records must equal what ``tuple(sorted(fields.items()))``
    would have produced.
    """

    __slots__ = ("category", "keys", "sid")

    #: Every schema ever constructed, indexed by ``sid``.  Staged trace
    #: entries carry the int id rather than the schema object: a tuple of
    #: only atomic values (floats/ints/strs/None) is untracked by CPython's
    #: GC at its first collection, so the tens of thousands of staged
    #: records alive during a traced run stop being rescanned by every
    #: young-generation pass.  The ids never leave the process — packed
    #: rings and fingerprints only ever see the category string.
    registry: List["RecordSchema"] = []

    def __init__(self, category: str, keys: Tuple[str, ...]):
        if list(keys) != sorted(keys):
            raise ValueError(f"schema keys for {category!r} must be sorted")
        self.category = category
        self.keys = tuple(keys)
        self.sid = len(RecordSchema.registry)
        RecordSchema.registry.append(self)


class _Cursor:
    """A walk position inside a packed buffer (no per-record allocation)."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes, pos: int = 0):
        self.buf = buf
        self.pos = pos

    def skip_record(self) -> None:
        _t, _cid, n_fields = _HEAD.unpack_from(self.buf, self.pos)
        pos = self.pos + _HEAD.size
        for _ in range(n_fields):
            tag = self.buf[pos + 4]
            pos += _FIELD.size + _VALUE_SIZE[tag]
        self.pos = pos


#: Packed payload width per value tag (after the field prefix).
_VALUE_SIZE = {
    _T_NONE: 0,
    _T_FLOAT: 8,
    _T_INT: 8,
    _T_STR: 4,
    _T_TRUE: 0,
    _T_FALSE: 0,
    _T_OBJ: 4,
}


class BinaryTraceRing:
    """Struct-packed append buffer for trace records.

    ``capacity_records`` turns it into a flight recorder: the oldest
    records are evicted (counted on :attr:`evicted`) once the cap is hit.
    ``capacity_bytes`` bounds the packed buffer the same way — the oldest
    records are dropped until the buffer fits the byte budget, but the
    newest record is always retained even when it alone exceeds it.
    Without a cap it is a compact append-only store — the form
    :class:`~repro.sim.trace.TraceLog` compacts its staged tail into.
    """

    __slots__ = (
        "strings",
        "capacity_records",
        "capacity_bytes",
        "evicted",
        "_buf",
        "_offsets",
        "_objects",
    )

    def __init__(
        self,
        capacity_records: Optional[int] = None,
        capacity_bytes: Optional[int] = None,
    ):
        if capacity_records is not None and capacity_records < 1:
            raise ValueError("capacity_records must be >= 1 or None")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1 or None")
        self.strings = StringTable()
        self.capacity_records = capacity_records
        self.capacity_bytes = capacity_bytes
        #: Records evicted by the flight-recorder caps.
        self.evicted = 0
        self._buf = bytearray()
        # Start offset of every retained record, in order.
        self._offsets: List[int] = []
        # Side table for values no fixed-width tag covers (big ints,
        # tuples, arbitrary objects); packed records index into it.
        self._objects: List[Any] = []

    # ------------------------------------------------------------------ write

    def append(
        self, time: float, category: str, items: Iterable[Tuple[str, Any]]
    ) -> None:
        """Pack one record; ``items`` must be sorted by key already."""
        buf = self._buf
        intern = self.strings.intern
        start = len(buf)
        head_at = start
        buf += b"\x00" * _HEAD.size  # patched below once n_fields is known
        n_fields = 0
        for key, value in items:
            n_fields += 1
            kid = intern(key)
            if value is None:
                buf += _FIELD.pack(kid, _T_NONE)
            elif value is True:
                buf += _FIELD.pack(kid, _T_TRUE)
            elif value is False:
                buf += _FIELD.pack(kid, _T_FALSE)
            elif type(value) is float:
                buf += _FIELD.pack(kid, _T_FLOAT)
                buf += _F64.pack(value)
            elif type(value) is int:
                if _I64_MIN <= value <= _I64_MAX:
                    buf += _FIELD.pack(kid, _T_INT)
                    buf += _I64.pack(value)
                else:
                    buf += _FIELD.pack(kid, _T_OBJ)
                    buf += _U32.pack(len(self._objects))
                    self._objects.append(value)
            elif type(value) is str:
                buf += _FIELD.pack(kid, _T_STR)
                buf += _U32.pack(intern(value))
            else:
                # numpy scalars, tuples, whatever a caller handed us:
                # kept verbatim so decode is exact, not merely close.
                buf += _FIELD.pack(kid, _T_OBJ)
                buf += _U32.pack(len(self._objects))
                self._objects.append(value)
        _HEAD.pack_into(buf, head_at, time, intern(category), n_fields)
        self._offsets.append(start)
        if (
            self.capacity_records is not None
            and len(self._offsets) > self.capacity_records
        ) or (self.capacity_bytes is not None and len(buf) > self.capacity_bytes):
            self._evict()

    def _evict(self) -> None:
        """Drop the oldest records down to capacity; reclaim the bytes."""
        drop = 0
        if self.capacity_records is not None:
            drop = max(0, len(self._offsets) - self.capacity_records)
        if self.capacity_bytes is not None:
            # Smallest drop whose suffix fits the byte budget; the newest
            # record survives even when it alone exceeds the budget (a
            # flight recorder that recorded nothing would be worse).
            total = len(self._buf)
            while (
                drop < len(self._offsets) - 1
                and total - self._offsets[drop] > self.capacity_bytes
            ):
                drop += 1
        if drop <= 0:
            return
        self.evicted += drop
        cut = self._offsets[drop]
        del self._buf[:cut]
        self._offsets = [off - cut for off in self._offsets[drop:]]

    # ------------------------------------------------------------------- read

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def nbytes(self) -> int:
        return len(self._buf)

    def iter_tuples(
        self, start: int = 0
    ) -> Iterator[Tuple[float, str, Tuple[Tuple[str, Any], ...]]]:
        """Yield ``(time, category, fields)`` decoded from record ``start`` on."""
        if start >= len(self._offsets):
            return
        buf = bytes(self._buf)
        lookup = self.strings.lookup
        objects = self._objects
        pos = self._offsets[start]
        end = len(buf)
        while pos < end:
            time, cid, n_fields = _HEAD.unpack_from(buf, pos)
            pos += _HEAD.size
            fields = []
            for _ in range(n_fields):
                kid, tag = _FIELD.unpack_from(buf, pos)
                pos += _FIELD.size
                if tag == _T_NONE:
                    value: Any = None
                elif tag == _T_FLOAT:
                    value = _F64.unpack_from(buf, pos)[0]
                    pos += 8
                elif tag == _T_INT:
                    value = _I64.unpack_from(buf, pos)[0]
                    pos += 8
                elif tag == _T_STR:
                    value = lookup(_U32.unpack_from(buf, pos)[0])
                    pos += 4
                elif tag == _T_TRUE:
                    value = True
                elif tag == _T_FALSE:
                    value = False
                else:
                    value = objects[_U32.unpack_from(buf, pos)[0]]
                    pos += 4
                fields.append((lookup(kid), value))
            yield (time, lookup(cid), tuple(fields))

    def clear(self) -> None:
        self._buf.clear()
        self._offsets.clear()
        self._objects.clear()
        self.strings = StringTable()
        self.evicted = 0

    # -------------------------------------------------------------- transport

    def to_payload(self) -> Dict[str, Any]:
        """A picklable form for shipping across a process boundary.

        Orders of magnitude smaller than a list of per-record dicts: one
        bytes blob plus the interning table, not N dicts of N tuples.
        """
        return {
            "strings": self.strings.as_list(),
            "packed": bytes(self._buf),
            "offset0": self._offsets[0] if self._offsets else 0,
            "n": len(self._offsets),
            "objects": list(self._objects),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BinaryTraceRing":
        ring = cls()
        ring.strings = StringTable(payload["strings"])
        ring._buf = bytearray(payload["packed"])
        ring._objects = list(payload["objects"])
        # Rebuild offsets by walking the buffer with a cursor.
        cursor = _Cursor(bytes(ring._buf), payload.get("offset0", 0))
        for _ in range(payload["n"]):
            ring._offsets.append(cursor.pos)
            cursor.skip_record()
        return ring

    # ------------------------------------------------------------------- disk

    def dump(
        self, path: str, aux_records: Optional[Iterable[Dict[str, Any]]] = None
    ) -> str:
        """Write a ``.ring`` file: magic, JSON header, strings, packed
        records, then any auxiliary (non-trace) records as NDJSON lines.

        ``python -m repro.obs report`` reads these next to ``.ndjson``
        parts; :func:`load_ring` is the programmatic reader.
        """
        aux_lines = [
            json.dumps(json_safe(rec), separators=(",", ":"))
            for rec in (aux_records or [])
        ]
        strings_blob = "\x00".join(self.strings.as_list()).encode("utf-8")
        packed = bytes(self._buf[self._offsets[0]:]) if self._offsets else b""
        header = {
            "schema": RING_SCHEMA,
            "n_records": len(self._offsets),
            "strings_len": len(strings_blob),
            "packed_len": len(packed),
            "n_aux": len(aux_lines),
            "objects": json_safe(list(self._objects)),
            # Forward compatibility: readers use the *writer's* tag->size
            # map to skip over records holding tags they don't know.
            "tag_sizes": {str(tag): size for tag, size in _VALUE_SIZE.items()},
            "evicted": self.evicted,
        }
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(RING_MAGIC)
            fh.write(json.dumps(header, separators=(",", ":")).encode("utf-8"))
            fh.write(b"\n")
            fh.write(strings_blob)
            fh.write(packed)
            for line in aux_lines:
                fh.write(line.encode("utf-8"))
                fh.write(b"\n")
        return path


def load_ring(path: str) -> List[Dict[str, Any]]:
    """Read a ``.ring`` dump back as sink-shaped record dicts.

    Trace records come back as ``{"type": "trace", "time": ...,
    "category": ..., **fields}`` — the exact shape an
    :class:`~repro.obs.sinks.NdjsonSink` would have written — followed by
    the dump's auxiliary records (meta/metric/profile rows), so reports
    and analyzers consume ``.ring`` and ``.ndjson`` through one path.

    Records packed with value tags this reader does not know (a newer
    writer) are skipped with a single warning rather than crashing; use
    :func:`load_ring_ex` to observe the skip count programmatically.
    """
    records, skipped, _evicted = load_ring_ex(path)
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} record(s) with unknown value tags "
            "(written by a newer repro?)",
            RuntimeWarning,
            stacklevel=2,
        )
    return records


def load_ring_ex(path: str) -> Tuple[List[Dict[str, Any]], int, int]:
    """Like :func:`load_ring`, returning ``(records, skipped, evicted)``.

    ``skipped`` counts records dropped because they carried value tags
    unknown to this reader (forward compatibility: the dump header's
    ``tag_sizes`` map lets us hop over them without losing framing);
    ``evicted`` is the writer-side flight-recorder eviction count, so
    forensics can tell "diverged" from "evicted before capture".
    """
    with open(path, "rb") as fh:
        magic = fh.readline()
        if magic != RING_MAGIC:
            raise ValueError(f"{path!r} is not a ring dump (bad magic)")
        header = json.loads(fh.readline().decode("utf-8"))
        strings_blob = fh.read(header["strings_len"])
        packed = fh.read(header["packed_len"])
        aux = [
            json.loads(line)
            for line in fh.read().decode("utf-8").splitlines()
            if line.strip()
        ]
    strings = (
        strings_blob.decode("utf-8").split("\x00") if strings_blob else []
    )
    objects = header.get("objects", [])
    tag_sizes = {
        int(tag): size
        for tag, size in (header.get("tag_sizes") or {}).items()
    }
    for tag, size in _VALUE_SIZE.items():
        tag_sizes.setdefault(tag, size)
    records: List[Dict[str, Any]] = []
    skipped = 0
    pos = 0
    end = len(packed)
    for _ in range(header["n_records"]):
        if pos >= end:
            break
        time, cid, n_fields = _HEAD.unpack_from(packed, pos)
        pos += _HEAD.size
        fields: List[Tuple[str, Any]] = []
        known = True
        for _ in range(n_fields):
            kid, tag = _FIELD.unpack_from(packed, pos)
            pos += _FIELD.size
            if tag == _T_NONE:
                value: Any = None
            elif tag == _T_FLOAT:
                value = _F64.unpack_from(packed, pos)[0]
            elif tag == _T_INT:
                value = _I64.unpack_from(packed, pos)[0]
            elif tag == _T_STR:
                value = strings[_U32.unpack_from(packed, pos)[0]]
            elif tag == _T_TRUE:
                value = True
            elif tag == _T_FALSE:
                value = False
            elif tag == _T_OBJ:
                value = objects[_U32.unpack_from(packed, pos)[0]]
            else:
                size = tag_sizes.get(tag)
                if size is None:
                    # No size hint either: framing is lost from here on.
                    return records + aux, skipped + 1, int(header.get("evicted", 0))
                known = False
                value = None
                pos += size
                continue
            pos += tag_sizes[tag]
            fields.append((strings[kid], value))
        if not known:
            skipped += 1
            continue
        rec = {"type": "trace", "time": time, "category": strings[cid]}
        rec.update(fields)
        records.append(rec)
    records.extend(aux)
    return records, skipped, int(header.get("evicted", 0))
