"""Streaming telemetry sinks.

A *sink* receives every telemetry record — trace events, closed spans,
metric snapshots, profiler rows — as a plain dict and persists or retains
it.  Sinks exist so large runs stop losing data when the in-memory
:class:`~repro.sim.trace.TraceLog` hits ``max_records``: the memory cap
bounds RAM, the sink path keeps the full stream.

* :class:`NdjsonSink` — newline-delimited JSON with size-based rotation
  (``run.ndjson`` → ``run.ndjson.1`` → …), the export format
  ``python -m repro.obs report`` consumes.
* :class:`RingSink` — a bounded in-memory ring of the most recent records,
  for always-on flight-recorder style capture with fixed memory.

:func:`read_ndjson` reads an export back and tolerates a truncated final
line (the normal artifact of a killed run), so reports survive crashes.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.util.tables import json_safe

__all__ = [
    "Sink",
    "NdjsonSink",
    "RingSink",
    "read_ndjson",
    "iter_ndjson",
    "ndjson_parts",
]


class Sink:
    """Sink interface: override :meth:`write`; flush/close are optional."""

    def write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to durable storage (default: no-op)."""

    def close(self) -> None:
        """Release resources; the sink must not be written afterwards."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NdjsonSink(Sink):
    """Append records to an NDJSON file, rotating by size.

    Parameters
    ----------
    path:
        Target file; parent directories are created.
    max_bytes:
        When a write would push the file past this size, the file rotates:
        ``path`` → ``path.1`` (existing ``path.N`` shift up, the oldest
        beyond ``max_files`` is deleted).  ``None`` disables rotation.
    max_files:
        How many rotated generations to keep besides the live file.
    append:
        Open the live file in append mode (default), so several sequential
        runs — e.g. campaign tasks executing inline — share one export.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        *,
        max_bytes: Optional[int] = None,
        max_files: int = 5,
        append: bool = True,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive or None")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.rotations = 0
        self.written = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w", encoding="utf-8")
        self._size = self._fh.tell()

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(json_safe(record), separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + len(data) > self.max_bytes
        ):
            self._rotate()
        self._fh.write(line)
        self._size += len(data)
        self.written += 1

    def _rotate(self) -> None:
        # Shift and replace steps tolerate FileNotFoundError: when several
        # processes share an export directory (shard workers, forked
        # campaign tasks) a sibling may have shifted or removed a
        # generation between our existence check and the rename.  Losing
        # the race must not kill the writer — each worker's own live file
        # is unique, so only already-rotated history can be contested.
        self._fh.close()
        oldest = f"{self.path}.{self.max_files}"
        try:
            if os.path.exists(oldest):
                os.remove(oldest)
        except FileNotFoundError:  # pragma: no cover - racing sibling
            pass
        for i in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{i}"
            try:
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            except FileNotFoundError:  # pragma: no cover - racing sibling
                pass
        try:
            os.replace(self.path, f"{self.path}.1")
        except FileNotFoundError:  # pragma: no cover - racing sibling
            pass
        self._fh = open(self.path, "w", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def rotated_paths(self) -> List[str]:
        """Existing rotated generations, oldest first."""
        out = []
        for i in range(self.max_files, 0, -1):
            candidate = f"{self.path}.{i}"
            if os.path.exists(candidate):
                out.append(candidate)
        return out

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class RingSink(Sink):
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.total = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def write(self, record: Dict[str, Any]) -> None:
        self._ring.append(record)
        self.total += 1

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.total - len(self._ring)

    def records(self) -> List[Dict[str, Any]]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


def ndjson_parts(path: Union[str, os.PathLike], max_files: int = 99) -> List[str]:
    """All on-disk parts of a (possibly rotated) export, oldest first.

    Returns existing ``path.N`` generations from highest N down, then the
    live ``path`` — the read-back counterpart of :class:`NdjsonSink`
    rotation, so a report covers the whole run, not just the newest file.
    """
    base = str(path)
    parts = [
        f"{base}.{i}"
        for i in range(max_files, 0, -1)
        if os.path.exists(f"{base}.{i}")
    ]
    if os.path.exists(base):
        parts.append(base)
    return parts


def iter_ndjson(path: Union[str, os.PathLike]) -> Iterator[Dict[str, Any]]:
    """Yield records from an NDJSON file, skipping a truncated final line.

    Use :func:`read_ndjson` to also learn how many lines were skipped.
    """
    records, _ = read_ndjson(path)
    return iter(records)


def read_ndjson(
    path: Union[str, os.PathLike]
) -> Tuple[List[Dict[str, Any]], int]:
    """Read an NDJSON export; returns ``(records, skipped_lines)``.

    A run killed mid-write leaves a torn final line; that line (and any
    other unparsable line, counted so corruption is visible rather than
    silent) is skipped instead of failing the whole report.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped
