"""Observability: spans, kernel profiling, streaming telemetry, reports.

The self-monitoring substrate the paper's adaptive IoBT loop assumes
(Fig. 3: systems that observe their own behavior), and the measurement
layer every performance PR reports against:

* :mod:`repro.obs.spans` — hierarchical spans recording virtual *and*
  wall-clock durations (``with sim.span("synthesis"): ...``);
* :mod:`repro.obs.profiler` — opt-in per-event-callback wall-clock
  attribution with hot-path tables and collapsed stacks for flamegraphs;
* :mod:`repro.obs.sinks` — streaming NDJSON (size-rotated) and in-memory
  ring sinks, so traces stop silently truncating at ``max_records``;
* :mod:`repro.obs.registry` — fixed-size counter/gauge/histogram
  instruments fed by :mod:`repro.net` and :mod:`repro.faults`;
* :mod:`repro.obs.tracing` — causal (Dapper-style) packet tracing:
  per-hop ``pkt.*`` events with trace contexts carried in packet headers;
* :mod:`repro.obs.analyze` — offline happens-before reconstruction,
  latency phase attribution, critical paths, Chrome-trace export;
* :mod:`repro.obs.telemetry` — the zero-tax binary trace plane: a
  preallocated struct-packed ring with string interning that the hot
  path appends to without building dicts, decoded lazily on first read;
* :mod:`repro.obs.merge` — cross-shard unification: deterministic trace
  merging plus :func:`~repro.obs.merge.merge_metrics` for registry
  states (counters summed, replicated families max-merged);
* :mod:`repro.obs.export` — OpenMetrics text rendering/parsing and the
  live snapshot/SLO layer;
* :mod:`repro.obs.forensics` — run forensics: RunManifests stamped next
  to every export, ``python -m repro.obs replay <manifest>``
  (deterministic re-execution with checkpointed asserts), and
  ``python -m repro.obs diff A B`` (first-divergence location with
  happens-before context);
* :mod:`repro.obs.report` — ``python -m repro.obs report run.ndjson``,
  ``python -m repro.obs trace run.ndjson``, and
  ``python -m repro.obs live <export-dir>``.

:func:`wire_from_env` turns the whole stack on from the environment
(``REPRO_OBS_NDJSON=<path>``, ``REPRO_OBS_PROFILE=1``,
``REPRO_OBS_TRACE=1``), which is how the benchmark harness and CI's
obs-smoke job opt in without code changes.
"""

from __future__ import annotations

import itertools
import os
from typing import Optional

from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    chrome_trace,
    render_trace_report,
    trace_summary_json,
)
from repro.obs.export import (
    check_slos,
    flatten_snapshot,
    live_snapshot,
    parse_openmetrics,
    parse_slo,
    render_live,
    render_openmetrics,
    state_from_records,
)
from repro.obs.merge import (
    merge_metrics,
    merge_traces,
    merged_fingerprint,
    payload_to_records,
)
from repro.obs.profiler import KernelProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import REPORT_SCHEMA, ReportInputError, collect_export
from repro.obs.report import main as report_main
from repro.obs.report import render_report, summarize_run
from repro.obs.telemetry import (
    BinaryTraceRing,
    RecordSchema,
    StringTable,
    load_ring,
    load_ring_ex,
)
from repro.obs.sinks import (
    NdjsonSink,
    RingSink,
    Sink,
    iter_ndjson,
    ndjson_parts,
    read_ndjson,
)
from repro.obs.spans import Span, SpanTracker
from repro.obs.tracing import TRACE_CATEGORIES, TRACE_HEADER, PacketTracer, TraceContext

__all__ = [
    "merge_traces",
    "merged_fingerprint",
    "merge_metrics",
    "payload_to_records",
    "BinaryTraceRing",
    "RecordSchema",
    "StringTable",
    "load_ring",
    "load_ring_ex",
    "render_openmetrics",
    "parse_openmetrics",
    "state_from_records",
    "live_snapshot",
    "flatten_snapshot",
    "render_live",
    "parse_slo",
    "check_slos",
    "REPORT_SCHEMA",
    "Span",
    "SpanTracker",
    "KernelProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sink",
    "NdjsonSink",
    "RingSink",
    "iter_ndjson",
    "ndjson_parts",
    "read_ndjson",
    "summarize_run",
    "render_report",
    "report_main",
    "collect_export",
    "ReportInputError",
    "PacketTracer",
    "TraceContext",
    "TRACE_HEADER",
    "TRACE_CATEGORIES",
    "TraceAnalysis",
    "analyze_trace",
    "chrome_trace",
    "render_trace_report",
    "trace_summary_json",
    "wire_from_env",
    # Forensics layer (resolved lazily via __getattr__; see below).
    "RunManifest",
    "content_hash",
    "manifest_path",
    "manifest_for_sim",
    "manifest_for_shard_result",
    "write_manifest",
    "load_manifest",
    "replay_manifest",
    "diff_records",
    "diff_exports",
    "dump_divergence",
    "ForensicsError",
    "ReplayError",
]

#: Names re-exported from :mod:`repro.obs.forensics`.  Resolved lazily:
#: forensics pulls in the campaign layer (for canonical spec hashing),
#: and importing that eagerly from here would cycle through the kernel's
#: ``repro.obs`` import at interpreter start.
_FORENSICS_EXPORTS = frozenset(
    {
        "RunManifest",
        "content_hash",
        "manifest_path",
        "manifest_for_sim",
        "manifest_for_shard_result",
        "write_manifest",
        "load_manifest",
        "replay_manifest",
        "diff_records",
        "diff_exports",
        "dump_divergence",
        "ForensicsError",
        "ReplayError",
    }
)


def __getattr__(name: str):
    if name in _FORENSICS_EXPORTS:
        from repro.obs import forensics

        return getattr(forensics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default rotation size for env-wired NDJSON sinks (64 MiB).
ENV_ROTATE_BYTES = 64 * 1024 * 1024

# Sequence for per-simulator export files under REPRO_OBS_NDJSON_DIR.
_export_seq = itertools.count(1)


def wire_from_env(sim, env: Optional[dict] = None, *, shard: Optional[int] = None):
    """Attach sinks/profiler/tracer to ``sim`` per ``REPRO_OBS_*`` variables.

    * ``REPRO_OBS_NDJSON`` — stream the trace to this NDJSON path
      (append mode, so sequential tasks of one run share the export);
    * ``REPRO_OBS_NDJSON_DIR`` — alternative to the above: each wired
      simulator gets its own ``task-<pid>-<seq>.ndjson`` file in this
      directory, so parallel campaign workers never interleave writes
      (``python -m repro.obs trace <dir>`` folds them back together);
    * ``REPRO_OBS_RING_DIR`` — like the above but binary: the simulator's
      trace is dumped as a struct-packed ``.ring`` file at export time
      (``sim.export_obs()``), the cheapest way to keep a full trace;
    * ``REPRO_OBS_ROTATE_BYTES`` — rotation threshold (default 64 MiB);
    * ``REPRO_OBS_RING_BUDGET_BYTES`` — byte budget for the in-memory
      binary trace ring: oldest records are evicted once the packed
      buffer exceeds it (counted on the ``trace.evicted`` metric);
    * ``REPRO_OBS_PROFILE`` — any non-empty value enables the kernel
      profiler; its rows reach the sink when ``sim.export_obs()`` runs;
    * ``REPRO_OBS_TRACE`` — any non-empty value enables causal packet
      tracing (:mod:`repro.obs.tracing`) on the simulator.

    Sinks are attached *lazily* (``add_sink(..., lazy=True)``): records
    reach them in batches at flush points rather than one write per emit,
    so env-wired telemetry rides the zero-tax staging path.  Every
    env-wired flow already flushes — ``sim.export_obs()`` and
    ``trace.flush_sinks()`` both drain the backlog first.

    ``shard`` namespaces the per-simulator export files (``shard<k>-``
    prefix) so shard workers sharing one export directory can never
    collide: fork-mode siblings inherit the parent's sequence counter and
    can race the same ``task-<pid>-<seq>`` name; the shard index is
    unique by construction.  (:class:`~repro.shard.runtime.ShardRuntime`
    passes its shard index; the ``REPRO_OBS_SHARD`` variable is the
    env-only override.)

    Returns ``sim`` so builders can chain it.
    """
    env = env if env is not None else os.environ
    if shard is None and env.get("REPRO_OBS_SHARD"):
        shard = int(env["REPRO_OBS_SHARD"])
    prefix = "" if shard is None else f"shard{shard}-"
    max_bytes = int(env.get("REPRO_OBS_ROTATE_BYTES", ENV_ROTATE_BYTES))
    path = env.get("REPRO_OBS_NDJSON")
    if path:
        sim.trace.add_sink(
            NdjsonSink(path, max_bytes=max_bytes, append=True), lazy=True
        )
    export_dir = env.get("REPRO_OBS_NDJSON_DIR")
    if export_dir:
        name = f"{prefix}task-{os.getpid()}-{next(_export_seq)}.ndjson"
        sim.trace.add_sink(
            NdjsonSink(
                os.path.join(export_dir, name),
                max_bytes=max_bytes,
                append=True,
            ),
            lazy=True,
        )
    ring_dir = env.get("REPRO_OBS_RING_DIR")
    if ring_dir:
        name = f"{prefix}task-{os.getpid()}-{next(_export_seq)}.ring"
        sim.ring_dump_path = os.path.join(ring_dir, name)
    ring_budget = env.get("REPRO_OBS_RING_BUDGET_BYTES")
    if ring_budget:
        sim.trace.ring_budget_bytes = int(ring_budget)
    if env.get("REPRO_OBS_PROFILE"):
        sim.enable_profiling()
    if env.get("REPRO_OBS_TRACE"):
        sim.enable_packet_tracing()
    return sim
