"""Causal (Dapper-style) packet tracing.

Node-local spans (:mod:`repro.obs.spans`) tell you what one node spent its
time on; they cannot tell you where a *packet's* end-to-end delay went as
it crossed MAC backoff, retransmissions, DTN custody, and routing detours.
:class:`PacketTracer` closes that gap: every originated packet gets a
:class:`TraceContext` (trace id, parent span id, hop index) carried in
``Packet.headers``, and every hop emits causally-linked events into the
ordinary trace/sink pipeline:

========================  ====================================================
category                  meaning
========================  ====================================================
``pkt.send``              packet originated at its source router
``pkt.spawn``             packet caused by another packet (ACK, RREP)
``pkt.enqueue``           one radio transmission handed to the MAC; carries
                          the per-hop delay components (backoff, airtime,
                          propagation, fault-injected extra)
``pkt.rx``                the transmission reached a receiver (new hop span
                          becomes the receiver's parent context)
``pkt.drop``              the transmission failed toward a receiver, with a
                          reason (``loss`` / ``link_blocked`` / ``gremlin`` /
                          ``corrupt`` / ``receiver_down`` / ``sender_down``)
``pkt.retx``              a link-layer (ARQ) or transport-layer retransmission
``pkt.custody``           a DTN store accepted custody of a bundle
``pkt.route_drop``        the routing layer abandoned the packet (TTL expiry,
                          geographic void, failed discovery, eviction, ...)
``pkt.deliver``           the packet reached an application handler
========================  ====================================================

Because every event is emitted at a virtual time the simulation was already
visiting (inside existing callbacks — the tracer never schedules events and
never draws randomness), enabling tracing perturbs neither event order nor
any RNG stream: the non-``pkt.*`` trace fingerprint of a traced run is
bit-identical to an untraced one, and with tracing disabled the whole
fingerprint is.  ``repro.obs.analyze`` reconstructs the happens-before
graph from these events offline (``python -m repro.obs trace``).

Enable per simulator (or via ``REPRO_OBS_TRACE=1`` through
:func:`repro.obs.wire_from_env`)::

    sim = Simulator(seed=7)
    tracer = sim.enable_packet_tracing()
    ... build network, run ...
    analysis = analyze_trace(sim.trace.iter_dicts())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = ["TraceContext", "PacketTracer", "TRACE_HEADER", "TRACE_CATEGORIES"]

#: Header key carrying the (trace_id, parent_span, hop) tuple.  The value is
#: an immutable tuple, so forwarding copies can never alias each other's
#: causal state even through a shallow header copy.
TRACE_HEADER = "_trace"

#: Every category the tracer can emit (fingerprint filters use this).
TRACE_CATEGORIES = (
    "pkt.send",
    "pkt.spawn",
    "pkt.enqueue",
    "pkt.rx",
    "pkt.drop",
    "pkt.retx",
    "pkt.custody",
    "pkt.route_drop",
    "pkt.deliver",
)


@dataclass(frozen=True)
class TraceContext:
    """The causal coordinates a packet carries between hops.

    ``trace_id`` identifies the logical packet (stable across forwarding
    copies and DTN replicas, distinct per transport retransmission);
    ``parent_span`` is the id of the transmission that most recently
    delivered the packet to its current holder (0 at the origin); ``hop``
    counts successful radio receptions so far.
    """

    trace_id: int
    parent_span: int
    hop: int

    def as_header(self) -> Tuple[int, int, int]:
        return (self.trace_id, self.parent_span, self.hop)

    @classmethod
    def from_header(cls, value: Any) -> Optional["TraceContext"]:
        if not (isinstance(value, tuple) and len(value) == 3):
            return None
        return cls(*value)


class PacketTracer:
    """Propagates trace contexts and emits per-hop causal events.

    One tracer serves one :class:`~repro.sim.kernel.Simulator`; networks
    read it from ``sim.packet_tracer`` on each transmit.  All ids come from
    tracer-local counters, so identically-seeded runs in fresh processes
    produce identical trace-id/span-id sequences.

    The contract every router must uphold (see DESIGN.md §3.4):

    1. originate packets through ``Router._stamp_origin`` (which stamps the
       root context);
    2. never copy a trace context between packets by hand — forwarding
       copies inherit it via ``Packet.copy_for_forwarding``; response
       packets (ACKs, RREPs) are linked with :meth:`inherit`;
    3. treat the ``_trace`` header as opaque and immutable.
    """

    def __init__(self, sim: "Simulator"):  # noqa: F821
        self.sim = sim
        self.enabled = True
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        # Packet.uid is a process-global counter, so raw uids differ when
        # the same scenario reruns in one process.  Records carry a
        # tracer-local renumbering instead (copies of one packet still
        # share one id), keeping traced fingerprints run-reproducible.
        self._uid_map: dict = {}

    def _uid(self, packet: "Packet") -> int:  # noqa: F821
        return self._uid_map.setdefault(packet.uid, len(self._uid_map) + 1)

    # -------------------------------------------------------------- contexts

    def context_of(self, packet: "Packet") -> Optional[TraceContext]:  # noqa: F821
        return TraceContext.from_header(packet.headers.get(TRACE_HEADER))

    def stamp_origin(self, packet: "Packet") -> Optional[int]:  # noqa: F821
        """Assign a root context to a freshly-originated packet.

        Idempotent: a packet already carrying a context (a transport retry
        re-entering ``Router.send``) keeps it.  Returns the trace id.
        """
        if not self.enabled:
            return None
        existing = packet.headers.get(TRACE_HEADER)
        if existing is not None:
            return existing[0]
        tid = next(self._trace_ids)
        packet.headers[TRACE_HEADER] = (tid, 0, 0)
        parent = packet.headers.pop("_trace_from", None)
        self.sim.trace.emit(
            "pkt.send",
            tid=tid,
            uid=self._uid(packet),
            src=packet.src,
            dst=packet.dst,
            kind=packet.kind.value,
            size_bits=packet.size_bits,
            flow=packet.flow_id,
            rmsg=packet.headers.get("rmsg"),
        )
        if parent is not None:
            parent_tid, parent_span, _hop = parent
            self.sim.trace.emit(
                "pkt.spawn",
                tid=tid,
                parent_tid=parent_tid,
                parent_span=parent_span,
                reason=packet.kind.value,
            )
        return tid

    def inherit(
        self, parent: "Packet", child: "Packet"  # noqa: F821
    ) -> None:
        """Mark ``child`` as causally spawned by ``parent`` (ACK by DATA,
        RREP by RREQ).  The link is recorded when the child is originated
        through ``Router._stamp_origin``."""
        if not self.enabled:
            return
        ctx = parent.headers.get(TRACE_HEADER)
        if ctx is not None and TRACE_HEADER not in child.headers:
            child.headers["_trace_from"] = ctx

    # ------------------------------------------------------------ radio hops

    def on_enqueue(
        self,
        sender_id: int,
        receiver_id: Optional[int],
        packet: "Packet",  # noqa: F821
        *,
        backoff_s: float,
        airtime_s: float,
        prop_s: float,
        extra_s: float,
    ) -> Optional[Tuple[int, int, int]]:
        """One transmission handed to the MAC; allocates its hop span.

        Returns an opaque token (trace id, span id, hop index) the network
        passes back to :meth:`on_rx` / :meth:`on_drop`, or ``None`` when
        the packet carries no context (originated before tracing was on).
        ``receiver_id`` is ``None`` for link-local broadcast.
        """
        if not self.enabled:
            return None
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return None
        tid, parent, hop = ctx
        span = next(self._span_ids)
        self.sim.trace.emit(
            "pkt.enqueue",
            tid=tid,
            span=span,
            parent=parent,
            hop=hop,
            src=sender_id,
            dst=-1 if receiver_id is None else receiver_id,
            uid=self._uid(packet),
            kind=packet.kind.value,
            backoff_s=backoff_s,
            airtime_s=airtime_s,
            prop_s=prop_s,
            extra_s=extra_s,
        )
        return (tid, span, hop)

    def on_rx(
        self,
        token: Tuple[int, int, int],
        packet: "Packet",  # noqa: F821
        sender_id: int,
        receiver_id: int,
        *,
        extra_s: float = 0.0,
    ) -> None:
        """The transmission reached ``receiver_id``.

        Rebinds the packet's context so everything the receiver does next
        (forwarding copies, local delivery) is parented to this hop span.
        Call immediately before handing the packet to the receiver.
        """
        tid, span, hop = token
        packet.headers[TRACE_HEADER] = (tid, span, hop + 1)
        self.sim.trace.emit(
            "pkt.rx",
            tid=tid,
            span=span,
            src=sender_id,
            dst=receiver_id,
            hop=hop + 1,
            extra_s=extra_s,
        )

    def on_drop(
        self,
        token: Tuple[int, int, int],
        sender_id: int,
        receiver_id: Optional[int],
        reason: str,
    ) -> None:
        """The transmission failed toward ``receiver_id`` (``reason`` from
        the module docstring's table)."""
        tid, span, _hop = token
        self.sim.trace.emit(
            "pkt.drop",
            tid=tid,
            span=span,
            src=sender_id,
            dst=-1 if receiver_id is None else receiver_id,
            reason=reason,
        )

    def drop_unsent(
        self, packet: "Packet", sender_id: int, reason: str  # noqa: F821
    ) -> None:
        """A transmission that never reached the MAC (sender already down)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        self.sim.trace.emit(
            "pkt.drop",
            tid=ctx[0],
            span=0,
            src=sender_id,
            dst=packet.dst if packet.dst is not None else -1,
            reason=reason,
        )

    # ----------------------------------------------------- protocol layers

    def on_retransmit(
        self,
        packet: "Packet",  # noqa: F821
        sender_id: int,
        *,
        attempt: int,
        layer: str,
        msg_id: Optional[int] = None,
    ) -> None:
        """A retry: ``layer`` is ``"link"`` (ARQ inside ``send_reliable``)
        or ``"transport"`` (a fresh end-to-end attempt)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        self.sim.trace.emit(
            "pkt.retx",
            tid=ctx[0] if ctx is not None else None,
            src=sender_id,
            attempt=attempt,
            layer=layer,
            msg=msg_id,
        )

    def on_custody(
        self,
        node_id: int,
        packet: "Packet",  # noqa: F821
        *,
        copies: int,
    ) -> None:
        """A DTN store accepted custody of a bundle replica."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        self.sim.trace.emit(
            "pkt.custody",
            tid=ctx[0],
            node=node_id,
            uid=self._uid(packet),
            copies=copies,
        )

    def on_route_drop(
        self, node_id: int, packet: "Packet", reason: str  # noqa: F821
    ) -> None:
        """The routing layer gave up on this copy (not a radio failure)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        self.sim.trace.emit(
            "pkt.route_drop",
            tid=ctx[0],
            node=node_id,
            uid=self._uid(packet),
            reason=reason,
        )

    def on_deliver(self, node_id: int, packet: "Packet") -> None:  # noqa: F821
        """The packet reached an application handler at ``node_id``."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        tid, parent_span, hop = ctx
        self.sim.trace.emit(
            "pkt.deliver",
            tid=tid,
            span=parent_span,
            node=node_id,
            uid=self._uid(packet),
            hops=hop,
            latency_s=self.sim.now - packet.created_at,
        )
