"""Causal (Dapper-style) packet tracing.

Node-local spans (:mod:`repro.obs.spans`) tell you what one node spent its
time on; they cannot tell you where a *packet's* end-to-end delay went as
it crossed MAC backoff, retransmissions, DTN custody, and routing detours.
:class:`PacketTracer` closes that gap: every originated packet gets a
:class:`TraceContext` (trace id, parent span id, hop index) carried in
``Packet.headers``, and every hop emits causally-linked events into the
ordinary trace/sink pipeline:

========================  ====================================================
category                  meaning
========================  ====================================================
``pkt.send``              packet originated at its source router
``pkt.spawn``             packet caused by another packet (ACK, RREP)
``pkt.enqueue``           one radio transmission handed to the MAC; carries
                          the per-hop delay components (backoff, airtime,
                          propagation, fault-injected extra)
``pkt.rx``                the transmission reached a receiver (new hop span
                          becomes the receiver's parent context)
``pkt.drop``              the transmission failed toward a receiver, with a
                          reason (``loss`` / ``link_blocked`` / ``gremlin`` /
                          ``corrupt`` / ``receiver_down`` / ``sender_down``)
``pkt.retx``              a link-layer (ARQ) or transport-layer retransmission
``pkt.custody``           a DTN store accepted custody of a bundle
``pkt.route_drop``        the routing layer abandoned the packet (TTL expiry,
                          geographic void, failed discovery, eviction, ...)
``pkt.deliver``           the packet reached an application handler
========================  ====================================================

Because every event is emitted at a virtual time the simulation was already
visiting (inside existing callbacks — the tracer never schedules events and
never draws randomness), enabling tracing perturbs neither event order nor
any RNG stream: the non-``pkt.*`` trace fingerprint of a traced run is
bit-identical to an untraced one, and with tracing disabled the whole
fingerprint is.  ``repro.obs.analyze`` reconstructs the happens-before
graph from these events offline (``python -m repro.obs trace``).

Enable per simulator (or via ``REPRO_OBS_TRACE=1`` through
:func:`repro.obs.wire_from_env`)::

    sim = Simulator(seed=7)
    tracer = sim.enable_packet_tracing()
    ... build network, run ...
    analysis = analyze_trace(sim.trace.iter_dicts())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.obs.telemetry import RecordSchema

__all__ = ["TraceContext", "PacketTracer", "TRACE_HEADER", "TRACE_CATEGORIES"]

#: Header key carrying the (trace_id, parent_span, hop) tuple.  The value is
#: an immutable tuple, so forwarding copies can never alias each other's
#: causal state even through a shallow header copy.
TRACE_HEADER = "_trace"

#: Every category the tracer can emit (fingerprint filters use this).
TRACE_CATEGORIES = (
    "pkt.send",
    "pkt.spawn",
    "pkt.enqueue",
    "pkt.rx",
    "pkt.drop",
    "pkt.retx",
    "pkt.custody",
    "pkt.route_drop",
    "pkt.deliver",
)

# Pre-sorted field schemas, one per category: the tracer knows its field
# sets statically, so every hop event takes TraceLog.emit_schema's
# positional fast path (no kwargs dict, no per-record key sort) — the
# bulk of what made tracing-on runs 51% slower than tracing-off.
_S_SEND = RecordSchema(
    "pkt.send",
    ("dst", "flow", "kind", "rmsg", "size_bits", "src", "tid", "uid"),
)
_S_SPAWN = RecordSchema(
    "pkt.spawn", ("parent_span", "parent_tid", "reason", "tid")
)
_S_ENQUEUE = RecordSchema(
    "pkt.enqueue",
    (
        "airtime_s", "backoff_s", "dst", "extra_s", "hop", "kind",
        "parent", "prop_s", "span", "src", "tid", "uid",
    ),
)
_S_RX = RecordSchema("pkt.rx", ("dst", "extra_s", "hop", "span", "src", "tid"))
_S_DROP = RecordSchema("pkt.drop", ("dst", "reason", "span", "src", "tid"))
_S_RETX = RecordSchema("pkt.retx", ("attempt", "layer", "msg", "src", "tid"))
_S_CUSTODY = RecordSchema("pkt.custody", ("copies", "node", "tid", "uid"))
_S_ROUTE_DROP = RecordSchema("pkt.route_drop", ("node", "reason", "tid", "uid"))
_S_DELIVER = RecordSchema(
    "pkt.deliver", ("hops", "latency_s", "node", "span", "tid", "uid")
)

# Integer schema ids for the inlined staging fast paths below: staging the id
# instead of the RecordSchema object keeps the staged tuples all-atomic, so
# CPython's GC untracks them at their first collection instead of rescanning
# tens of thousands of live tuples every gen1/gen2 pass mid-run.
_I_SEND = _S_SEND.sid
_I_SPAWN = _S_SPAWN.sid
_I_ENQUEUE = _S_ENQUEUE.sid
_I_RX = _S_RX.sid
_I_DROP = _S_DROP.sid
_I_RETX = _S_RETX.sid
_I_CUSTODY = _S_CUSTODY.sid
_I_ROUTE_DROP = _S_ROUTE_DROP.sid
_I_DELIVER = _S_DELIVER.sid


@dataclass(frozen=True)
class TraceContext:
    """The causal coordinates a packet carries between hops.

    ``trace_id`` identifies the logical packet (stable across forwarding
    copies and DTN replicas, distinct per transport retransmission);
    ``parent_span`` is the id of the transmission that most recently
    delivered the packet to its current holder (0 at the origin); ``hop``
    counts successful radio receptions so far.
    """

    trace_id: int
    parent_span: int
    hop: int

    def as_header(self) -> Tuple[int, int, int]:
        return (self.trace_id, self.parent_span, self.hop)

    @classmethod
    def from_header(cls, value: Any) -> Optional["TraceContext"]:
        if not (isinstance(value, tuple) and len(value) == 3):
            return None
        return cls(*value)


class PacketTracer:
    """Propagates trace contexts and emits per-hop causal events.

    One tracer serves one :class:`~repro.sim.kernel.Simulator`; networks
    read it from ``sim.packet_tracer`` on each transmit.  All ids come from
    tracer-local counters, so identically-seeded runs in fresh processes
    produce identical trace-id/span-id sequences.

    The contract every router must uphold (see DESIGN.md §3.4):

    1. originate packets through ``Router._stamp_origin`` (which stamps the
       root context);
    2. never copy a trace context between packets by hand — forwarding
       copies inherit it via ``Packet.copy_for_forwarding``; response
       packets (ACKs, RREPs) are linked with :meth:`inherit`;
    3. treat the ``_trace`` header as opaque and immutable.
    """

    def __init__(self, sim: "Simulator"):  # noqa: F821
        self.sim = sim
        # Bound once: the tracer is created after any TraceLog replacement
        # (ShardRuntime swaps sim.trace at construction and never enables
        # a tracer), so caching the log saves two attribute hops per hop
        # event on the hottest instrumented path in the tree.
        self._trace = sim.trace
        self.enabled = True
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        # Packet.uid is a process-global counter, so raw uids differ when
        # the same scenario reruns in one process.  Records carry a
        # tracer-local renumbering instead (copies of one packet still
        # share one id), keeping traced fingerprints run-reproducible.
        self._uid_map: dict = {}

    def _uid(self, packet: "Packet") -> int:  # noqa: F821
        m = self._uid_map
        uid = m.get(packet.uid)
        if uid is None:
            uid = m[packet.uid] = len(m) + 1
        return uid

    # -------------------------------------------------------------- contexts

    def context_of(self, packet: "Packet") -> Optional[TraceContext]:  # noqa: F821
        return TraceContext.from_header(packet.headers.get(TRACE_HEADER))

    def stamp_origin(self, packet: "Packet") -> Optional[int]:  # noqa: F821
        """Assign a root context to a freshly-originated packet.

        Idempotent: a packet already carrying a context (a transport retry
        re-entering ``Router.send``) keeps it.  Returns the trace id.
        """
        if not self.enabled:
            return None
        existing = packet.headers.get(TRACE_HEADER)
        if existing is not None:
            return existing[0]
        tid = next(self._trace_ids)
        headers = packet.headers
        headers[TRACE_HEADER] = (tid, 0, 0)
        parent = headers.pop("_trace_from", None)
        kind = packet.kind._value_
        uid_map = self._uid_map
        uid = uid_map.get(packet.uid)
        if uid is None:
            uid = uid_map[packet.uid] = len(uid_map) + 1
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((
                t._sim.now, _I_SEND,
                packet.dst, packet.flow_id, kind, headers.get("rmsg"),
                packet.size_bits, packet.src, tid, uid,
            ))
            t._budget = budget - 1
        else:
            t.emit_schema(
                _S_SEND,
                (
                    packet.dst, packet.flow_id, kind, headers.get("rmsg"),
                    packet.size_bits, packet.src, tid, uid,
                ),
            )
        if parent is not None:
            parent_tid, parent_span, _hop = parent
            budget = t._budget
            if budget:
                t._stage((t._sim.now, _I_SPAWN, parent_span, parent_tid, kind, tid))
                t._budget = budget - 1
            else:
                t.emit_schema(_S_SPAWN, (parent_span, parent_tid, kind, tid))
        return tid

    def inherit(
        self, parent: "Packet", child: "Packet"  # noqa: F821
    ) -> None:
        """Mark ``child`` as causally spawned by ``parent`` (ACK by DATA,
        RREP by RREQ).  The link is recorded when the child is originated
        through ``Router._stamp_origin``."""
        if not self.enabled:
            return
        ctx = parent.headers.get(TRACE_HEADER)
        if ctx is not None and TRACE_HEADER not in child.headers:
            child.headers["_trace_from"] = ctx

    # ------------------------------------------------------------ radio hops

    def on_enqueue(
        self,
        sender_id: int,
        receiver_id: Optional[int],
        packet: "Packet",  # noqa: F821
        backoff_s: float = 0.0,
        airtime_s: float = 0.0,
        prop_s: float = 0.0,
        extra_s: float = 0.0,
    ) -> Optional[Tuple[int, int, int]]:
        """One transmission handed to the MAC; allocates its hop span.

        Returns an opaque token (trace id, span id, hop index) the network
        passes back to :meth:`on_rx` / :meth:`on_drop`, or ``None`` when
        the packet carries no context (originated before tracing was on).
        ``receiver_id`` is ``None`` for link-local broadcast.  The delay
        components are positional so the dispatcher hot path skips the
        kwargs dict.
        """
        if not self.enabled:
            return None
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return None
        tid, parent, hop = ctx
        span = next(self._span_ids)
        dst = -1 if receiver_id is None else receiver_id
        # ._value_ skips Enum's DynamicClassAttribute descriptor (~4x
        # cheaper; this and on_rx run once per radio transmission).
        kind = packet.kind._value_
        uid_map = self._uid_map
        uid = uid_map.get(packet.uid)
        if uid is None:
            uid = uid_map[packet.uid] = len(uid_map) + 1
        # Inlined TraceLog.emit_schema staging (here and in every other
        # emitter): these methods fire once per radio transmission or per
        # protocol action, so even the method-call overhead of emit_schema
        # shows up in the tracing tax.  Field order must match the
        # schema's keys in both branches.
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((
                t._sim.now, _I_ENQUEUE,
                airtime_s, backoff_s, dst, extra_s, hop, kind,
                parent, prop_s, span, sender_id, tid, uid,
            ))
            t._budget = budget - 1
        else:
            t.emit_schema(
                _S_ENQUEUE,
                (
                    airtime_s, backoff_s, dst, extra_s, hop, kind,
                    parent, prop_s, span, sender_id, tid, uid,
                ),
            )
        return (tid, span, hop)

    def on_rx(
        self,
        token: Tuple[int, int, int],
        packet: "Packet",  # noqa: F821
        sender_id: int,
        receiver_id: int,
        extra_s: float = 0.0,
    ) -> None:
        """The transmission reached ``receiver_id``.

        Rebinds the packet's context so everything the receiver does next
        (forwarding copies, local delivery) is parented to this hop span.
        Call immediately before handing the packet to the receiver.
        """
        tid, span, hop = token
        hop += 1
        packet.headers[TRACE_HEADER] = (tid, span, hop)
        t = self._trace
        budget = t._budget
        if budget:
            t._stage(
                (t._sim.now, _I_RX, receiver_id, extra_s, hop, span, sender_id, tid)
            )
            t._budget = budget - 1
        else:
            t.emit_schema(_S_RX, (receiver_id, extra_s, hop, span, sender_id, tid))

    def on_drop(
        self,
        token: Tuple[int, int, int],
        sender_id: int,
        receiver_id: Optional[int],
        reason: str,
    ) -> None:
        """The transmission failed toward ``receiver_id`` (``reason`` from
        the module docstring's table)."""
        tid, span, _hop = token
        dst = -1 if receiver_id is None else receiver_id
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((t._sim.now, _I_DROP, dst, reason, span, sender_id, tid))
            t._budget = budget - 1
        else:
            t.emit_schema(_S_DROP, (dst, reason, span, sender_id, tid))

    def on_drops(
        self,
        token: Tuple[int, int, int],
        sender_id: int,
        drops: "list[Tuple[int, str]]",
    ) -> None:
        """Batched :meth:`on_drop`: ordered ``(receiver_id, reason)`` pairs
        sharing one hop span — a broadcast's failed receptions, which are
        all decided inside one event.  Emits records identical (content and
        order) to per-pair ``on_drop`` calls while paying the call and
        guard overhead once per batch."""
        tid, span, _hop = token
        t = self._trace
        budget = t._budget
        if budget >= len(drops):
            stage = t._stage
            now = t._sim.now
            for dst, reason in drops:
                stage((now, _I_DROP, dst, reason, span, sender_id, tid))
            t._budget = budget - len(drops)
        else:
            for dst, reason in drops:
                t.emit_schema(_S_DROP, (dst, reason, span, sender_id, tid))

    def drop_unsent(
        self, packet: "Packet", sender_id: int, reason: str  # noqa: F821
    ) -> None:
        """A transmission that never reached the MAC (sender already down)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        dst = packet.dst if packet.dst is not None else -1
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((t._sim.now, _I_DROP, dst, reason, 0, sender_id, ctx[0]))
            t._budget = budget - 1
        else:
            t.emit_schema(_S_DROP, (dst, reason, 0, sender_id, ctx[0]))

    # ----------------------------------------------------- protocol layers

    def on_retransmit(
        self,
        packet: "Packet",  # noqa: F821
        sender_id: int,
        *,
        attempt: int,
        layer: str,
        msg_id: Optional[int] = None,
    ) -> None:
        """A retry: ``layer`` is ``"link"`` (ARQ inside ``send_reliable``)
        or ``"transport"`` (a fresh end-to-end attempt)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        tid = ctx[0] if ctx is not None else None
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((t._sim.now, _I_RETX, attempt, layer, msg_id, sender_id, tid))
            t._budget = budget - 1
        else:
            t.emit_schema(_S_RETX, (attempt, layer, msg_id, sender_id, tid))

    def on_custody(
        self,
        node_id: int,
        packet: "Packet",  # noqa: F821
        *,
        copies: int,
    ) -> None:
        """A DTN store accepted custody of a bundle replica."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((t._sim.now, _I_CUSTODY, copies, node_id, ctx[0], self._uid(packet)))
            t._budget = budget - 1
        else:
            t.emit_schema(_S_CUSTODY, (copies, node_id, ctx[0], self._uid(packet)))

    def on_route_drop(
        self, node_id: int, packet: "Packet", reason: str  # noqa: F821
    ) -> None:
        """The routing layer gave up on this copy (not a radio failure)."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        t = self._trace
        budget = t._budget
        if budget:
            t._stage((t._sim.now, _I_ROUTE_DROP, node_id, reason, ctx[0], self._uid(packet)))
            t._budget = budget - 1
        else:
            t.emit_schema(_S_ROUTE_DROP, (node_id, reason, ctx[0], self._uid(packet)))

    def on_deliver(self, node_id: int, packet: "Packet") -> None:  # noqa: F821
        """The packet reached an application handler at ``node_id``."""
        if not self.enabled:
            return
        ctx = packet.headers.get(TRACE_HEADER)
        if ctx is None:
            return
        tid, parent_span, hop = ctx
        latency = self.sim.now - packet.created_at
        uid = self._uid(packet)
        t = self._trace
        budget = t._budget
        if budget:
            t._stage(
                (t._sim.now, _I_DELIVER, hop, latency, node_id, parent_span, tid, uid)
            )
            t._budget = budget - 1
        else:
            t.emit_schema(
                _S_DELIVER, (hop, latency, node_id, parent_span, tid, uid)
            )
