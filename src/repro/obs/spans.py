"""Hierarchical spans: named intervals of virtual *and* wall-clock time.

A span brackets a phase of work (``with sim.span("synthesis"): ...``),
nests, carries attributes, and records both how much *simulated* time
elapsed while it was open and how much *wall-clock* time the host spent.
The former answers model questions ("how long did re-synthesis take the
battlefield?"), the latter answers engineering questions ("where does the
harness spend its real seconds?") — the self-monitoring substrate the
paper's adaptive IoBT loop assumes.

Spans are tracked per *scope*.  Generator-based processes interleave in
virtual time, so a single global stack would mis-nest the moment two
processes hold spans across yields; each scope (defaulting to ``"main"``,
typically the process name) gets its own stack, and closing removes the
span by identity, so interleaved open/close orders cannot corrupt a
neighbour's stack.

Closed spans are appended to :attr:`SpanTracker.finished` and emitted as
``obs.span`` trace records, which means any attached sink (see
:mod:`repro.obs.sinks`) streams them out for ``repro.obs report``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "SpanTracker"]


class Span:
    """One named interval; also the context manager that closes it."""

    __slots__ = (
        "name",
        "scope",
        "attrs",
        "parent",
        "depth",
        "t_start",
        "t_end",
        "wall_start",
        "wall_end",
        "_tracker",
    )

    def __init__(
        self,
        tracker: "SpanTracker",
        name: str,
        scope: str,
        parent: Optional["Span"],
        attrs: Dict[str, Any],
    ):
        self._tracker = tracker
        self.name = name
        self.scope = scope
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.attrs = attrs
        self.t_start = tracker._sim.now
        self.t_end: Optional[float] = None
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None

    # ------------------------------------------------------------- durations

    @property
    def open(self) -> bool:
        return self.t_end is None

    @property
    def virtual_s(self) -> float:
        """Simulated time elapsed while the span was open."""
        end = self.t_end if self.t_end is not None else self._tracker._sim.now
        return end - self.t_start

    @property
    def wall_s(self) -> float:
        """Wall-clock time elapsed while the span was open (inclusive of
        everything the host executed meanwhile, including other processes)."""
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def path(self) -> str:
        """Semicolon-joined ancestry, collapsed-stack style (``a;b;c``)."""
        parts: List[str] = []
        node: Optional[Span] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return ";".join(reversed(parts))

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self.t_end is not None:
            return
        self.t_end = self._tracker._sim.now
        self.wall_end = time.perf_counter()
        self._tracker._close(self)

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"Span({self.path!r}, scope={self.scope!r}, {state})"


class SpanTracker:
    """Per-scope span stacks attached to one simulator."""

    def __init__(self, sim: "Simulator"):  # noqa: F821
        self._sim = sim
        self._stacks: Dict[str, List[Span]] = {}
        self.finished: List[Span] = []
        #: Emit an ``obs.span`` trace record for every closed span.
        self.emit_trace = True

    def span(self, name: str, *, scope: str = "main", **attrs: Any) -> Span:
        """Open a span; close via ``with`` or :meth:`Span.close`."""
        stack = self._stacks.setdefault(scope, [])
        parent = stack[-1] if stack else None
        span = Span(self, name, scope, parent, attrs)
        stack.append(span)
        return span

    def current(self, scope: str = "main") -> Optional[Span]:
        """The innermost open span of ``scope``, if any."""
        stack = self._stacks.get(scope)
        return stack[-1] if stack else None

    def depth(self, scope: str = "main") -> int:
        return len(self._stacks.get(scope, ()))

    def _close(self, span: Span) -> None:
        stack = self._stacks.get(span.scope, [])
        # Remove by identity: an interleaved (or even misnested) close must
        # never pop a different span off this — or any other — stack.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        self.finished.append(span)
        trace = self._sim.trace
        if self.emit_trace and trace.enabled:
            # The in-memory trace record stays deterministic (virtual time
            # only) so span-instrumented runs keep stable fingerprints; the
            # wall-clock figure goes straight to the sinks as a dedicated
            # record type for `repro.obs report`.
            trace.emit(
                "obs.span",
                name=span.name,
                scope=span.scope,
                path=span.path,
                depth=span.depth,
                virtual_s=span.virtual_s,
                **span.attrs,
            )
            trace.write_record(
                {
                    "type": "span",
                    "time": span.t_end,
                    "name": span.name,
                    "scope": span.scope,
                    "path": span.path,
                    "depth": span.depth,
                    "virtual_s": span.virtual_s,
                    "wall_s": span.wall_s,
                    **span.attrs,
                }
            )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by path: count and total durations."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.finished:
            agg = out.setdefault(
                span.path, {"count": 0, "virtual_s": 0.0, "wall_s": 0.0}
            )
            agg["count"] += 1
            agg["virtual_s"] += span.virtual_s
            agg["wall_s"] += span.wall_s
        return out
