"""Run reports: summarize a telemetry export.

``python -m repro.obs report run.ndjson`` digests the record stream a
:class:`~repro.obs.sinks.NdjsonSink` captured — trace events, spans,
metric snapshots, profiler rows — into one run summary: per-category trace
counts, span aggregates, the top-N wall-clock hot paths, and final metric
values.  ``--json`` writes the summary machine-readably (stamped with a
``schema`` version) so CI can assert on it; the text rendering is for
humans.

``python -m repro.obs trace run.ndjson`` runs the causal packet-trace
analyzer (:mod:`repro.obs.analyze`) over the same export: per-flow latency
phase breakdowns, the delivery critical path, and optional Chrome-trace
JSON export (``--chrome out.json``).

``python -m repro.obs live run-dir --slo 'kernel.events_per_sec>=1000'``
watches an export in a snapshot loop: kernel event rate, per-router
delivery ratios, service breaker states, and shard lag in one screen,
with counter rates between samples and exit status 1 when an SLO
threshold is breached (see :mod:`repro.obs.export`).

``python -m repro.obs replay run.ndjson.manifest.json`` re-executes a run
from its RunManifest and asserts the replayed trace fingerprint matches,
checkpoint by checkpoint; ``python -m repro.obs diff A B`` locates the
first record on which two exports disagree (see
:mod:`repro.obs.forensics`).

All subcommands accept a single export file, a rotated export (the
``path.N`` generations are folded in automatically), or a directory
mixing ``*.ndjson`` exports and ``*.ring`` binary trace dumps; a missing
or empty input is a clear error with exit status 2, not a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.sinks import ndjson_parts, read_ndjson
from repro.obs.telemetry import load_ring_ex
from repro.util.tables import json_safe

__all__ = [
    "summarize_run",
    "render_report",
    "collect_export",
    "ReportInputError",
    "REPORT_SCHEMA",
    "main",
]

#: Version stamp for ``report --json`` output.  Bump when summary keys
#: change shape so downstream consumers can dispatch on it.
REPORT_SCHEMA = "obs-report/2"


class ReportInputError(Exception):
    """The CLI input path held no readable telemetry."""


def collect_export(path: str) -> Tuple[List[Dict[str, Any]], int, List[str]]:
    """Load every record the input path holds.

    ``path`` may be an export file (rotated generations are included), a
    ``*.ring`` binary trace dump, or a directory mixing ``*.ndjson``
    exports (each with its rotations) and ``*.ring`` dumps — shard
    workers and the serial path may land different formats in the same
    export directory.  Returns ``(records, skipped, parts)``, where
    ``skipped`` counts unparsable NDJSON lines plus ring records carrying
    value tags this repro version does not know (written by a newer one).
    Raises :class:`ReportInputError` with a human-ready message when the
    path is missing, matches nothing, or yields zero records.
    """
    if os.path.isdir(path):
        names = sorted(os.listdir(path))
        bases = [
            os.path.join(path, name) for name in names if name.endswith(".ndjson")
        ]
        rings = [
            os.path.join(path, name) for name in names if name.endswith(".ring")
        ]
        if not bases and not rings:
            raise ReportInputError(
                f"no *.ndjson or *.ring exports found in directory {path!r} — "
                "was the run started with REPRO_OBS_NDJSON_DIR or "
                "REPRO_OBS_RING_DIR set?"
            )
        parts = [part for base in bases for part in ndjson_parts(base)]
        parts.extend(rings)
    elif path.endswith(".ring"):
        parts = [path] if os.path.exists(path) else []
        if not parts:
            raise ReportInputError(f"ring dump not found: {path!r}")
    else:
        parts = ndjson_parts(path)
        if not parts:
            raise ReportInputError(
                f"export not found: {path!r} (no such file and no rotated "
                "generations next to it)"
            )
    records: List[Dict[str, Any]] = []
    skipped = 0
    for part in parts:
        if part.endswith(".ring"):
            ring_records, ring_skipped, _evicted = load_ring_ex(part)
            records.extend(ring_records)
            skipped += ring_skipped
            continue
        part_records, part_skipped = read_ndjson(part)
        records.extend(part_records)
        skipped += part_skipped
    if not records:
        raise ReportInputError(
            f"export at {path!r} contains no records "
            f"({len(parts)} file(s) read, {skipped} unparsable line(s)) — "
            "nothing to report"
        )
    return records, skipped, parts


def summarize_run(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a telemetry record stream into one summary dict.

    Profiler rows are cumulative snapshots — a run that exports twice
    reports each label's *latest* (largest) totals, not their sum.
    """
    trace_counts: Dict[str, int] = {}
    span_agg: Dict[str, Dict[str, float]] = {}
    profile: Dict[str, Dict[str, float]] = {}
    metrics: Dict[str, Dict[str, Any]] = {}
    meta_events: List[Dict[str, Any]] = []
    n_records = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None

    for record in records:
        n_records += 1
        rtype = record.get("type", "trace")
        if rtype == "trace":
            category = record.get("category", "?")
            trace_counts[category] = trace_counts.get(category, 0) + 1
            t = record.get("time")
            if isinstance(t, (int, float)):
                t_min = t if t_min is None else min(t_min, t)
                t_max = t if t_max is None else max(t_max, t)
        elif rtype == "span":
            path = record.get("path", record.get("name", "?"))
            agg = span_agg.setdefault(
                path, {"count": 0, "virtual_s": 0.0, "wall_s": 0.0}
            )
            agg["count"] += 1
            agg["virtual_s"] += float(record.get("virtual_s") or 0.0)
            agg["wall_s"] += float(record.get("wall_s") or 0.0)
        elif rtype == "profile":
            label = record.get("label", "?")
            entry = profile.setdefault(label, {"calls": 0, "wall_s": 0.0})
            entry["calls"] = max(entry["calls"], int(record.get("calls") or 0))
            entry["wall_s"] = max(
                entry["wall_s"], float(record.get("wall_s") or 0.0)
            )
        elif rtype == "metric":
            name = record.get("name", "?")
            metrics[name] = {
                k: v for k, v in record.items() if k not in ("type", "name")
            }
        elif rtype == "meta":
            # Exports written by older kernels can carry inf/nan rates
            # (zero wall-elapsed runs); scrub them here so the summary —
            # printed or JSON-dumped — never propagates non-finite floats.
            meta_events.append(json_safe(record))

    hot_paths = sorted(
        (
            {"label": label, "calls": entry["calls"], "wall_s": entry["wall_s"]}
            for label, entry in profile.items()
        ),
        key=lambda row: (-row["wall_s"], row["label"]),
    )
    return {
        "schema": REPORT_SCHEMA,
        "n_records": n_records,
        "virtual_time": {"min": t_min, "max": t_max},
        "trace_counts": dict(sorted(trace_counts.items())),
        "spans": dict(sorted(span_agg.items())),
        "hot_paths": hot_paths,
        "metrics": dict(sorted(metrics.items())),
        "meta_events": meta_events,
    }


def render_report(summary: Dict[str, Any], *, top: int = 10) -> str:
    """Human-readable rendering of :func:`summarize_run` output."""
    lines: List[str] = []
    vt = summary["virtual_time"]
    lines.append(
        f"records: {summary['n_records']}  "
        f"virtual time: [{vt['min']}, {vt['max']}]"
    )

    if summary["trace_counts"]:
        lines.append("")
        lines.append("== trace records by category ==")
        width = max(len(c) for c in summary["trace_counts"])
        for category, count in summary["trace_counts"].items():
            lines.append(f"  {category.ljust(width)}  {count}")

    hot = summary["hot_paths"][:top]
    if hot:
        total = sum(row["wall_s"] for row in summary["hot_paths"])
        lines.append("")
        lines.append(f"== top {len(hot)} wall-clock hot paths ==")
        lines.append(f"  {'wall_s':>10}  {'share':>6}  {'calls':>9}  label")
        for row in hot:
            share = row["wall_s"] / total if total > 0 else 0.0
            lines.append(
                f"  {row['wall_s']:>10.4f}  {share:>6.1%}  "
                f"{row['calls']:>9d}  {row['label']}"
            )

    if summary["spans"]:
        lines.append("")
        lines.append("== spans (by path) ==")
        for path, agg in summary["spans"].items():
            lines.append(
                f"  {path}: n={int(agg['count'])} "
                f"virtual={agg['virtual_s']:.3f}s wall={agg['wall_s']:.4f}s"
            )

    if summary["metrics"]:
        lines.append("")
        lines.append("== metrics ==")
        for name, body in summary["metrics"].items():
            if body.get("kind") == "histogram":
                lines.append(
                    f"  {name}: n={body.get('count', 0):.0f} "
                    f"mean={body.get('mean', float('nan')):.6g} "
                    f"p95={body.get('p95', float('nan')):.6g}"
                )
            else:
                lines.append(f"  {name}: {body.get('value')}")

    for event in summary["meta_events"]:
        if event.get("event") == "trace_capped":
            lines.append("")
            lines.append(
                f"!! in-memory trace capped at {event.get('max_records')} "
                "records (full stream preserved in this export)"
            )
    return "\n".join(lines)


def _run_live(args: argparse.Namespace) -> int:
    """Snapshot loop behind ``python -m repro.obs live``.

    Re-reads the export each tick (sinks are cumulative, so the latest
    metric records are the current truth), derives counter rates from the
    previous sample, and evaluates ``--slo`` thresholds.  Exit status: 1
    if the final snapshot breached an SLO, 2 if the export never became
    readable, else 0.
    """
    from repro.obs.export import (
        check_slos,
        flatten_snapshot,
        live_snapshot,
        parse_slo,
        render_live,
        state_from_records,
    )

    try:
        for spec in args.slo:
            parse_slo(spec)  # fail fast on typos, before the loop
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    prev_counters: Dict[str, float] = {}
    prev_wall: Optional[float] = None
    breaches: List[str] = []
    saw_data = False
    tick = 0
    while True:
        tick += 1
        try:
            records, _, _ = collect_export(args.path)
        except ReportInputError as exc:
            if args.count and tick >= args.count:
                if not saw_data:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                break
            print(f"[waiting] {exc}", file=sys.stderr)
            time.sleep(args.interval)
            continue
        saw_data = True
        state, meta = state_from_records(records)
        now = time.monotonic()
        rates: Dict[str, float] = {}
        counters = {
            name: float(inst["value"])
            for name, inst in state.items()
            if inst.get("kind") == "counter"
        }
        if prev_wall is not None and now > prev_wall:
            dt = now - prev_wall
            for name, value in counters.items():
                delta = value - prev_counters.get(name, 0.0)
                if delta:
                    rates[name] = delta / dt
        prev_counters, prev_wall = counters, now
        snapshot = live_snapshot(state, meta, rates=rates or None)
        breaches = check_slos(flatten_snapshot(snapshot, state), args.slo)
        if tick > 1:
            print()
        print(render_live(snapshot))
        for breach in breaches:
            print(f"SLO BREACH: {breach}")
        if args.json_out:
            _write_json(
                args.json_out, {"snapshot": snapshot, "slo_breaches": breaches}
            )
        if args.count and tick >= args.count:
            break
        time.sleep(args.interval)
    return 1 if breaches else 0


def _run_replay(args: argparse.Namespace) -> int:
    """``python -m repro.obs replay <manifest>``: exit 0 when the rebuilt
    run reproduces the recorded fingerprint, 1 on divergence, 2 when the
    manifest is unreadable or not replayable."""
    from repro.obs.forensics import (
        ForensicsError,
        load_manifest,
        render_replay_report,
        replay_manifest,
    )

    try:
        manifest = load_manifest(args.manifest)
        report = replay_manifest(manifest, from_time=args.from_time)
    except ForensicsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_replay_report(report))
    if args.json_out:
        _write_json(args.json_out, report)
        print(f"wrote {args.json_out}")
    return 0 if report["match"] else 1


def _run_diff(args: argparse.Namespace) -> int:
    """``python -m repro.obs diff A B``: exit 0 identical, 1 diverged,
    2 when either export is unreadable."""
    from repro.obs.forensics import diff_exports, render_diff

    try:
        result = diff_exports(args.a, args.b, context=args.context)
    except ReportInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_diff(result, context=args.context))
    if args.json_out:
        _write_json(args.json_out, result)
        print(f"wrote {args.json_out}")
    return 0 if result["identical"] else 1


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities for repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize an NDJSON telemetry export")
    report.add_argument("path", help="run.ndjson produced by an NdjsonSink")
    report.add_argument("--top", type=int, default=10, help="hot paths to show")
    report.add_argument("--json", dest="json_out", default=None,
                        help="also write the summary as JSON here")
    trace = sub.add_parser(
        "trace",
        help="causal packet-trace analysis: latency phases, critical path",
    )
    trace.add_argument("path", help="export file or directory of *.ndjson")
    trace.add_argument("--top", type=int, default=10, help="flows to show")
    trace.add_argument("--json", dest="json_out", default=None,
                       help="write the machine-readable digest here")
    trace.add_argument("--chrome", dest="chrome_out", default=None,
                       help="write Chrome Trace Event JSON here")
    live = sub.add_parser(
        "live",
        help="snapshot loop: event rate, delivery ratios, breakers, SLOs",
    )
    live.add_argument("path", help="export file or directory (*.ndjson/*.ring)")
    live.add_argument("--interval", type=float, default=2.0,
                      help="seconds between snapshots (default: 2)")
    live.add_argument("--count", type=int, default=0,
                      help="snapshots to take before exiting (0 = forever)")
    live.add_argument("--slo", action="append", default=[], metavar="SPEC",
                      help="threshold like 'kernel.events_per_sec>=1000' "
                           "(repeatable; breach makes the exit status 1)")
    live.add_argument("--json", dest="json_out", default=None,
                      help="also write the final snapshot as JSON here")
    replay = sub.add_parser(
        "replay",
        help="re-execute a run from its RunManifest and assert determinism",
    )
    replay.add_argument(
        "manifest", help="<export>.manifest.json stamped next to an export"
    )
    replay.add_argument(
        "--from", dest="from_time", type=float, default=None, metavar="T",
        help="only assert checkpoints at virtual time >= T",
    )
    replay.add_argument("--json", dest="json_out", default=None,
                        help="also write the replay report as JSON here")
    diff = sub.add_parser(
        "diff",
        help="first-divergence diff of two exports (exit 1 when they differ)",
    )
    diff.add_argument("a", help="first export (file, dir, or *.ring)")
    diff.add_argument("b", help="second export")
    diff.add_argument("--context", type=int, default=5,
                      help="records of context around the divergence")
    diff.add_argument("--json", dest="json_out", default=None,
                      help="also write the diff report as JSON here")
    args = parser.parse_args(argv)

    if args.command == "live":
        return _run_live(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "diff":
        return _run_diff(args)

    try:
        records, skipped, parts = collect_export(args.path)
    except ReportInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "trace":
        from repro.obs.analyze import (
            analyze_trace,
            chrome_trace,
            render_trace_report,
            trace_summary_json,
        )

        analysis = analyze_trace(records)
        if not analysis.packets:
            print(
                "error: export holds no pkt.* records — was the run started "
                "with packet tracing enabled (REPRO_OBS_TRACE=1 or "
                "sim.enable_packet_tracing())?",
                file=sys.stderr,
            )
            return 2
        print(render_trace_report(analysis, top=args.top))
        if skipped:
            print(f"\n({skipped} unparsable line(s) skipped)")
        if args.json_out:
            _write_json(args.json_out, trace_summary_json(analysis))
            print(f"wrote {args.json_out}")
        if args.chrome_out:
            _write_json(args.chrome_out, chrome_trace(analysis))
            print(f"wrote {args.chrome_out}")
        return 0

    summary = summarize_run(records)
    summary["skipped_lines"] = skipped
    summary["parts"] = parts
    print(render_report(summary, top=args.top))
    if skipped:
        print(f"\n({skipped} unparsable line(s) skipped — truncated export?)")
    if args.json_out:
        _write_json(args.json_out, summary)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
