"""Run reports: summarize an NDJSON telemetry export.

``python -m repro.obs report run.ndjson`` digests the record stream a
:class:`~repro.obs.sinks.NdjsonSink` captured — trace events, spans,
metric snapshots, profiler rows — into one run summary: per-category trace
counts, span aggregates, the top-N wall-clock hot paths, and final metric
values.  ``--json`` writes the summary machine-readably so CI can assert
on it; the text rendering is for humans.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.sinks import ndjson_parts, read_ndjson
from repro.util.tables import json_safe

__all__ = ["summarize_run", "render_report", "main"]


def summarize_run(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a telemetry record stream into one summary dict.

    Profiler rows are cumulative snapshots — a run that exports twice
    reports each label's *latest* (largest) totals, not their sum.
    """
    trace_counts: Dict[str, int] = {}
    span_agg: Dict[str, Dict[str, float]] = {}
    profile: Dict[str, Dict[str, float]] = {}
    metrics: Dict[str, Dict[str, Any]] = {}
    meta_events: List[Dict[str, Any]] = []
    n_records = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None

    for record in records:
        n_records += 1
        rtype = record.get("type", "trace")
        if rtype == "trace":
            category = record.get("category", "?")
            trace_counts[category] = trace_counts.get(category, 0) + 1
            t = record.get("time")
            if isinstance(t, (int, float)):
                t_min = t if t_min is None else min(t_min, t)
                t_max = t if t_max is None else max(t_max, t)
        elif rtype == "span":
            path = record.get("path", record.get("name", "?"))
            agg = span_agg.setdefault(
                path, {"count": 0, "virtual_s": 0.0, "wall_s": 0.0}
            )
            agg["count"] += 1
            agg["virtual_s"] += float(record.get("virtual_s") or 0.0)
            agg["wall_s"] += float(record.get("wall_s") or 0.0)
        elif rtype == "profile":
            label = record.get("label", "?")
            entry = profile.setdefault(label, {"calls": 0, "wall_s": 0.0})
            entry["calls"] = max(entry["calls"], int(record.get("calls") or 0))
            entry["wall_s"] = max(
                entry["wall_s"], float(record.get("wall_s") or 0.0)
            )
        elif rtype == "metric":
            name = record.get("name", "?")
            metrics[name] = {
                k: v for k, v in record.items() if k not in ("type", "name")
            }
        elif rtype == "meta":
            meta_events.append(record)

    hot_paths = sorted(
        (
            {"label": label, "calls": entry["calls"], "wall_s": entry["wall_s"]}
            for label, entry in profile.items()
        ),
        key=lambda row: (-row["wall_s"], row["label"]),
    )
    return {
        "n_records": n_records,
        "virtual_time": {"min": t_min, "max": t_max},
        "trace_counts": dict(sorted(trace_counts.items())),
        "spans": dict(sorted(span_agg.items())),
        "hot_paths": hot_paths,
        "metrics": dict(sorted(metrics.items())),
        "meta_events": meta_events,
    }


def render_report(summary: Dict[str, Any], *, top: int = 10) -> str:
    """Human-readable rendering of :func:`summarize_run` output."""
    lines: List[str] = []
    vt = summary["virtual_time"]
    lines.append(
        f"records: {summary['n_records']}  "
        f"virtual time: [{vt['min']}, {vt['max']}]"
    )

    if summary["trace_counts"]:
        lines.append("")
        lines.append("== trace records by category ==")
        width = max(len(c) for c in summary["trace_counts"])
        for category, count in summary["trace_counts"].items():
            lines.append(f"  {category.ljust(width)}  {count}")

    hot = summary["hot_paths"][:top]
    if hot:
        total = sum(row["wall_s"] for row in summary["hot_paths"])
        lines.append("")
        lines.append(f"== top {len(hot)} wall-clock hot paths ==")
        lines.append(f"  {'wall_s':>10}  {'share':>6}  {'calls':>9}  label")
        for row in hot:
            share = row["wall_s"] / total if total > 0 else 0.0
            lines.append(
                f"  {row['wall_s']:>10.4f}  {share:>6.1%}  "
                f"{row['calls']:>9d}  {row['label']}"
            )

    if summary["spans"]:
        lines.append("")
        lines.append("== spans (by path) ==")
        for path, agg in summary["spans"].items():
            lines.append(
                f"  {path}: n={int(agg['count'])} "
                f"virtual={agg['virtual_s']:.3f}s wall={agg['wall_s']:.4f}s"
            )

    if summary["metrics"]:
        lines.append("")
        lines.append("== metrics ==")
        for name, body in summary["metrics"].items():
            if body.get("kind") == "histogram":
                lines.append(
                    f"  {name}: n={body.get('count', 0):.0f} "
                    f"mean={body.get('mean', float('nan')):.6g} "
                    f"p95={body.get('p95', float('nan')):.6g}"
                )
            else:
                lines.append(f"  {name}: {body.get('value')}")

    for event in summary["meta_events"]:
        if event.get("event") == "trace_capped":
            lines.append("")
            lines.append(
                f"!! in-memory trace capped at {event.get('max_records')} "
                "records (full stream preserved in this export)"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities for repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize an NDJSON telemetry export")
    report.add_argument("path", help="run.ndjson produced by an NdjsonSink")
    report.add_argument("--top", type=int, default=10, help="hot paths to show")
    report.add_argument("--json", dest="json_out", default=None,
                        help="also write the summary as JSON here")
    args = parser.parse_args(argv)

    # A rotated export spans several files (run.ndjson.N oldest first,
    # then the live file); fold them all into one summary.
    parts = ndjson_parts(args.path) or [args.path]
    records: List[Dict[str, Any]] = []
    skipped = 0
    for part in parts:
        part_records, part_skipped = read_ndjson(part)
        records.extend(part_records)
        skipped += part_skipped
    summary = summarize_run(records)
    summary["skipped_lines"] = skipped
    summary["parts"] = parts
    print(render_report(summary, top=args.top))
    if skipped:
        print(f"\n({skipped} unparsable line(s) skipped — truncated export?)")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(json_safe(summary), fh, indent=2, allow_nan=False)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
