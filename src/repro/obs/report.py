"""Run reports: summarize an NDJSON telemetry export.

``python -m repro.obs report run.ndjson`` digests the record stream a
:class:`~repro.obs.sinks.NdjsonSink` captured — trace events, spans,
metric snapshots, profiler rows — into one run summary: per-category trace
counts, span aggregates, the top-N wall-clock hot paths, and final metric
values.  ``--json`` writes the summary machine-readably so CI can assert
on it; the text rendering is for humans.

``python -m repro.obs trace run.ndjson`` runs the causal packet-trace
analyzer (:mod:`repro.obs.analyze`) over the same export: per-flow latency
phase breakdowns, the delivery critical path, and optional Chrome-trace
JSON export (``--chrome out.json``).

Both subcommands accept a single export file, a rotated export (the
``path.N`` generations are folded in automatically), or a directory of
``*.ndjson`` exports; a missing or empty input is a clear error with exit
status 2, not a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.sinks import ndjson_parts, read_ndjson
from repro.util.tables import json_safe

__all__ = [
    "summarize_run",
    "render_report",
    "collect_export",
    "ReportInputError",
    "main",
]


class ReportInputError(Exception):
    """The CLI input path held no readable telemetry."""


def collect_export(path: str) -> Tuple[List[Dict[str, Any]], int, List[str]]:
    """Load every record the input path holds.

    ``path`` may be an export file (rotated generations are included), or
    a directory containing ``*.ndjson`` exports (each with its rotations).
    Returns ``(records, skipped_lines, parts)``.  Raises
    :class:`ReportInputError` with a human-ready message when the path is
    missing, matches nothing, or yields zero records.
    """
    if os.path.isdir(path):
        bases = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".ndjson")
        )
        if not bases:
            raise ReportInputError(
                f"no *.ndjson exports found in directory {path!r} — "
                "was the run started with REPRO_OBS_NDJSON set?"
            )
        parts = [part for base in bases for part in ndjson_parts(base)]
    else:
        parts = ndjson_parts(path)
        if not parts:
            raise ReportInputError(
                f"export not found: {path!r} (no such file and no rotated "
                "generations next to it)"
            )
    records: List[Dict[str, Any]] = []
    skipped = 0
    for part in parts:
        part_records, part_skipped = read_ndjson(part)
        records.extend(part_records)
        skipped += part_skipped
    if not records:
        raise ReportInputError(
            f"export at {path!r} contains no records "
            f"({len(parts)} file(s) read, {skipped} unparsable line(s)) — "
            "nothing to report"
        )
    return records, skipped, parts


def summarize_run(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a telemetry record stream into one summary dict.

    Profiler rows are cumulative snapshots — a run that exports twice
    reports each label's *latest* (largest) totals, not their sum.
    """
    trace_counts: Dict[str, int] = {}
    span_agg: Dict[str, Dict[str, float]] = {}
    profile: Dict[str, Dict[str, float]] = {}
    metrics: Dict[str, Dict[str, Any]] = {}
    meta_events: List[Dict[str, Any]] = []
    n_records = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None

    for record in records:
        n_records += 1
        rtype = record.get("type", "trace")
        if rtype == "trace":
            category = record.get("category", "?")
            trace_counts[category] = trace_counts.get(category, 0) + 1
            t = record.get("time")
            if isinstance(t, (int, float)):
                t_min = t if t_min is None else min(t_min, t)
                t_max = t if t_max is None else max(t_max, t)
        elif rtype == "span":
            path = record.get("path", record.get("name", "?"))
            agg = span_agg.setdefault(
                path, {"count": 0, "virtual_s": 0.0, "wall_s": 0.0}
            )
            agg["count"] += 1
            agg["virtual_s"] += float(record.get("virtual_s") or 0.0)
            agg["wall_s"] += float(record.get("wall_s") or 0.0)
        elif rtype == "profile":
            label = record.get("label", "?")
            entry = profile.setdefault(label, {"calls": 0, "wall_s": 0.0})
            entry["calls"] = max(entry["calls"], int(record.get("calls") or 0))
            entry["wall_s"] = max(
                entry["wall_s"], float(record.get("wall_s") or 0.0)
            )
        elif rtype == "metric":
            name = record.get("name", "?")
            metrics[name] = {
                k: v for k, v in record.items() if k not in ("type", "name")
            }
        elif rtype == "meta":
            # Exports written by older kernels can carry inf/nan rates
            # (zero wall-elapsed runs); scrub them here so the summary —
            # printed or JSON-dumped — never propagates non-finite floats.
            meta_events.append(json_safe(record))

    hot_paths = sorted(
        (
            {"label": label, "calls": entry["calls"], "wall_s": entry["wall_s"]}
            for label, entry in profile.items()
        ),
        key=lambda row: (-row["wall_s"], row["label"]),
    )
    return {
        "n_records": n_records,
        "virtual_time": {"min": t_min, "max": t_max},
        "trace_counts": dict(sorted(trace_counts.items())),
        "spans": dict(sorted(span_agg.items())),
        "hot_paths": hot_paths,
        "metrics": dict(sorted(metrics.items())),
        "meta_events": meta_events,
    }


def render_report(summary: Dict[str, Any], *, top: int = 10) -> str:
    """Human-readable rendering of :func:`summarize_run` output."""
    lines: List[str] = []
    vt = summary["virtual_time"]
    lines.append(
        f"records: {summary['n_records']}  "
        f"virtual time: [{vt['min']}, {vt['max']}]"
    )

    if summary["trace_counts"]:
        lines.append("")
        lines.append("== trace records by category ==")
        width = max(len(c) for c in summary["trace_counts"])
        for category, count in summary["trace_counts"].items():
            lines.append(f"  {category.ljust(width)}  {count}")

    hot = summary["hot_paths"][:top]
    if hot:
        total = sum(row["wall_s"] for row in summary["hot_paths"])
        lines.append("")
        lines.append(f"== top {len(hot)} wall-clock hot paths ==")
        lines.append(f"  {'wall_s':>10}  {'share':>6}  {'calls':>9}  label")
        for row in hot:
            share = row["wall_s"] / total if total > 0 else 0.0
            lines.append(
                f"  {row['wall_s']:>10.4f}  {share:>6.1%}  "
                f"{row['calls']:>9d}  {row['label']}"
            )

    if summary["spans"]:
        lines.append("")
        lines.append("== spans (by path) ==")
        for path, agg in summary["spans"].items():
            lines.append(
                f"  {path}: n={int(agg['count'])} "
                f"virtual={agg['virtual_s']:.3f}s wall={agg['wall_s']:.4f}s"
            )

    if summary["metrics"]:
        lines.append("")
        lines.append("== metrics ==")
        for name, body in summary["metrics"].items():
            if body.get("kind") == "histogram":
                lines.append(
                    f"  {name}: n={body.get('count', 0):.0f} "
                    f"mean={body.get('mean', float('nan')):.6g} "
                    f"p95={body.get('p95', float('nan')):.6g}"
                )
            else:
                lines.append(f"  {name}: {body.get('value')}")

    for event in summary["meta_events"]:
        if event.get("event") == "trace_capped":
            lines.append("")
            lines.append(
                f"!! in-memory trace capped at {event.get('max_records')} "
                "records (full stream preserved in this export)"
            )
    return "\n".join(lines)


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities for repro runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="summarize an NDJSON telemetry export")
    report.add_argument("path", help="run.ndjson produced by an NdjsonSink")
    report.add_argument("--top", type=int, default=10, help="hot paths to show")
    report.add_argument("--json", dest="json_out", default=None,
                        help="also write the summary as JSON here")
    trace = sub.add_parser(
        "trace",
        help="causal packet-trace analysis: latency phases, critical path",
    )
    trace.add_argument("path", help="export file or directory of *.ndjson")
    trace.add_argument("--top", type=int, default=10, help="flows to show")
    trace.add_argument("--json", dest="json_out", default=None,
                       help="write the machine-readable digest here")
    trace.add_argument("--chrome", dest="chrome_out", default=None,
                       help="write Chrome Trace Event JSON here")
    args = parser.parse_args(argv)

    try:
        records, skipped, parts = collect_export(args.path)
    except ReportInputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "trace":
        from repro.obs.analyze import (
            analyze_trace,
            chrome_trace,
            render_trace_report,
            trace_summary_json,
        )

        analysis = analyze_trace(records)
        if not analysis.packets:
            print(
                "error: export holds no pkt.* records — was the run started "
                "with packet tracing enabled (REPRO_OBS_TRACE=1 or "
                "sim.enable_packet_tracing())?",
                file=sys.stderr,
            )
            return 2
        print(render_trace_report(analysis, top=args.top))
        if skipped:
            print(f"\n({skipped} unparsable line(s) skipped)")
        if args.json_out:
            _write_json(args.json_out, trace_summary_json(analysis))
            print(f"wrote {args.json_out}")
        if args.chrome_out:
            _write_json(args.chrome_out, chrome_trace(analysis))
            print(f"wrote {args.chrome_out}")
        return 0

    summary = summarize_run(records)
    summary["skipped_lines"] = skipped
    summary["parts"] = parts
    print(render_report(summary, top=args.top))
    if skipped:
        print(f"\n({skipped} unparsable line(s) skipped — truncated export?)")
    if args.json_out:
        _write_json(args.json_out, summary)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
