"""Kernel profiler: wall-clock attribution per event callback.

The discrete-event kernel fires every callback in the run, which makes it
the one choke point where wall time can be attributed without touching any
model code.  When a :class:`KernelProfiler` is attached
(``sim.enable_profiling()``), :meth:`Simulator.step` times each event fire
and charges it to a label — the event's name when it has one (processes
and ``call_in``/``call_at`` stamp names while profiling is on), otherwise
the qualified name of its first callback.

Costs: *off* is one ``is None`` test per event; *on* adds two
``perf_counter`` calls and a dict upsert per event (~34% measured on an
empty-callback stress run, the worst case; real workloads amortize it —
see DESIGN.md §3.3), which is why it is opt-in.

Output: a sorted hot-path table (:meth:`render_table`) and a
collapsed-stack file (:meth:`write_collapsed`) directly consumable by
``flamegraph.pl`` / speedscope.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["KernelProfiler"]


class KernelProfiler:
    """Accumulates ``label -> (calls, total wall seconds)``."""

    def __init__(self):
        self.enabled = True
        # label -> [calls, total_s]; a plain dict of 2-lists keeps the
        # per-event cost to one lookup and two in-place updates.
        self._stats: Dict[str, List[float]] = {}

    # ---------------------------------------------------------------- record

    def record(self, label: str, wall_s: float) -> None:
        entry = self._stats.get(label)
        if entry is None:
            self._stats[label] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s

    @staticmethod
    def label_of(event: Any) -> str:
        """Attribution label for an event, computed *before* it fires
        (firing clears the callback list)."""
        if event.name:
            return event.name
        for fn in event._callbacks:
            qualname = getattr(fn, "__qualname__", None)
            if qualname:
                return qualname
        return "<anonymous-event>"

    # --------------------------------------------------------------- results

    @property
    def total_s(self) -> float:
        return sum(entry[1] for entry in self._stats.values())

    @property
    def total_calls(self) -> int:
        return int(sum(entry[0] for entry in self._stats.values()))

    def hot_paths(self, n: int = 10) -> List[Tuple[str, int, float]]:
        """Top ``n`` labels by total wall time: ``(label, calls, total_s)``."""
        rows = [
            (label, int(entry[0]), entry[1])
            for label, entry in self._stats.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:n]

    def render_table(self, n: int = 10) -> str:
        """The sorted hot-path table as aligned text."""
        rows = self.hot_paths(n)
        total = self.total_s
        lines = [f"== kernel hot paths (top {len(rows)} of {len(self._stats)}) =="]
        lines.append(f"{'wall_s':>10}  {'share':>6}  {'calls':>9}  label")
        for label, calls, wall_s in rows:
            share = wall_s / total if total > 0 else 0.0
            lines.append(f"{wall_s:>10.4f}  {share:>6.1%}  {calls:>9d}  {label}")
        return "\n".join(lines)

    def collapsed_lines(self) -> List[str]:
        """Collapsed-stack lines (``sim;<label> <microseconds>``) for
        flamegraph tooling; deterministic (label-sorted) order."""
        return [
            f"sim;{label} {max(1, int(entry[1] * 1e6))}"
            for label, entry in sorted(self._stats.items())
        ]

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.collapsed_lines()) + "\n")

    def as_records(self) -> List[Dict[str, Any]]:
        """Sink-ready records, hottest first (cumulative totals)."""
        return [
            {
                "type": "profile",
                "label": label,
                "calls": calls,
                "wall_s": wall_s,
            }
            for label, calls, wall_s in self.hot_paths(len(self._stats))
        ]

    def reset(self) -> None:
        self._stats.clear()

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(labels={len(self._stats)}, "
            f"calls={self.total_calls}, total={self.total_s:.4f}s)"
        )
