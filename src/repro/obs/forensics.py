"""Run forensics: provenance manifests, deterministic replay, divergence diffing.

Three capabilities that turn "the fingerprints disagree" into an auditable
finding:

* **RunManifest** — the provenance record stamped alongside every ring and
  NDJSON export (``<export>.manifest.json``) and into campaign cache
  entries: repro version, root seed, content hashes of the specs that
  shaped the run, every named RNG stream's identity and exact draw count
  (recovered from PCG64 state via the LCG distance walk in
  :mod:`repro.util.rng` — nothing is counted on the hot path), env knobs,
  and periodic ``(time, per-stream draws)`` checkpoints.  Manifests whose
  world is fully declarative (a :class:`~repro.shard.spec.ShardScenarioSpec`)
  also embed the spec itself, making them *replayable*.
* **Deterministic replay** — ``python -m repro.obs replay <manifest>``
  rebuilds the world through the PR5 stack registry (via
  :func:`repro.shard.engine.run_serial`) and asserts that the replayed
  trace fingerprint equals the recorded one, checkpoint by checkpoint;
  ``--from T`` narrows the assertions to checkpoints at or after ``T``.
* **First-divergence diffing** — ``python -m repro.obs diff A B``
  decodes two exports, orders both streams canonically (time-major, the
  same canonical record form :func:`repro.obs.merge.merged_fingerprint`
  hashes), and walks them in lockstep to the first record present in one
  stream but not the other, printing the surrounding records and — for
  ``pkt.*`` events — the happens-before packet chain reconstructed by
  :mod:`repro.obs.analyze`.

:func:`dump_divergence` is the shard-engine integration: when a sharded
run's merged fingerprint disagrees with the serial reference,
:meth:`repro.shard.engine.ShardedSimulator.run_verified` dumps both
streams, their manifests, and a ``divergence.json`` naming the first
divergent event and its owning shard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro._version import __version__
from repro.campaign.spec import canonical_json
from repro.obs.merge import MERGE_FIELDS, _as_dict, _canonical_entry
from repro.obs.merge import merged_fingerprint
from repro.util.tables import json_safe

__all__ = [
    "MANIFEST_SCHEMA",
    "DIVERGENCE_SCHEMA",
    "REPLAY_SCHEMA",
    "ForensicsError",
    "ReplayError",
    "RunManifest",
    "content_hash",
    "manifest_path",
    "manifest_for_sim",
    "manifest_for_shard_result",
    "write_manifest",
    "load_manifest",
    "replay_manifest",
    "render_replay_report",
    "diff_records",
    "diff_exports",
    "render_diff",
    "causal_context",
    "dump_divergence",
]

#: Schema tags; bump when payload keys change shape.
MANIFEST_SCHEMA = "run-manifest/1"
DIVERGENCE_SCHEMA = "divergence-report/1"
REPLAY_SCHEMA = "replay-report/1"


class ForensicsError(Exception):
    """A forensics input that cannot be used (unreadable, wrong schema)."""


class ReplayError(ForensicsError):
    """The manifest cannot drive a replay (missing or non-replayable)."""


def content_hash(value: Any) -> str:
    """Stable short digest of any canonically-JSON-encodable value.

    Dataclass specs (StackSpec, ShardScenarioSpec, ShardPlan) hash by
    content via :func:`repro.campaign.spec.canonical_json`, so equal specs
    hash equal across processes and repo checkouts.
    """
    encoded = canonical_json(value).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def manifest_path(export_path: str) -> str:
    """Where the manifest for an export file lives (``<export>.manifest.json``)."""
    return export_path + ".manifest.json"


# ---------------------------------------------------------------------------
# RunManifest
# ---------------------------------------------------------------------------


@dataclass
class RunManifest:
    """Everything needed to reproduce and audit one run.

    ``scenario`` is the optional replay payload: present iff the whole
    world is rebuildable from a declarative spec (``kind: "shard-world"``
    embeds a :class:`~repro.shard.spec.ShardScenarioSpec` +
    :class:`~repro.shard.spec.ShardPlan`).  Manifests without it are
    provenance-only: they still identify the run but cannot drive
    ``obs replay``.
    """

    root_seed: int = 0
    #: Partition-invariant trace digest (:func:`merged_fingerprint`).
    fingerprint: str = ""
    schema: str = MANIFEST_SCHEMA
    repro_version: str = __version__
    #: name -> short sha256 of the spec that shaped the run
    #: (``stack_spec``, ``scenario_spec``, ``shard_plan``, ...).
    content_hashes: Dict[str, str] = field(default_factory=dict)
    #: One ``{"name", "seed", "draws", "state_digest"}`` row per RNG
    #: stream touched; ``draws`` is the exact number of 64-bit outputs.
    rng_streams: List[Dict[str, Any]] = field(default_factory=list)
    #: Periodic ``{"time", "draws": {stream: n}, "prefix_fingerprint"}``
    #: rows; replay asserts each one, and ``--from T`` windows them.
    checkpoints: List[Dict[str, Any]] = field(default_factory=list)
    checkpoint_interval_s: Optional[float] = None
    scenario: Optional[Dict[str, Any]] = None
    #: ``REPRO_*`` environment knobs active when the run exported.
    env: Dict[str, str] = field(default_factory=dict)
    #: Export files this manifest was stamped next to.
    exports: List[str] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0

    @property
    def replayable(self) -> bool:
        return self.scenario is not None

    def as_dict(self) -> Dict[str, Any]:
        return json_safe(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def _env_knobs() -> Dict[str, str]:
    return {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")}


def _record_time(record: Any) -> float:
    if isinstance(record, Mapping):
        return float(record["time"])
    return float(record.time)


def _with_prefix_fingerprints(
    checkpoints: Iterable[Mapping[str, Any]], records: List[Any]
) -> List[Dict[str, Any]]:
    """Attach the fingerprint of each checkpoint's ``time <= t`` prefix.

    One sort of the record times serves every checkpoint; the prefix
    boundary uses the same 9-decimal rounding as the fingerprint itself.
    """
    out = []
    times = [round(_record_time(r), 9) for r in records]
    for cp in checkpoints:
        row = dict(cp)
        bound = round(float(row["time"]), 9)
        prefix = [r for r, t in zip(records, times) if t <= bound]
        row["prefix_fingerprint"] = merged_fingerprint(prefix)
        out.append(row)
    return out


def manifest_for_sim(sim: Any, *, exports: Iterable[str] = ()) -> RunManifest:
    """Build a manifest from a live :class:`~repro.sim.kernel.Simulator`.

    Reads the provenance facts builders stamped on ``sim.provenance``
    (content hashes, and a ``scenario`` replay payload when the world is
    declarative), the RNG stream states, and any checkpoints captured by
    :meth:`~repro.sim.kernel.Simulator.enable_rng_checkpoints`.
    """
    provenance = dict(getattr(sim, "provenance", None) or {})
    records = list(sim.trace.records)
    scenario = provenance.get("scenario")
    if scenario is not None:
        scenario = dict(scenario)
        if scenario.get("until") is None:
            scenario["until"] = sim.now
    return RunManifest(
        root_seed=sim.rng.seed,
        fingerprint=merged_fingerprint(records),
        content_hashes=dict(provenance.get("content_hashes", {})),
        rng_streams=sim.rng.stream_states(),
        checkpoints=_with_prefix_fingerprints(
            getattr(sim, "rng_checkpoints", ()), records
        ),
        checkpoint_interval_s=getattr(sim, "rng_checkpoint_interval_s", None),
        scenario=scenario,
        env=_env_knobs(),
        exports=list(exports),
        counters={
            "events_processed": sim.events_processed,
            "n_trace_records": len(records),
            "trace_evicted": getattr(sim.trace, "ring_evicted", 0),
        },
        created_at=_time.time(),
    )


def manifest_for_shard_result(
    spec: Any,
    plan: Any,
    until: float,
    result: Any,
    *,
    exports: Iterable[str] = (),
) -> RunManifest:
    """Build a manifest from a :class:`~repro.shard.engine.ShardRunResult`.

    Shard worlds are fully declarative, so the manifest always embeds the
    replay payload — this is the replayable manifest family.
    """
    return RunManifest(
        root_seed=spec.seed,
        fingerprint=result.fingerprint(),
        content_hashes={
            "scenario_spec": content_hash(spec),
            "shard_plan": content_hash(plan),
        },
        rng_streams=list(getattr(result, "rng_streams", ()) or ()),
        checkpoints=_with_prefix_fingerprints(
            getattr(result, "rng_checkpoints", ()) or (), result.records
        ),
        checkpoint_interval_s=getattr(result, "checkpoint_interval_s", None),
        scenario={
            "kind": "shard-world",
            "spec": json_safe(dataclasses.asdict(spec)),
            "plan": json_safe(dataclasses.asdict(plan)),
            "until": until,
        },
        env=_env_knobs(),
        exports=list(exports),
        counters={
            "events_processed": result.events_processed,
            "n_trace_records": len(result.records),
            "n_shards": result.n_shards,
            "mode": result.mode,
        },
        created_at=_time.time(),
    )


def write_manifest(manifest: RunManifest, path: str) -> str:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest.as_dict(), fh, indent=2, allow_nan=False)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: str) -> RunManifest:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise ForensicsError(f"manifest not found: {path!r}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ForensicsError(f"unreadable manifest {path!r}: {exc}")
    if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
        raise ForensicsError(
            f"{path!r} is not a {MANIFEST_SCHEMA} manifest "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else '?'!r})"
        )
    return RunManifest.from_dict(payload)


# ---------------------------------------------------------------------------
# Deterministic replay
# ---------------------------------------------------------------------------


def _spec_from_payload(payload: Mapping[str, Any]) -> Any:
    """Rebuild a ShardScenarioSpec from its JSON manifest form."""
    from repro.shard.spec import (
        ChurnSpec,
        FaultPlanSpec,
        LinkFlapSpec,
        ShardScenarioSpec,
        WorkloadSpec,
    )

    data = dict(payload)
    data["workload"] = WorkloadSpec(**data.get("workload") or {})
    faults = data.get("faults")
    if faults:
        data["faults"] = FaultPlanSpec(
            churn=ChurnSpec(**faults["churn"]) if faults.get("churn") else None,
            link_flap=(
                LinkFlapSpec(**faults["link_flap"])
                if faults.get("link_flap")
                else None
            ),
        )
    else:
        data["faults"] = None
    data["lifecycle"] = tuple(tuple(ev) for ev in data.get("lifecycle") or ())
    data["router_params"] = tuple(
        tuple(p) for p in data.get("router_params") or ()
    )
    data["mac_params"] = tuple(tuple(p) for p in data.get("mac_params") or ())
    chaos = data.get("chaos_crash")
    data["chaos_crash"] = tuple(chaos) if chaos else None
    return ShardScenarioSpec(**data)


def replay_manifest(
    manifest: RunManifest, *, from_time: Optional[float] = None
) -> Dict[str, Any]:
    """Re-execute the manifest's world and verify it bit-for-bit.

    The world is rebuilt from the embedded spec through the stack registry
    and run serially with the same checkpoint cadence; the report compares
    the final trace fingerprint and — per checkpoint — the per-stream draw
    counts and prefix fingerprints.  ``from_time`` windows the checkpoint
    assertions to ``time >= from_time`` (the final fingerprint is always
    asserted): replay always re-executes from ``t=0`` — determinism is the
    contract, not state snapshotting — but windowing localizes *where*
    divergence first appears without reading the full report.

    Raises :class:`ReplayError` when the manifest has no replay payload.
    """
    if not manifest.replayable:
        raise ReplayError(
            "manifest carries no scenario payload (provenance-only): only "
            "runs built from a declarative ShardScenarioSpec can be "
            "replayed — rerun the original entry point instead"
        )
    scenario = manifest.scenario or {}
    if scenario.get("kind") != "shard-world":
        raise ReplayError(
            f"unknown scenario kind {scenario.get('kind')!r}; this repro "
            "version can only replay 'shard-world' manifests"
        )
    from repro.shard.engine import run_serial

    spec = _spec_from_payload(scenario["spec"])
    until = float(scenario["until"])
    result = run_serial(
        spec,
        until,
        checkpoint_interval_s=manifest.checkpoint_interval_s,
    )
    replayed_fp = result.fingerprint()
    replayed_cps = _with_prefix_fingerprints(
        result.rng_checkpoints, result.records
    )
    by_time = {round(float(cp["time"]), 9): cp for cp in replayed_cps}
    rows: List[Dict[str, Any]] = []
    first_divergent: Optional[float] = None
    for expected in manifest.checkpoints:
        t = float(expected["time"])
        if from_time is not None and t < from_time:
            continue
        got = by_time.get(round(t, 9))
        row = {
            "time": t,
            "found": got is not None,
            "draws_match": bool(got)
            and dict(expected.get("draws") or {}) == dict(got.get("draws") or {}),
            "prefix_match": bool(got)
            and expected.get("prefix_fingerprint") == got.get("prefix_fingerprint"),
        }
        row["match"] = row["found"] and row["draws_match"] and row["prefix_match"]
        if not row["match"] and first_divergent is None:
            first_divergent = t
        rows.append(row)
    match = replayed_fp == manifest.fingerprint and all(r["match"] for r in rows)
    return {
        "schema": REPLAY_SCHEMA,
        "match": match,
        "expected_fingerprint": manifest.fingerprint,
        "replayed_fingerprint": replayed_fp,
        "from_time": from_time,
        "checkpoints": rows,
        "first_divergent_checkpoint": first_divergent,
        "events_processed": result.events_processed,
        "root_seed": manifest.root_seed,
        "repro_version": {
            "manifest": manifest.repro_version,
            "current": __version__,
        },
    }


def render_replay_report(report: Dict[str, Any]) -> str:
    lines = [
        f"replayed seed={report['root_seed']} "
        f"({report['events_processed']} events)",
        f"expected fingerprint: {report['expected_fingerprint']}",
        f"replayed fingerprint: {report['replayed_fingerprint']}",
    ]
    rows = report["checkpoints"]
    if rows:
        ok = sum(1 for r in rows if r["match"])
        window = (
            f" (from t={report['from_time']})"
            if report.get("from_time") is not None
            else ""
        )
        lines.append(f"checkpoints{window}: {ok}/{len(rows)} match")
        for row in rows:
            if not row["match"]:
                why = (
                    "missing"
                    if not row["found"]
                    else "draws" if not row["draws_match"] else "trace prefix"
                )
                lines.append(f"  t={row['time']:g}: DIVERGED ({why})")
    if report["first_divergent_checkpoint"] is not None:
        lines.append(
            "first divergent checkpoint: "
            f"t={report['first_divergent_checkpoint']:g}"
        )
    lines.append(
        "REPLAY OK: run reproduced bit-for-bit"
        if report["match"]
        else "REPLAY DIVERGED"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# First-divergence diffing
# ---------------------------------------------------------------------------


def _canonical_stream(
    records: Iterable[Any],
) -> List[Tuple[Tuple[float, str, Tuple], Dict[str, Any]]]:
    """Canonicalize a record stream for diffing: trace records only, each
    paired with its canonical form, sorted time-major.

    The canonical form is exactly what :func:`merged_fingerprint` hashes
    (time rounded to 9 decimals, shard bookkeeping stripped), so two
    streams diff identical iff they fingerprint identical.
    """
    out = []
    for record in records:
        rec = _as_dict(record)
        if rec.get("type", "trace") != "trace":
            continue
        out.append((_canonical_entry(rec, MERGE_FIELDS), rec))
    out.sort(key=lambda pair: (pair[0][0], pair[0][1], repr(pair[0][2])))
    return out


def _entry_summary(entry: Tuple[float, str, Tuple], rec: Dict[str, Any]) -> Dict[str, Any]:
    summary = {"time": entry[0], "category": entry[1], "fields": dict(entry[2])}
    if "shard" in rec:
        summary["shard"] = rec["shard"]
    return summary


def diff_records(
    records_a: Iterable[Any],
    records_b: Iterable[Any],
    *,
    context: int = 5,
    label_a: str = "A",
    label_b: str = "B",
) -> Dict[str, Any]:
    """Locate the first record on which two trace streams disagree.

    Both streams are canonicalized and sorted time-major, then walked in
    lockstep; the first position where the canonical records differ is the
    divergence — the earliest (in virtual time) record present in one
    stream but not the other.  The result carries ``context`` surrounding
    records from each side and, when the divergent record belongs to a
    causal packet trace (``tid``), the happens-before chain from
    :func:`causal_context`.

    Capture-quality warnings (ring evictions, in-memory trace caps seen in
    either stream) are surfaced so "diverged" is never silently conflated
    with "evicted before capture".
    """
    list_a = list(records_a)
    list_b = list(records_b)
    stream_a = _canonical_stream(list_a)
    stream_b = _canonical_stream(list_b)
    warnings = _capture_warnings(list_a, label_a) + _capture_warnings(
        list_b, label_b
    )
    i = 0
    sort_key = lambda entry: (entry[0], entry[1], repr(entry[2]))  # noqa: E731
    while i < len(stream_a) and i < len(stream_b):
        if stream_a[i][0] == stream_b[i][0]:
            i += 1
            continue
        break
    if i >= len(stream_a) and i >= len(stream_b):
        first = None
    else:
        entry_a = stream_a[i] if i < len(stream_a) else None
        entry_b = stream_b[i] if i < len(stream_b) else None
        if entry_a is not None and (
            entry_b is None or sort_key(entry_a[0]) <= sort_key(entry_b[0])
        ):
            lead, lead_label = entry_a, label_a
        else:
            lead, lead_label = entry_b, label_b
        first = {
            "index": i,
            "time": lead[0][0],
            "category": lead[0][1],
            "first_in": lead_label,
            "a": _entry_summary(*entry_a) if entry_a else None,
            "b": _entry_summary(*entry_b) if entry_b else None,
            "owning_shard": lead[1].get("shard"),
            "context_a": [
                _entry_summary(*pair)
                for pair in stream_a[max(0, i - context) : i + context + 1]
            ],
            "context_b": [
                _entry_summary(*pair)
                for pair in stream_b[max(0, i - context) : i + context + 1]
            ],
        }
        tid = lead[1].get("tid")
        if tid is not None:
            source = list_a if lead_label == label_a else list_b
            first["causal_chain"] = causal_context(
                source, int(tid), max_records=2 * context + 2
            )
    return {
        "identical": first is None,
        "n_records": {"a": len(stream_a), "b": len(stream_b)},
        "labels": {"a": label_a, "b": label_b},
        "fingerprints": {
            "a": merged_fingerprint(rec for _e, rec in stream_a),
            "b": merged_fingerprint(rec for _e, rec in stream_b),
        },
        "first_divergence": first,
        "warnings": warnings,
    }


def _capture_warnings(records: List[Any], label: str) -> List[str]:
    """Scan a stream for signs the capture itself was lossy."""
    warnings: List[str] = []
    for record in records:
        if not isinstance(record, Mapping):
            continue
        rtype = record.get("type")
        if rtype == "meta" and record.get("event") == "ring_evicted":
            warnings.append(
                f"{label}: trace ring evicted records under its byte budget "
                "before capture — the stream is a suffix of the run"
            )
        elif rtype == "meta" and record.get("event") == "trace_capped":
            warnings.append(
                f"{label}: in-memory trace hit max_records; records were "
                "dropped from memory"
            )
        elif (
            rtype == "metric"
            and record.get("name") == "trace.evicted"
            and record.get("value")
        ):
            warnings.append(
                f"{label}: trace.evicted={record['value']:.0f} — ring "
                "evictions occurred during the run"
            )
    # One warning per distinct condition is enough.
    return sorted(set(warnings))


def causal_context(
    records: Iterable[Any], tid: int, *, max_records: int = 12
) -> List[Dict[str, Any]]:
    """The happens-before context of packet trace ``tid``.

    Walks the parent-trace chain reconstructed by
    :func:`repro.obs.analyze.analyze_trace` (a forwarded or retried packet
    points at the attempt that caused it) and returns the chain's raw
    ``pkt.*`` records in time order, newest-bounded at ``max_records``.
    """
    from repro.obs.analyze import analyze_trace

    dicts = [_as_dict(r) for r in records]
    analysis = analyze_trace(dicts)
    chain: set = set()
    cursor: Optional[int] = tid
    while cursor is not None and cursor not in chain:
        chain.add(cursor)
        packet = analysis.packets.get(cursor)
        if packet is None:
            break
        cursor = packet.parent_tid
    related = [
        rec
        for rec in dicts
        if rec.get("type", "trace") == "trace" and rec.get("tid") in chain
    ]
    related.sort(key=lambda rec: float(rec.get("time", 0.0)))
    if len(related) > max_records:
        related = related[-max_records:]
    return [json_safe(rec) for rec in related]


def diff_exports(
    path_a: str, path_b: str, *, context: int = 5
) -> Dict[str, Any]:
    """Diff two on-disk exports (files, directories, rings, rotations)."""
    from repro.obs.report import collect_export

    records_a, _skipped_a, _ = collect_export(path_a)
    records_b, _skipped_b, _ = collect_export(path_b)
    return diff_records(
        records_a, records_b, context=context, label_a=path_a, label_b=path_b
    )


def _render_record(summary: Dict[str, Any]) -> str:
    fields = " ".join(f"{k}={v!r}" for k, v in sorted(summary["fields"].items()))
    shard = f" [shard {summary['shard']}]" if "shard" in summary else ""
    return f"t={summary['time']:g} {summary['category']}{shard} {fields}"


def render_diff(result: Dict[str, Any], *, context: int = 5) -> str:
    labels = result["labels"]
    lines = [
        f"A: {labels['a']} ({result['n_records']['a']} trace records, "
        f"fingerprint {result['fingerprints']['a']})",
        f"B: {labels['b']} ({result['n_records']['b']} trace records, "
        f"fingerprint {result['fingerprints']['b']})",
    ]
    for warning in result["warnings"]:
        lines.append(f"warning: {warning}")
    first = result["first_divergence"]
    if first is None:
        lines.append("IDENTICAL: streams agree record-for-record")
        return "\n".join(lines)
    lines.append(
        f"DIVERGED at canonical record #{first['index']}: "
        f"t={first['time']:g} {first['category']} "
        f"(first present in {first['first_in']}"
        + (
            f", shard {first['owning_shard']}"
            if first.get("owning_shard") is not None
            else ""
        )
        + ")"
    )
    for side in ("a", "b"):
        record = first[side]
        lines.append(
            f"  {labels[side]}: "
            + (_render_record(record) if record else "<stream ended>")
        )
    for side in ("a", "b"):
        rows = first[f"context_{side}"]
        if rows:
            lines.append(f"-- context around divergence in {labels[side]} --")
            for row in rows:
                lines.append(f"  {_render_record(row)}")
    chain = first.get("causal_chain")
    if chain:
        lines.append("-- happens-before chain of the divergent packet --")
        for rec in chain:
            fields = " ".join(
                f"{k}={v!r}"
                for k, v in sorted(rec.items())
                if k not in ("type", "time", "category")
            )
            lines.append(f"  t={rec['time']:g} {rec['category']} {fields}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shard-divergence dump
# ---------------------------------------------------------------------------


def _write_ndjson(records: Iterable[Mapping[str, Any]], path: str) -> str:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            payload = {"type": "trace", **record}
            fh.write(json.dumps(json_safe(payload), separators=(",", ":")))
            fh.write("\n")
    return path


def dump_divergence(
    serial_result: Any,
    sharded_result: Any,
    spec: Any,
    plan: Any,
    until: float,
    out_dir: str,
    *,
    context: int = 5,
) -> Dict[str, Any]:
    """Materialize a serial-vs-sharded mismatch as an auditable bundle.

    Writes ``serial.ndjson`` / ``sharded.ndjson`` (full merged streams),
    a RunManifest next to each, and ``divergence.json`` — the
    :func:`diff_records` result naming the first divergent event and its
    owning shard.  Returns the report dict.
    """
    os.makedirs(out_dir, exist_ok=True)
    serial_path = os.path.join(out_dir, "serial.ndjson")
    sharded_path = os.path.join(out_dir, "sharded.ndjson")
    _write_ndjson(serial_result.records, serial_path)
    _write_ndjson(sharded_result.records, sharded_path)
    write_manifest(
        manifest_for_shard_result(
            spec, plan, until, serial_result, exports=[serial_path]
        ),
        manifest_path(serial_path),
    )
    write_manifest(
        manifest_for_shard_result(
            spec, plan, until, sharded_result, exports=[sharded_path]
        ),
        manifest_path(sharded_path),
    )
    diff = diff_records(
        serial_result.records,
        sharded_result.records,
        context=context,
        label_a="serial",
        label_b="sharded",
    )
    report = {
        "schema": DIVERGENCE_SCHEMA,
        "until": until,
        "n_shards": sharded_result.n_shards,
        "mode": sharded_result.mode,
        "content_hashes": {
            "scenario_spec": content_hash(spec),
            "shard_plan": content_hash(plan),
        },
        "exports": {"serial": serial_path, "sharded": sharded_path},
        "diff": diff,
    }
    report_path = os.path.join(out_dir, "divergence.json")
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(report), fh, indent=2, allow_nan=False)
        fh.write("\n")
    report["report_path"] = report_path
    return report
