"""OpenMetrics text export and the live SLO snapshot.

Two consumers pull the unified metrics plane out of the process:

* :func:`render_openmetrics` serializes a registry state
  (:meth:`~repro.obs.registry.MetricsRegistry.state`, or the merged state
  a :class:`~repro.shard.engine.ShardRunResult` carries) as
  OpenMetrics/Prometheus text — counters as ``_total`` samples,
  histograms as cumulative ``_bucket{le=...}`` series — so any standard
  scraper ingests a run's metrics without bespoke glue.
  :func:`parse_openmetrics` reads that text back; ``parse(render(x))``
  re-renders byte-identically, which is the round-trip CI asserts.
* :func:`live_snapshot` folds a state plus the kernel's export meta
  record into one operator-facing view — kernel events/sec, per-router
  delivery ratios, service breaker states, shard lag — rendered by
  :func:`render_live` and policed by :func:`check_slos`
  (``python -m repro.obs live``, exit-nonzero on breach, is the CLI).

SLO specs are ``<metric><=|>=><threshold>`` strings against the
flattened snapshot (``kernel.events_per_sec>=1000``,
``routers.flooding.delivery_ratio>=0.5``, ``service.breaker.greedy.state<=1``);
raw state names work too, so any counter or gauge can gate a soak.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "render_openmetrics",
    "parse_openmetrics",
    "state_from_records",
    "live_snapshot",
    "render_live",
    "flatten_snapshot",
    "parse_slo",
    "check_slos",
]

#: Prefix for exported metric names (``net.tx`` -> ``repro_net_tx``).
METRIC_PREFIX = "repro_"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

#: Gauge code -> human breaker state (see ``SynthesisService``).
BREAKER_STATES = {0.0: "closed", 1.0: "half_open", 2.0: "open"}


def _sanitize(name: str) -> str:
    """Metric name to the OpenMetrics charset (dots become underscores)."""
    return _NAME_BAD.sub("_", name)


def _fmt(value: float) -> str:
    """Shortest exact decimal for a float sample value."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_openmetrics(
    state: Mapping[str, Mapping[str, Any]], *, prefix: str = METRIC_PREFIX
) -> str:
    """Serialize a registry state dict as OpenMetrics text.

    Accepts the raw mergeable state
    (:meth:`~repro.obs.registry.MetricsRegistry.state`): counters render
    as ``<name>_total``, gauges as bare samples, histograms as cumulative
    ``_bucket{le="..."}`` series plus ``_count``/``_sum``.  A histogram
    entry without bucket data (a summary scraped from an old export)
    degrades to ``_count``/``_sum`` only.  Ends with ``# EOF`` per the
    OpenMetrics spec.
    """
    lines: List[str] = []
    for name in sorted(state):
        inst = state[name]
        kind = inst.get("kind")
        mname = prefix + _sanitize(name)
        if kind == "counter":
            lines.append(f"# TYPE {mname} counter")
            lines.append(f"{mname}_total {_fmt(inst['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {mname} gauge")
            lines.append(f"{mname} {_fmt(inst['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {mname} histogram")
            buckets = inst.get("buckets")
            counts = inst.get("counts")
            count = inst.get("count", 0)
            if buckets is not None and counts is not None:
                cumulative = 0
                for bound, n in zip(buckets, counts):
                    cumulative += n
                    lines.append(
                        f'{mname}_bucket{{le="{_fmt(bound)}"}} {_fmt(cumulative)}'
                    )
                lines.append(f'{mname}_bucket{{le="+Inf"}} {_fmt(count)}')
            total = inst.get("total")
            if total is None:
                mean = inst.get("mean")
                total = (mean or 0.0) * count if count else 0.0
            lines.append(f"{mname}_count {_fmt(count)}")
            lines.append(f"{mname}_sum {_fmt(total)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z0-9_:]+?)"
    r"(?:\{le=\"(?P<le>[^\"]+)\"\})? "
    r"(?P<value>\S+)$"
)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def parse_openmetrics(
    text: str, *, prefix: str = METRIC_PREFIX
) -> Dict[str, Dict[str, Any]]:
    """Parse OpenMetrics text back into a state dict.

    The inverse of :func:`render_openmetrics` up to name sanitization
    (dots flattened to underscores) and histogram min/max (not part of
    the wire format): ``render(parse(render(s))) == render(s)``.
    """
    kinds: Dict[str, str] = {}
    out: Dict[str, Dict[str, Any]] = {}

    def strip(mname: str) -> str:
        return mname[len(prefix):] if mname.startswith(prefix) else mname

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"unparsable OpenMetrics sample line: {line!r}")
        sample, le, value = m.group("name"), m.group("le"), m.group("value")
        v = _parse_value(value)
        # Resolve which declared metric this sample belongs to: histogram
        # samples carry _bucket/_count/_sum suffixes, counters _total.
        if sample in kinds:
            base = sample
        elif sample.endswith("_total") and sample[:-6] in kinds:
            base = sample[:-6]
        elif sample.endswith("_bucket") and sample[:-7] in kinds:
            base = sample[:-7]
        elif sample.endswith("_count") and sample[:-6] in kinds:
            base = sample[:-6]
        elif sample.endswith("_sum") and sample[:-4] in kinds:
            base = sample[:-4]
        else:
            raise ValueError(f"sample {sample!r} has no # TYPE declaration")
        kind = kinds[base]
        name = strip(base)
        inst = out.setdefault(name, {"kind": kind})
        if kind == "counter":
            inst["value"] = v
        elif kind == "gauge":
            inst["value"] = v
        elif kind == "histogram":
            if le is not None:
                if le != "+Inf":
                    inst.setdefault("buckets", []).append(_parse_value(le))
                    inst.setdefault("_cumulative", []).append(v)
            elif sample.endswith("_count"):
                inst["count"] = v
            elif sample.endswith("_sum"):
                inst["total"] = v
        else:
            raise ValueError(f"unsupported metric type {kind!r} for {base!r}")
    # De-cumulate histogram buckets back to per-bucket counts (+ overflow).
    for inst in out.values():
        if inst.get("kind") != "histogram":
            continue
        cumulative = inst.pop("_cumulative", None)
        if cumulative is None:
            continue
        counts: List[float] = []
        prev = 0.0
        for c in cumulative:
            counts.append(c - prev)
            prev = c
        counts.append(inst.get("count", prev) - prev)  # overflow bucket
        inst["counts"] = counts
    return out


# ----------------------------------------------------------------- live view


def state_from_records(
    records: Iterable[Mapping[str, Any]],
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Fold an export's record stream into ``(state, kernel_meta)``.

    Metric records (``{"type": "metric", ...}``) become state entries —
    last write wins, matching the cumulative-snapshot export contract —
    and the latest ``export`` meta record supplies the kernel figures
    (events processed, events/sec).
    """
    state: Dict[str, Dict[str, Any]] = {}
    meta: Dict[str, Any] = {}
    for rec in records:
        rtype = rec.get("type")
        if rtype == "metric":
            name = rec.get("name", "?")
            state[name] = {
                k: v for k, v in rec.items() if k not in ("type", "name")
            }
        elif rtype == "meta" and rec.get("event") == "export":
            meta = dict(rec)
    return state, meta


def live_snapshot(
    state: Mapping[str, Mapping[str, Any]],
    meta: Optional[Mapping[str, Any]] = None,
    *,
    rates: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """One operator-facing view of every layer's health.

    ``state`` is a registry state (or merged shard state); ``meta`` the
    kernel's export meta record; ``rates`` optional per-second counter
    deltas computed by the live loop between samples.
    """
    meta = meta or {}
    snap: Dict[str, Any] = {
        "kernel": {
            "sim_now": meta.get("sim_now"),
            "events_processed": meta.get("events_processed"),
            "events_per_sec": meta.get("events_per_sec"),
        }
    }
    routers: Dict[str, Dict[str, Any]] = {}
    breakers: Dict[str, str] = {}
    for name, inst in state.items():
        m = re.fullmatch(r"route\.([^.]+)\.tx", name)
        if m:
            r = m.group(1)
            tx = float(inst.get("value", 0.0))
            delivered = float(
                state.get(f"route.{r}.delivered", {}).get("value", 0.0)
            )
            routers[r] = {
                "tx": tx,
                "delivered": delivered,
                "delivery_ratio": delivered / tx if tx else None,
            }
            continue
        m = re.fullmatch(r"service\.breaker\.([^.]+)\.state", name)
        if m:
            code = float(inst.get("value", 0.0))
            breakers[m.group(1)] = BREAKER_STATES.get(code, f"code={code:g}")
    snap["routers"] = dict(sorted(routers.items()))
    snap["breakers"] = dict(sorted(breakers.items()))
    lag = state.get("shard.lag_events")
    snap["shard"] = {
        "lag_events": float(lag["value"]) if lag is not None else None
    }
    service: Dict[str, Any] = {}
    for key, metric in (
        ("queries", "service.queries"),
        ("degraded_ratio", "service.degraded_ratio"),
        ("shed", "service.shed"),
    ):
        inst = state.get(metric)
        if inst is not None:
            service[key] = inst.get("value")
    latency = state.get("service.latency_s")
    if latency is not None:
        service["latency_p95_s"] = _histogram_quantile(latency, 0.95)
    snap["service"] = service
    if rates:
        snap["rates_per_sec"] = dict(sorted(rates.items()))
    return snap


def _histogram_quantile(inst: Mapping[str, Any], q: float) -> Optional[float]:
    """Quantile from raw bucket state, or the exported summary estimate."""
    counts = inst.get("counts")
    buckets = inst.get("buckets")
    if counts is None or buckets is None:
        return inst.get(f"p{int(q * 100)}")
    count = inst.get("count", sum(counts))
    if not count:
        return None
    target = q * count
    cumulative = 0.0
    for i, n in enumerate(counts):
        if n and cumulative + n >= target:
            hi = buckets[i] if i < len(buckets) else inst.get("max", buckets[-1])
            return float(hi)
        cumulative += n
    return float(inst.get("max", buckets[-1]))


def render_live(snapshot: Mapping[str, Any]) -> str:
    """Human-readable one-screen rendering of :func:`live_snapshot`."""
    lines: List[str] = []
    kernel = snapshot.get("kernel", {})
    eps = kernel.get("events_per_sec")
    lines.append(
        "kernel: "
        f"now={kernel.get('sim_now')} "
        f"events={kernel.get('events_processed')} "
        f"events/sec={eps:.1f}" if isinstance(eps, (int, float)) else
        "kernel: (no export meta yet)"
    )
    routers = snapshot.get("routers", {})
    if routers:
        lines.append("routers:")
        for name, row in routers.items():
            ratio = row.get("delivery_ratio")
            shown = f"{ratio:.3f}" if ratio is not None else "n/a"
            lines.append(
                f"  {name}: delivery_ratio={shown} "
                f"(delivered={row['delivered']:.0f}/tx={row['tx']:.0f})"
            )
    breakers = snapshot.get("breakers", {})
    if breakers:
        lines.append(
            "breakers: "
            + "  ".join(f"{b}={s}" for b, s in breakers.items())
        )
    lag = snapshot.get("shard", {}).get("lag_events")
    if lag is not None:
        lines.append(f"shards: lag_events={lag:.0f}")
    service = snapshot.get("service", {})
    if service:
        parts = [f"{k}={v}" for k, v in service.items() if v is not None]
        if parts:
            lines.append("service: " + "  ".join(parts))
    rates = snapshot.get("rates_per_sec", {})
    if rates:
        lines.append("rates (per wall second since last sample):")
        for name, rate in rates.items():
            lines.append(f"  {name}: {rate:.1f}/s")
    return "\n".join(lines)


# ------------------------------------------------------------------- SLOs


def flatten_snapshot(
    snapshot: Mapping[str, Any],
    state: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, float]:
    """Dotted-path view of a snapshot (plus raw counter/gauge values) for
    SLO threshold checks."""
    flat: Dict[str, float] = {}

    def walk(prefix: str, node: Any) -> None:
        if isinstance(node, Mapping):
            for k, v in node.items():
                walk(f"{prefix}.{k}" if prefix else str(k), v)
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            flat[prefix] = float(node)

    walk("", snapshot)
    if state:
        for name, inst in state.items():
            value = inst.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat.setdefault(name, float(value))
    return flat


def parse_slo(spec: str) -> Tuple[str, str, float]:
    """Parse ``"<metric><=threshold>"`` / ``"<metric>>=threshold"``."""
    m = re.fullmatch(r"\s*([^<>=]+?)\s*(<=|>=)\s*([-+0-9.eE]+)\s*", spec)
    if m is None:
        raise ValueError(
            f"bad SLO {spec!r}: expected <metric><=value or <metric>>=value"
        )
    return m.group(1), m.group(2), float(m.group(3))


def check_slos(
    flat: Mapping[str, float], slos: Iterable[str]
) -> List[str]:
    """Evaluate SLO specs against a flattened snapshot; returns breach
    descriptions (empty means all good).  A metric the snapshot does not
    carry is itself a breach — a silent-miss SLO guards nothing."""
    breaches: List[str] = []
    for spec in slos:
        metric, op, threshold = parse_slo(spec)
        value = flat.get(metric)
        if value is None:
            breaches.append(f"{metric}: not present in snapshot ({spec})")
            continue
        ok = value <= threshold if op == "<=" else value >= threshold
        if not ok:
            breaches.append(f"{metric}={value:g} violates {spec}")
    return breaches
