"""Offline causal-trace analysis: happens-before graphs, latency phases,
critical paths.

:mod:`repro.obs.tracing` emits per-hop ``pkt.*`` events as packets cross
the radio; this module reconstructs, per traced packet, the chain of hop
spans that actually delivered it (walking ``parent`` links backwards from
the delivering reception) and attributes every microsecond of end-to-end
delay to a phase:

``queueing``
    Time between becoming ready at a node (origination or reception) and
    the delivering transmission entering the MAC, minus time explained by
    failed attempts.  Includes routing-layer waits: AODV route discovery,
    DTN custody between contacts.
``contention``
    MAC backoff of the delivering transmission at each hop.
``airtime``
    Serialization delay (size / bitrate) at each hop.
``propagation``
    Signal flight time plus fault-injected extra delay (computed as the
    residual ``rx_time - enqueue_time - backoff - airtime``, so the phase
    sum telescopes *exactly* to the measured end-to-end latency).
``retransmit``
    Time burned by failed sibling attempts of the same hop (link-layer
    ARQ retries, rediscovered forwards) before the delivering one.

The invariant ``sum(phases) == deliver_time - send_time`` holds by
construction and is enforced by ``tests/obs/test_tracing.py``.

Entry points: :func:`analyze_trace` (records from
``TraceLog.iter_dicts()`` or an NDJSON export), :func:`chrome_trace`
(a ``chrome://tracing`` / Perfetto-loadable JSON dict), and
:func:`render_trace_report` (the human rendering behind
``python -m repro.obs trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "PHASES",
    "Hop",
    "Delivery",
    "PacketTrace",
    "FlowSummary",
    "TraceAnalysis",
    "analyze_trace",
    "chrome_trace",
    "render_trace_report",
    "trace_summary_json",
]

#: Phase names, in reporting order.  Per delivery they sum exactly to the
#: measured end-to-end latency.
PHASES = ("queueing", "contention", "airtime", "propagation", "retransmit")


def _zero_phases() -> Dict[str, float]:
    return {name: 0.0 for name in PHASES}


@dataclass
class _Enqueue:
    """One ``pkt.enqueue`` record: a radio transmission attempt."""

    span: int
    parent: int
    hop: int
    src: int
    dst: int  # -1 for broadcast
    time: float
    backoff_s: float
    airtime_s: float
    prop_s: float
    extra_s: float
    uid: Optional[int] = None
    kind: Optional[str] = None

    @property
    def duration_s(self) -> float:
        """Channel occupancy of this attempt (to its ack/observation point)."""
        return self.backoff_s + self.airtime_s + self.prop_s + self.extra_s


@dataclass
class Hop:
    """One delivering hop on a reconstructed packet chain."""

    span: int
    sender: int
    receiver: int
    enqueue_time: float
    rx_time: float
    attempts: int
    phases: Dict[str, float]

    @property
    def total_s(self) -> float:
        return sum(self.phases.values())


@dataclass
class Delivery:
    """One application delivery of a traced packet, with its causal chain."""

    node: int
    time: float
    latency_s: float
    chain: List[Hop]
    phases: Dict[str, float]
    #: False when the event stream is missing spans the chain walk needed
    #: (e.g. the export started mid-run); phases are zeroed then.
    complete: bool = True

    @property
    def hops(self) -> int:
        return len(self.chain)

    def slowest_hop(self) -> Optional[Hop]:
        if not self.chain:
            return None
        return max(self.chain, key=lambda h: h.total_s)


@dataclass
class PacketTrace:
    """Everything the tracer recorded about one logical packet."""

    tid: int
    uid: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    kind: Optional[str] = None
    size_bits: Optional[int] = None
    flow: Optional[int] = None
    rmsg: Optional[int] = None
    send_time: Optional[float] = None
    parent_tid: Optional[int] = None
    parent_span: Optional[int] = None
    spawn_reason: Optional[str] = None
    enqueues: Dict[int, _Enqueue] = field(default_factory=dict)
    rx: Dict[Tuple[int, int], Dict[str, Any]] = field(default_factory=dict)
    drops: List[Dict[str, Any]] = field(default_factory=list)
    route_drops: List[Dict[str, Any]] = field(default_factory=list)
    custody: List[Dict[str, Any]] = field(default_factory=list)
    retx: List[Dict[str, Any]] = field(default_factory=list)
    deliver_events: List[Dict[str, Any]] = field(default_factory=list)
    deliveries: List[Delivery] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return bool(self.deliveries)

    def first_delivery(self) -> Optional[Delivery]:
        if not self.deliveries:
            return None
        return min(self.deliveries, key=lambda d: d.time)


@dataclass
class FlowSummary:
    """DATA traffic grouped into application flows.

    Transport-level retries are fresh packets (fresh trace ids) linked by
    their shared ``rmsg`` header; a flow folds them back together.
    """

    key: str
    tids: List[int]
    first_send: float
    delivered: bool
    latency_s: Optional[float] = None
    hops: Optional[int] = None
    phases: Optional[Dict[str, float]] = None
    #: Time between the flow's first send and the send of the attempt that
    #: finally delivered (transport RTO waits); 0 for first-try deliveries.
    transport_wait_s: float = 0.0
    attempts: int = 1


class TraceAnalysis:
    """The reconstructed happens-before view of one traced run."""

    def __init__(self, packets: Dict[int, PacketTrace]):
        self.packets = packets

    # ------------------------------------------------------------- summaries

    def delivered(self) -> List[PacketTrace]:
        return [p for p in self.packets.values() if p.delivered]

    def drop_reasons(self) -> Dict[str, int]:
        """Per-copy radio drop counts plus routing-layer abandonments."""
        out: Dict[str, int] = {}
        for pt in self.packets.values():
            for d in pt.drops:
                reason = d.get("reason", "?")
                out[reason] = out.get(reason, 0) + 1
            for d in pt.route_drops:
                reason = f"route:{d.get('reason', '?')}"
                out[reason] = out.get(reason, 0) + 1
        return dict(sorted(out.items()))

    def flows(self) -> List[FlowSummary]:
        """Group DATA packets into flows (rmsg > flow_id > trace id)."""
        groups: Dict[str, List[PacketTrace]] = {}
        for pt in self.packets.values():
            if pt.kind != "data":
                continue
            if pt.rmsg is not None:
                key = f"rmsg:{pt.rmsg}"
            elif pt.flow is not None:
                key = f"flow:{pt.flow}"
            else:
                key = f"tid:{pt.tid}"
            groups.setdefault(key, []).append(pt)
        out: List[FlowSummary] = []
        for key, members in sorted(groups.items()):
            members.sort(key=lambda p: (p.send_time or 0.0, p.tid))
            first_send = members[0].send_time or 0.0
            summary = FlowSummary(
                key=key,
                tids=[p.tid for p in members],
                first_send=first_send,
                delivered=False,
                attempts=len(members),
            )
            winners = [
                (p, p.first_delivery()) for p in members if p.delivered
            ]
            if winners:
                winner, delivery = min(winners, key=lambda pd: pd[1].time)
                summary.delivered = True
                summary.latency_s = delivery.time - first_send
                summary.hops = delivery.hops
                summary.phases = dict(delivery.phases)
                summary.transport_wait_s = (winner.send_time or 0.0) - first_send
            out.append(summary)
        return out

    def critical_delivery(self) -> Optional[Tuple[PacketTrace, Delivery]]:
        """The slowest complete delivery of a DATA packet (the run's
        end-to-end critical path), or ``None`` if nothing was delivered."""
        best: Optional[Tuple[PacketTrace, Delivery]] = None
        for pt in self.packets.values():
            if pt.kind != "data":
                continue
            for delivery in pt.deliveries:
                if not delivery.complete:
                    continue
                if best is None or delivery.latency_s > best[1].latency_s:
                    best = (pt, delivery)
        return best


# ----------------------------------------------------------------- parsing


def _as_int(value: Any, default: Optional[int] = None) -> Optional[int]:
    if value is None:
        return default
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def analyze_trace(records: Iterable[Mapping[str, Any]]) -> TraceAnalysis:
    """Reconstruct per-packet causal chains from a telemetry stream.

    ``records`` are sink-shaped dicts — ``TraceLog.iter_dicts()`` output or
    parsed NDJSON export lines; non-``pkt.*`` records are ignored, so the
    full mixed export can be passed straight through.
    """
    packets: Dict[int, PacketTrace] = {}

    def trace_of(tid: Optional[int]) -> Optional[PacketTrace]:
        if tid is None:
            return None
        pt = packets.get(tid)
        if pt is None:
            pt = packets[tid] = PacketTrace(tid=tid)
        return pt

    for rec in records:
        if rec.get("type", "trace") != "trace":
            continue
        category = rec.get("category", "")
        if not category.startswith("pkt."):
            continue
        pt = trace_of(_as_int(rec.get("tid")))
        if pt is None:
            continue
        time = float(rec.get("time", 0.0))
        if category == "pkt.send":
            pt.uid = _as_int(rec.get("uid"))
            pt.src = _as_int(rec.get("src"))
            pt.dst = _as_int(rec.get("dst"))
            pt.kind = rec.get("kind")
            pt.size_bits = _as_int(rec.get("size_bits"))
            pt.flow = _as_int(rec.get("flow"))
            pt.rmsg = _as_int(rec.get("rmsg"))
            pt.send_time = time
        elif category == "pkt.spawn":
            pt.parent_tid = _as_int(rec.get("parent_tid"))
            pt.parent_span = _as_int(rec.get("parent_span"))
            pt.spawn_reason = rec.get("reason")
        elif category == "pkt.enqueue":
            enq = _Enqueue(
                span=_as_int(rec.get("span"), 0) or 0,
                parent=_as_int(rec.get("parent"), 0) or 0,
                hop=_as_int(rec.get("hop"), 0) or 0,
                src=_as_int(rec.get("src"), -1) or 0,
                dst=_as_int(rec.get("dst"), -1) if rec.get("dst") is not None else -1,
                time=time,
                backoff_s=float(rec.get("backoff_s") or 0.0),
                airtime_s=float(rec.get("airtime_s") or 0.0),
                prop_s=float(rec.get("prop_s") or 0.0),
                extra_s=float(rec.get("extra_s") or 0.0),
                uid=_as_int(rec.get("uid")),
                kind=rec.get("kind"),
            )
            pt.enqueues[enq.span] = enq
        elif category == "pkt.rx":
            span = _as_int(rec.get("span"), 0) or 0
            dst = _as_int(rec.get("dst"), -1)
            key = (span, dst if dst is not None else -1)
            # A gremlin-duplicated frame delivers twice; keep the first.
            pt.rx.setdefault(key, dict(rec))
        elif category == "pkt.drop":
            pt.drops.append(dict(rec))
        elif category == "pkt.route_drop":
            pt.route_drops.append(dict(rec))
        elif category == "pkt.custody":
            pt.custody.append(dict(rec))
        elif category == "pkt.retx":
            pt.retx.append(dict(rec))
        elif category == "pkt.deliver":
            pt.deliver_events.append(dict(rec))

    for pt in packets.values():
        _reconstruct(pt)
    return TraceAnalysis(packets)


# ---------------------------------------------------------- reconstruction


def _reconstruct(pt: PacketTrace) -> None:
    """Turn raw events into :class:`Delivery` chains with phase breakdowns."""
    # Sibling index: attempts that share (sender, parent-span) are retries
    # of the same logical hop; the delivering one is on the chain, the rest
    # explain its ``retransmit`` phase.
    siblings: Dict[Tuple[int, int], List[_Enqueue]] = {}
    for enq in pt.enqueues.values():
        siblings.setdefault((enq.src, enq.parent), []).append(enq)
    for group in siblings.values():
        group.sort(key=lambda e: (e.time, e.span))

    for ev in pt.deliver_events:
        node = _as_int(ev.get("node"), -1) or 0
        time = float(ev.get("time", 0.0))
        span = _as_int(ev.get("span"), 0) or 0
        send_time = pt.send_time if pt.send_time is not None else time
        if span == 0:
            # Origin self-delivery: zero hops, zero latency.
            pt.deliveries.append(
                Delivery(
                    node=node,
                    time=time,
                    latency_s=time - send_time,
                    chain=[],
                    phases=_zero_phases(),
                )
            )
            continue

        # Walk parent links back to the origin.
        chain_spans: List[_Enqueue] = []
        cursor: Optional[int] = span
        complete = True
        seen: set = set()
        while cursor:
            if cursor in seen:  # defensive: corrupt stream
                complete = False
                break
            seen.add(cursor)
            enq = pt.enqueues.get(cursor)
            if enq is None:
                complete = False
                break
            chain_spans.append(enq)
            cursor = enq.parent
        chain_spans.reverse()

        hops: List[Hop] = []
        phases = _zero_phases()
        if complete:
            ready_at = send_time
            for idx, enq in enumerate(chain_spans):
                if idx + 1 < len(chain_spans):
                    receiver = chain_spans[idx + 1].src
                else:
                    receiver = node
                rx = pt.rx.get((enq.span, receiver))
                if rx is None:
                    complete = False
                    break
                rx_time = float(rx.get("time", enq.time))
                gap = enq.time - ready_at
                retrans = 0.0
                attempts = 1
                for sib in siblings.get((enq.src, enq.parent), ()):
                    if sib.span == enq.span:
                        continue
                    if ready_at <= sib.time < enq.time:
                        retrans += sib.duration_s
                        attempts += 1
                # Cap at the gap: overlapping accounting (e.g. an attempt
                # straddling ready_at) must never push queueing negative
                # by more than float noise.
                retrans = min(retrans, gap)
                hop_phases = {
                    "queueing": gap - retrans,
                    "contention": enq.backoff_s,
                    "airtime": enq.airtime_s,
                    # Residual: flight time + fault-injected extra delay.
                    # Computed from timestamps so the sum telescopes.
                    "propagation": rx_time - enq.time - enq.backoff_s - enq.airtime_s,
                    "retransmit": retrans,
                }
                hops.append(
                    Hop(
                        span=enq.span,
                        sender=enq.src,
                        receiver=receiver,
                        enqueue_time=enq.time,
                        rx_time=rx_time,
                        attempts=attempts,
                        phases=hop_phases,
                    )
                )
                for name in PHASES:
                    phases[name] += hop_phases[name]
                ready_at = rx_time
        if not complete:
            hops = []
            phases = _zero_phases()
        pt.deliveries.append(
            Delivery(
                node=node,
                time=time,
                latency_s=time - send_time,
                chain=hops,
                phases=phases,
                complete=complete,
            )
        )


# ----------------------------------------------------------- chrome export


def chrome_trace(analysis: TraceAnalysis) -> Dict[str, Any]:
    """Export as Chrome Trace Event JSON (load in ``chrome://tracing`` or
    https://ui.perfetto.dev).  Each traced packet is a *process* (pid =
    trace id); each hop span is a duration event on the sender's *thread*
    (tid = sender node id); drops, custody transfers, and deliveries are
    instant events.  Timestamps are virtual-time microseconds."""
    events: List[Dict[str, Any]] = []
    for pt in sorted(analysis.packets.values(), key=lambda p: p.tid):
        label = (
            f"{pt.kind or 'pkt'} uid={pt.uid} "
            f"{pt.src}→{pt.dst if pt.dst is not None else '*'}"
        )
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pt.tid,
                "args": {"name": f"trace {pt.tid}: {label}"},
            }
        )
        # Index rx/drop times per span to bound each hop box.
        span_end: Dict[int, float] = {}
        for (span, _dst), rx in pt.rx.items():
            t = float(rx.get("time", 0.0))
            span_end[span] = max(span_end.get(span, t), t)
        for enq in pt.enqueues.values():
            end = span_end.get(enq.span, enq.time + enq.duration_s)
            dst = "*" if enq.dst == -1 else enq.dst
            events.append(
                {
                    "ph": "X",
                    "name": f"hop {enq.hop}: {enq.src}→{dst}",
                    "cat": enq.kind or "pkt",
                    "pid": pt.tid,
                    "tid": enq.src,
                    "ts": enq.time * 1e6,
                    "dur": max(0.0, end - enq.time) * 1e6,
                    "args": {
                        "span": enq.span,
                        "uid": enq.uid,
                        "backoff_s": enq.backoff_s,
                        "airtime_s": enq.airtime_s,
                        "prop_s": enq.prop_s,
                        "extra_s": enq.extra_s,
                    },
                }
            )
        for drop in pt.drops:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": f"drop:{drop.get('reason', '?')}",
                    "pid": pt.tid,
                    "tid": _as_int(drop.get("src"), 0) or 0,
                    "ts": float(drop.get("time", 0.0)) * 1e6,
                }
            )
        for drop in pt.route_drops:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": f"route_drop:{drop.get('reason', '?')}",
                    "pid": pt.tid,
                    "tid": _as_int(drop.get("node"), 0) or 0,
                    "ts": float(drop.get("time", 0.0)) * 1e6,
                }
            )
        for cust in pt.custody:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": f"custody(copies={cust.get('copies')})",
                    "pid": pt.tid,
                    "tid": _as_int(cust.get("node"), 0) or 0,
                    "ts": float(cust.get("time", 0.0)) * 1e6,
                }
            )
        for delivery in pt.deliveries:
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": f"deliver@{delivery.node}",
                    "pid": pt.tid,
                    "tid": delivery.node,
                    "ts": delivery.time * 1e6,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------- rendering


def _fmt_phases(phases: Mapping[str, float], total: float) -> str:
    cells = []
    for name in PHASES:
        value = phases.get(name, 0.0)
        share = value / total if total > 0 else 0.0
        cells.append(f"{name[:5]}={value * 1e3:.3f}ms({share:.0%})")
    return "  ".join(cells)


def render_trace_report(analysis: TraceAnalysis, *, top: int = 10) -> str:
    """Human rendering: run summary, per-flow breakdown, critical path."""
    lines: List[str] = []
    packets = analysis.packets
    delivered = analysis.delivered()
    lines.append(
        f"traced packets: {len(packets)}  delivered: {len(delivered)}"
    )
    reasons = analysis.drop_reasons()
    if reasons:
        rendered = "  ".join(f"{k}={v}" for k, v in reasons.items())
        lines.append(f"per-copy drops: {rendered}")

    flows = analysis.flows()
    if flows:
        lines.append("")
        lines.append("== flows (DATA) ==")
        header = (
            f"  {'flow':<12} {'state':<9} {'e2e_ms':>9} {'hops':>4} "
            f"{'tries':>5}  phase breakdown"
        )
        lines.append(header)
        shown = 0
        for flow in flows:
            if shown >= top:
                lines.append(f"  ... ({len(flows) - shown} more)")
                break
            shown += 1
            if flow.delivered and flow.latency_s is not None:
                phases = dict(flow.phases or {})
                if flow.transport_wait_s > 0:
                    phases["queueing"] = (
                        phases.get("queueing", 0.0) + flow.transport_wait_s
                    )
                breakdown = _fmt_phases(phases, flow.latency_s)
                lines.append(
                    f"  {flow.key:<12} {'delivered':<9} "
                    f"{flow.latency_s * 1e3:>9.3f} {flow.hops or 0:>4} "
                    f"{flow.attempts:>5}  {breakdown}"
                )
            else:
                lines.append(
                    f"  {flow.key:<12} {'lost':<9} {'-':>9} {'-':>4} "
                    f"{flow.attempts:>5}"
                )

    critical = analysis.critical_delivery()
    if critical is not None:
        pt, delivery = critical
        lines.append("")
        lines.append("== critical path (slowest delivered DATA packet) ==")
        lines.append(
            f"  trace {pt.tid} uid={pt.uid} {pt.src}→{delivery.node}  "
            f"latency={delivery.latency_s * 1e3:.3f}ms  hops={delivery.hops}"
        )
        for i, hop in enumerate(delivery.chain, start=1):
            lines.append(
                f"  hop {i}: {hop.sender}→{hop.receiver} "
                f"span={hop.span} attempts={hop.attempts} "
                f"total={hop.total_s * 1e3:.3f}ms"
            )
            lines.append(f"      {_fmt_phases(hop.phases, hop.total_s)}")
        slowest = delivery.slowest_hop()
        if slowest is not None:
            share = (
                slowest.total_s / delivery.latency_s
                if delivery.latency_s > 0
                else 0.0
            )
            dominant = max(slowest.phases, key=lambda k: slowest.phases[k])
            lines.append(
                f"  slowest hop: {slowest.sender}→{slowest.receiver} "
                f"({slowest.total_s * 1e3:.3f}ms, {share:.0%} of e2e, "
                f"dominated by {dominant})"
            )
    elif delivered:
        lines.append("")
        lines.append("(delivered packets had incomplete chains — partial export?)")
    return "\n".join(lines)


def trace_summary_json(analysis: TraceAnalysis) -> Dict[str, Any]:
    """Machine-readable digest: what CI asserts on."""
    critical = analysis.critical_delivery()
    crit_dict: Optional[Dict[str, Any]] = None
    if critical is not None:
        pt, delivery = critical
        slowest = delivery.slowest_hop()
        crit_dict = {
            "tid": pt.tid,
            "uid": pt.uid,
            "src": pt.src,
            "dst": delivery.node,
            "latency_s": delivery.latency_s,
            "hops": delivery.hops,
            "phases": delivery.phases,
            "chain": [
                {
                    "span": hop.span,
                    "sender": hop.sender,
                    "receiver": hop.receiver,
                    "attempts": hop.attempts,
                    "total_s": hop.total_s,
                    "phases": hop.phases,
                }
                for hop in delivery.chain
            ],
            "slowest_hop": (
                None
                if slowest is None
                else {
                    "sender": slowest.sender,
                    "receiver": slowest.receiver,
                    "total_s": slowest.total_s,
                }
            ),
        }
    return {
        "n_packets": len(analysis.packets),
        "n_delivered": len(analysis.delivered()),
        "drop_reasons": analysis.drop_reasons(),
        "flows": [
            {
                "key": flow.key,
                "delivered": flow.delivered,
                "latency_s": flow.latency_s,
                "hops": flow.hops,
                "attempts": flow.attempts,
                "transport_wait_s": flow.transport_wait_s,
                "phases": flow.phases,
            }
            for flow in analysis.flows()
        ],
        "critical_path": crit_dict,
    }
